//! The versioned, machine-readable run report.
//!
//! Every `--json` surface in the workspace — `raul run`, `raul profile`,
//! and each bench binary — emits exactly this shape, so results are
//! diffable across PRs and scriptable with `jq`. The schema is versioned:
//! consumers check `schema_version` and fail loudly on mismatch instead
//! of silently misreading renamed fields.
//!
//! Top-level shape (version 1):
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "tool": "raul run",
//!   "config": { ... },          // free-form: workload, mode, scheme, knobs
//!   "metrics": { ... },         // counters + cycle breakdown + dtb/icache stats
//!   "derived": { "T": .., "d": .., "g": .., "x": .., "s1": .., "s2": .. },
//!   "windows": [ ... ],         // optional per-N-instruction samples
//!   "output": [ ... ]           // optional program output
//! }
//! ```

use crate::json::Json;
use crate::stats::Percentiles;

/// Current schema version of [`RunReport`]. Bump on any
/// rename/removal/semantic change of an existing field; adding fields is
/// backward compatible and does not require a bump.
pub const SCHEMA_VERSION: i64 = 1;

/// Current schema version of [`PoolReport`]. Multi-tenant pool runs are a
/// distinct top-level shape (per-tenant array + latency percentiles), so
/// they carry their own version, starting above [`SCHEMA_VERSION`] to keep
/// the two report families unambiguous in mixed JSONL streams.
pub const POOL_SCHEMA_VERSION: i64 = 2;

/// Current schema version of [`AnalyzeReport`]. Static-verification runs
/// are a third top-level shape (per-image verdict array + corpus
/// aggregate), versioned above [`POOL_SCHEMA_VERSION`] so the three
/// report families stay unambiguous in mixed JSONL streams.
///
/// Version 7 (the dataflow plane): per-image verdicts gained `facts`
/// (per-pass fact counts and per-procedure discharge ratios) and
/// `hot_regions` sections, and the aggregate gained corpus-wide fact
/// coverage. The version leapfrogs the other report families so every
/// consumer written against versions 3–6 rejects the new documents
/// loudly instead of silently missing the fact sections.
pub const ANALYZE_SCHEMA_VERSION: i64 = 7;

/// Current schema version of [`ProfileReport`]. Profiling runs are a
/// fourth top-level shape (per-region/opcode/tier attribution plus
/// optional pool aggregation), versioned above
/// [`ANALYZE_SCHEMA_VERSION`] so all four report families stay
/// unambiguous in mixed JSONL streams.
pub const PROFILE_SCHEMA_VERSION: i64 = 4;

/// Current schema version of [`ResilienceReport`]. Chaos campaigns and
/// supervised pool runs are a fifth top-level shape (per-scenario array
/// plus an aggregate outcome table and invariant verdicts), versioned
/// above [`PROFILE_SCHEMA_VERSION`] so all five report families stay
/// unambiguous in mixed JSONL streams.
pub const RESILIENCE_SCHEMA_VERSION: i64 = 5;

/// Current schema version of [`ServiceReport`]. Request-serving runs are
/// a sixth top-level shape (a per-load-step trajectory of
/// latency-under-load percentiles plus a request outcome table),
/// versioned above [`RESILIENCE_SCHEMA_VERSION`] so all six report
/// families stay unambiguous in mixed JSONL streams.
pub const SERVICE_SCHEMA_VERSION: i64 = 6;

/// One machine-readable run report.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// The emitting tool, e.g. `"raul run"` or `"dtb_sweep"`.
    pub tool: String,
    /// The configuration that produced the run (free-form object).
    pub config: Json,
    /// Measured counters (free-form object; `uhm` fills the canonical
    /// shape).
    pub metrics: Json,
    /// The derived §7 parameters (`T`, `d`, `g`, `x`, `s1`, `s2`).
    pub derived: Json,
    /// Optional per-window samples.
    pub windows: Option<Json>,
    /// Optional program output.
    pub output: Option<Json>,
    /// Optional trace-sink health (ring `dropped`/`retained`, JSONL
    /// `written`/`write_error`): surfaces silently dropped trace events
    /// in the report itself.
    pub trace_health: Option<Json>,
}

impl RunReport {
    /// Creates a report with empty optional sections.
    pub fn new(tool: &str, config: Json, metrics: Json, derived: Json) -> RunReport {
        RunReport {
            tool: tool.to_string(),
            config,
            metrics,
            derived,
            windows: None,
            output: None,
            trace_health: None,
        }
    }

    /// The report as a JSON value (with `schema_version` stamped in).
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("schema_version".to_string(), Json::Int(SCHEMA_VERSION)),
            ("tool".to_string(), Json::Str(self.tool.clone())),
            ("config".to_string(), self.config.clone()),
            ("metrics".to_string(), self.metrics.clone()),
            ("derived".to_string(), self.derived.clone()),
        ];
        if let Some(w) = &self.windows {
            pairs.push(("windows".to_string(), w.clone()));
        }
        if let Some(o) = &self.output {
            pairs.push(("output".to_string(), o.clone()));
        }
        if let Some(t) = &self.trace_health {
            pairs.push(("trace_health".to_string(), t.clone()));
        }
        Json::Obj(pairs)
    }

    /// Serializes to one compact JSON line.
    pub fn render(&self) -> String {
        self.to_json().render()
    }

    /// Reconstructs a report from a parsed JSON value.
    ///
    /// # Errors
    ///
    /// Fails when `schema_version` is missing or not [`SCHEMA_VERSION`],
    /// or a required section is absent.
    pub fn from_json(value: &Json) -> Result<RunReport, String> {
        let version = value
            .get("schema_version")
            .and_then(Json::as_i64)
            .ok_or("missing schema_version")?;
        if version != SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema_version {version} (expected {SCHEMA_VERSION})"
            ));
        }
        let tool = value
            .get("tool")
            .and_then(Json::as_str)
            .ok_or("missing tool")?
            .to_string();
        let section = |name: &str| -> Result<Json, String> {
            value
                .get(name)
                .cloned()
                .ok_or(format!("missing {name} section"))
        };
        Ok(RunReport {
            tool,
            config: section("config")?,
            metrics: section("metrics")?,
            derived: section("derived")?,
            windows: value.get("windows").cloned(),
            output: value.get("output").cloned(),
            trace_health: value.get("trace_health").cloned(),
        })
    }

    /// Parses a report from JSON text.
    ///
    /// # Errors
    ///
    /// Propagates JSON syntax errors and schema violations.
    pub fn parse(text: &str) -> Result<RunReport, String> {
        RunReport::from_json(&Json::parse(text)?)
    }
}

/// One machine-readable multi-tenant pool report (schema
/// [`POOL_SCHEMA_VERSION`]).
///
/// Where [`RunReport`] describes a single program on a single machine,
/// a `PoolReport` describes N tenant programs executed by a worker pool:
/// a per-tenant result array, pool-level aggregates (wall-clock, total
/// modeled work, throughput), and the latency distribution across
/// tenants as p50/p95/p99. The per-tenant and aggregate sections are
/// free-form objects — the producing crate (`uhm::report`) fills the
/// canonical shape; this type owns only versioning and round-tripping.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolReport {
    /// The emitting tool, e.g. `"raul pool"` or `"pool_throughput"`.
    pub tool: String,
    /// Pool configuration (free-form object: workers, tenant count,
    /// mode, scheme, fault knobs).
    pub config: Json,
    /// Per-tenant results, in tenant-index order (free-form array).
    pub tenants: Json,
    /// Pool-level aggregates (free-form object: wall_ns, instructions,
    /// cycles, minstr_per_sec, steals, ...).
    pub aggregate: Json,
    /// Per-tenant latency percentiles, in nanoseconds.
    pub latency: Percentiles,
    /// Optional trace-sink health (dropped/retained/written counts per
    /// tenant sink), mirroring [`RunReport::trace_health`].
    pub trace_health: Option<Json>,
}

impl PoolReport {
    /// Creates a pool report from its four sections.
    pub fn new(
        tool: &str,
        config: Json,
        tenants: Json,
        aggregate: Json,
        latency: Percentiles,
    ) -> PoolReport {
        PoolReport {
            tool: tool.to_string(),
            config,
            tenants,
            aggregate,
            latency,
            trace_health: None,
        }
    }

    /// The report as a JSON value (with `schema_version` stamped in).
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("schema_version".to_string(), Json::Int(POOL_SCHEMA_VERSION)),
            ("tool".to_string(), Json::Str(self.tool.clone())),
            ("config".to_string(), self.config.clone()),
            ("tenants".to_string(), self.tenants.clone()),
            ("aggregate".to_string(), self.aggregate.clone()),
            (
                "latency_ns".to_string(),
                Json::obj([
                    ("p50", Json::from(self.latency.p50)),
                    ("p95", Json::from(self.latency.p95)),
                    ("p99", Json::from(self.latency.p99)),
                    ("p999", Json::from(self.latency.p999)),
                ]),
            ),
        ];
        if let Some(t) = &self.trace_health {
            pairs.push(("trace_health".to_string(), t.clone()));
        }
        Json::Obj(pairs)
    }

    /// Serializes to one compact JSON line.
    pub fn render(&self) -> String {
        self.to_json().render()
    }

    /// Reconstructs a pool report from a parsed JSON value.
    ///
    /// # Errors
    ///
    /// Fails when `schema_version` is missing or not
    /// [`POOL_SCHEMA_VERSION`], or a required section is absent.
    pub fn from_json(value: &Json) -> Result<PoolReport, String> {
        let version = value
            .get("schema_version")
            .and_then(Json::as_i64)
            .ok_or("missing schema_version")?;
        if version != POOL_SCHEMA_VERSION {
            return Err(format!(
                "unsupported pool schema_version {version} (expected {POOL_SCHEMA_VERSION})"
            ));
        }
        let tool = value
            .get("tool")
            .and_then(Json::as_str)
            .ok_or("missing tool")?
            .to_string();
        let section = |name: &str| -> Result<Json, String> {
            value
                .get(name)
                .cloned()
                .ok_or(format!("missing {name} section"))
        };
        let latency_obj = section("latency_ns")?;
        let pct = |name: &str| -> Result<f64, String> {
            latency_obj
                .get(name)
                .and_then(Json::as_f64)
                .ok_or(format!("missing latency_ns.{name}"))
        };
        Ok(PoolReport {
            tool,
            config: section("config")?,
            tenants: section("tenants")?,
            aggregate: section("aggregate")?,
            latency: Percentiles {
                p50: pct("p50")?,
                p95: pct("p95")?,
                p99: pct("p99")?,
                // p999 was added after schema 2 shipped; adding a field
                // is backward compatible, so old reports parse as 0.0.
                p999: latency_obj
                    .get("p999")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0),
            },
            trace_health: value.get("trace_health").cloned(),
        })
    }

    /// Parses a pool report from JSON text.
    ///
    /// # Errors
    ///
    /// Propagates JSON syntax errors and schema violations.
    pub fn parse(text: &str) -> Result<PoolReport, String> {
        PoolReport::from_json(&Json::parse(text)?)
    }
}

/// One machine-readable static-verification report (schema
/// [`ANALYZE_SCHEMA_VERSION`]).
///
/// Where [`RunReport`] describes a dynamic run, an `AnalyzeReport`
/// describes load-time verification of one or more encoded images: a
/// per-image verdict array (name, scheme, diagnostic counts, diagnostics)
/// and a corpus-level aggregate (images checked, clean count, totals).
/// Both sections are free-form — the producing side (`raul analyze`, the
/// analyze gate bench) fills the canonical shape; this type owns only
/// versioning and round-tripping.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzeReport {
    /// The emitting tool, e.g. `"raul analyze"` or `"analyze_gate"`.
    pub tool: String,
    /// Verification configuration (free-form object: schemes, corpus).
    pub config: Json,
    /// Per-image verdicts (free-form array of objects with `name`,
    /// `scheme`, `clean`, `errors`, `warnings`, `notes`, `diagnostics`).
    pub images: Json,
    /// Corpus-level aggregate (free-form object: `images`, `clean`,
    /// `errors`, `warnings`).
    pub aggregate: Json,
}

impl AnalyzeReport {
    /// Creates an analyze report from its three sections.
    pub fn new(tool: &str, config: Json, images: Json, aggregate: Json) -> AnalyzeReport {
        AnalyzeReport {
            tool: tool.to_string(),
            config,
            images,
            aggregate,
        }
    }

    /// The report as a JSON value (with `schema_version` stamped in).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "schema_version".to_string(),
                Json::Int(ANALYZE_SCHEMA_VERSION),
            ),
            ("tool".to_string(), Json::Str(self.tool.clone())),
            ("config".to_string(), self.config.clone()),
            ("images".to_string(), self.images.clone()),
            ("aggregate".to_string(), self.aggregate.clone()),
        ])
    }

    /// Serializes to one compact JSON line.
    pub fn render(&self) -> String {
        self.to_json().render()
    }

    /// Reconstructs an analyze report from a parsed JSON value.
    ///
    /// # Errors
    ///
    /// Fails when `schema_version` is missing or not
    /// [`ANALYZE_SCHEMA_VERSION`], or a required section is absent.
    pub fn from_json(value: &Json) -> Result<AnalyzeReport, String> {
        let version = value
            .get("schema_version")
            .and_then(Json::as_i64)
            .ok_or("missing schema_version")?;
        if version != ANALYZE_SCHEMA_VERSION {
            return Err(format!(
                "unsupported analyze schema_version {version} (expected {ANALYZE_SCHEMA_VERSION})"
            ));
        }
        let tool = value
            .get("tool")
            .and_then(Json::as_str)
            .ok_or("missing tool")?
            .to_string();
        let section = |name: &str| -> Result<Json, String> {
            value
                .get(name)
                .cloned()
                .ok_or(format!("missing {name} section"))
        };
        Ok(AnalyzeReport {
            tool,
            config: section("config")?,
            images: section("images")?,
            aggregate: section("aggregate")?,
        })
    }

    /// Parses an analyze report from JSON text.
    ///
    /// # Errors
    ///
    /// Propagates JSON syntax errors and schema violations.
    pub fn parse(text: &str) -> Result<AnalyzeReport, String> {
        AnalyzeReport::from_json(&Json::parse(text)?)
    }
}

/// One machine-readable profiling report (schema
/// [`PROFILE_SCHEMA_VERSION`]).
///
/// Where [`RunReport`] carries a run's aggregate counters, a
/// `ProfileReport` carries its *attribution*: per-DIR-region, per-opcode,
/// and per-tier cycle/dispatch breakdowns, opcode-pair frequencies, and
/// DTB occupancy/eviction timelines, plus an optional pool section
/// (per-tenant latency histograms, worker utilization, queue depth). The
/// `profile` and `aggregate` sections are free-form objects — the
/// producing crate (`uhm-profile`) fills the canonical shape; this type
/// owns only versioning and round-tripping.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileReport {
    /// The emitting tool, e.g. `"raul profile"` or `"profile_gate"`.
    pub tool: String,
    /// Profiling configuration (free-form object: workload, mode,
    /// scheme, knobs).
    pub config: Json,
    /// The attribution payload (free-form object: `regions`, `opcodes`,
    /// `tiers`, `pairs`, `dtb_timeline`, `hottest`, `coverage`).
    pub profile: Json,
    /// Run-level aggregates (free-form object: `instructions`,
    /// `cycles`, `events`).
    pub aggregate: Json,
    /// Optional pool aggregation (per-tenant latency histograms, worker
    /// utilization, queue-depth samples).
    pub pool: Option<Json>,
    /// Optional trace-sink health, mirroring [`RunReport::trace_health`].
    pub trace_health: Option<Json>,
}

impl ProfileReport {
    /// Creates a profile report with empty optional sections.
    pub fn new(tool: &str, config: Json, profile: Json, aggregate: Json) -> ProfileReport {
        ProfileReport {
            tool: tool.to_string(),
            config,
            profile,
            aggregate,
            pool: None,
            trace_health: None,
        }
    }

    /// The report as a JSON value (with `schema_version` stamped in).
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            (
                "schema_version".to_string(),
                Json::Int(PROFILE_SCHEMA_VERSION),
            ),
            ("tool".to_string(), Json::Str(self.tool.clone())),
            ("config".to_string(), self.config.clone()),
            ("profile".to_string(), self.profile.clone()),
            ("aggregate".to_string(), self.aggregate.clone()),
        ];
        if let Some(p) = &self.pool {
            pairs.push(("pool".to_string(), p.clone()));
        }
        if let Some(t) = &self.trace_health {
            pairs.push(("trace_health".to_string(), t.clone()));
        }
        Json::Obj(pairs)
    }

    /// Serializes to one compact JSON line.
    pub fn render(&self) -> String {
        self.to_json().render()
    }

    /// Reconstructs a profile report from a parsed JSON value.
    ///
    /// # Errors
    ///
    /// Fails when `schema_version` is missing or not
    /// [`PROFILE_SCHEMA_VERSION`], or a required section is absent.
    pub fn from_json(value: &Json) -> Result<ProfileReport, String> {
        let version = value
            .get("schema_version")
            .and_then(Json::as_i64)
            .ok_or("missing schema_version")?;
        if version != PROFILE_SCHEMA_VERSION {
            return Err(format!(
                "unsupported profile schema_version {version} (expected {PROFILE_SCHEMA_VERSION})"
            ));
        }
        let tool = value
            .get("tool")
            .and_then(Json::as_str)
            .ok_or("missing tool")?
            .to_string();
        let section = |name: &str| -> Result<Json, String> {
            value
                .get(name)
                .cloned()
                .ok_or(format!("missing {name} section"))
        };
        Ok(ProfileReport {
            tool,
            config: section("config")?,
            profile: section("profile")?,
            aggregate: section("aggregate")?,
            pool: value.get("pool").cloned(),
            trace_health: value.get("trace_health").cloned(),
        })
    }

    /// Parses a profile report from JSON text.
    ///
    /// # Errors
    ///
    /// Propagates JSON syntax errors and schema violations.
    pub fn parse(text: &str) -> Result<ProfileReport, String> {
        ProfileReport::from_json(&Json::parse(text)?)
    }
}

/// One machine-readable resilience report (schema
/// [`RESILIENCE_SCHEMA_VERSION`]).
///
/// The output shape of chaos campaigns and supervised pool runs: a
/// `scenarios` array (one entry per seeded chaos scenario, free-form —
/// the producing bench fills the canonical shape), an `outcomes` object
/// (the aggregate outcome table: completed / trapped / panicked /
/// timed_out / shed / quarantined counts plus retries and worker
/// crashes), and an `invariants` object recording the campaign's verdict
/// on each asserted invariant (no lost tenants, full accounting,
/// bit-identical survivors, bounded p99). This type owns only
/// versioning and round-tripping.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceReport {
    /// The emitting tool, e.g. `"chaos_campaign"` or `"raul chaos"`.
    pub tool: String,
    /// Campaign configuration (free-form object: seeds, rates, policies,
    /// worker counts).
    pub config: Json,
    /// Per-scenario results (free-form array).
    pub scenarios: Json,
    /// The aggregate outcome table (free-form object).
    pub outcomes: Json,
    /// Invariant verdicts (free-form object; `true` = held everywhere).
    pub invariants: Json,
}

impl ResilienceReport {
    /// Creates a resilience report.
    pub fn new(
        tool: &str,
        config: Json,
        scenarios: Json,
        outcomes: Json,
        invariants: Json,
    ) -> ResilienceReport {
        ResilienceReport {
            tool: tool.to_string(),
            config,
            scenarios,
            outcomes,
            invariants,
        }
    }

    /// The report as a JSON value (with `schema_version` stamped in).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "schema_version".to_string(),
                Json::Int(RESILIENCE_SCHEMA_VERSION),
            ),
            ("tool".to_string(), Json::Str(self.tool.clone())),
            ("config".to_string(), self.config.clone()),
            ("scenarios".to_string(), self.scenarios.clone()),
            ("outcomes".to_string(), self.outcomes.clone()),
            ("invariants".to_string(), self.invariants.clone()),
        ])
    }

    /// Serializes to one compact JSON line.
    pub fn render(&self) -> String {
        self.to_json().render()
    }

    /// Reconstructs a resilience report from a parsed JSON value.
    ///
    /// # Errors
    ///
    /// Fails when `schema_version` is missing or not
    /// [`RESILIENCE_SCHEMA_VERSION`], or a required section is absent.
    pub fn from_json(value: &Json) -> Result<ResilienceReport, String> {
        let version = value
            .get("schema_version")
            .and_then(Json::as_i64)
            .ok_or("missing schema_version")?;
        if version != RESILIENCE_SCHEMA_VERSION {
            return Err(format!(
                "unsupported resilience schema_version {version} \
                 (expected {RESILIENCE_SCHEMA_VERSION})"
            ));
        }
        let tool = value
            .get("tool")
            .and_then(Json::as_str)
            .ok_or("missing tool")?
            .to_string();
        let section = |name: &str| -> Result<Json, String> {
            value
                .get(name)
                .cloned()
                .ok_or(format!("missing {name} section"))
        };
        Ok(ResilienceReport {
            tool,
            config: section("config")?,
            scenarios: section("scenarios")?,
            outcomes: section("outcomes")?,
            invariants: section("invariants")?,
        })
    }

    /// Parses a resilience report from JSON text.
    ///
    /// # Errors
    ///
    /// Propagates JSON syntax errors and schema violations.
    pub fn parse(text: &str) -> Result<ResilienceReport, String> {
        ResilienceReport::from_json(&Json::parse(text)?)
    }
}

/// One machine-readable service report (schema
/// [`SERVICE_SCHEMA_VERSION`]).
///
/// The output shape of request-serving runs (`raul serve`/`raul load`,
/// the `service_load` bench): where [`PoolReport`] carries one batch's
/// latency percentiles, a `ServiceReport` extends them into a
/// *latency-under-load trajectory* — a `steps` array with one entry per
/// open-loop arrival-rate step, each carrying its own
/// p50/p95/p99/p99.9 latency (in **modeled cycles**, so the trajectory
/// is deterministic and committable as a baseline) plus the step's
/// request outcome table (completed / trapped / rejected / shed). The
/// `aggregate` section totals the outcome table across steps; the
/// optional `slo` section records the producing tool's verdicts on its
/// service-level objectives (bounded p99, zero lost requests, full
/// accounting). Sections are free-form — the producing crate
/// (`uhm::report::service_report`) fills the canonical shape; this type
/// owns only versioning and round-tripping.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceReport {
    /// The emitting tool, e.g. `"raul load"` or `"service_load"`.
    pub tool: String,
    /// Service configuration (free-form object: workers, watermark,
    /// quota, admission bound, seed, request mix).
    pub config: Json,
    /// Per-load-step trajectory entries, in sweep order (free-form
    /// array; each entry carries the step's arrival rate, outcome
    /// counts, and `latency_cycles` percentiles).
    pub steps: Json,
    /// Cross-step aggregates (free-form object: total requests, the
    /// outcome table, lost-request count).
    pub aggregate: Json,
    /// Optional SLO verdicts (free-form object; `true` = objective met).
    pub slo: Option<Json>,
}

impl ServiceReport {
    /// Creates a service report with an empty optional SLO section.
    pub fn new(tool: &str, config: Json, steps: Json, aggregate: Json) -> ServiceReport {
        ServiceReport {
            tool: tool.to_string(),
            config,
            steps,
            aggregate,
            slo: None,
        }
    }

    /// The report as a JSON value (with `schema_version` stamped in).
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            (
                "schema_version".to_string(),
                Json::Int(SERVICE_SCHEMA_VERSION),
            ),
            ("tool".to_string(), Json::Str(self.tool.clone())),
            ("config".to_string(), self.config.clone()),
            ("steps".to_string(), self.steps.clone()),
            ("aggregate".to_string(), self.aggregate.clone()),
        ];
        if let Some(s) = &self.slo {
            pairs.push(("slo".to_string(), s.clone()));
        }
        Json::Obj(pairs)
    }

    /// Serializes to one compact JSON line.
    pub fn render(&self) -> String {
        self.to_json().render()
    }

    /// Reconstructs a service report from a parsed JSON value.
    ///
    /// # Errors
    ///
    /// Fails when `schema_version` is missing or not
    /// [`SERVICE_SCHEMA_VERSION`], or a required section is absent.
    pub fn from_json(value: &Json) -> Result<ServiceReport, String> {
        let version = value
            .get("schema_version")
            .and_then(Json::as_i64)
            .ok_or("missing schema_version")?;
        if version != SERVICE_SCHEMA_VERSION {
            return Err(format!(
                "unsupported service schema_version {version} \
                 (expected {SERVICE_SCHEMA_VERSION})"
            ));
        }
        let tool = value
            .get("tool")
            .and_then(Json::as_str)
            .ok_or("missing tool")?
            .to_string();
        let section = |name: &str| -> Result<Json, String> {
            value
                .get(name)
                .cloned()
                .ok_or(format!("missing {name} section"))
        };
        Ok(ServiceReport {
            tool,
            config: section("config")?,
            steps: section("steps")?,
            aggregate: section("aggregate")?,
            slo: value.get("slo").cloned(),
        })
    }

    /// Parses a service report from JSON text.
    ///
    /// # Errors
    ///
    /// Propagates JSON syntax errors and schema violations.
    pub fn parse(text: &str) -> Result<ServiceReport, String> {
        ServiceReport::from_json(&Json::parse(text)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunReport {
        let mut r = RunReport::new(
            "raul run",
            Json::obj([
                ("workload", Json::from("sieve")),
                ("mode", Json::from("dtb")),
                ("dtb_entries", Json::from(64i64)),
            ]),
            Json::obj([
                ("instructions", Json::from(12345i64)),
                ("cycles_total", Json::from(99999i64)),
            ]),
            Json::obj([
                ("T", Json::from(8.1)),
                ("d", Json::from(12.0)),
                ("s1", Json::from(2.5)),
            ]),
        );
        r.windows = Some(Json::Arr(vec![Json::obj([
            ("start", Json::from(0i64)),
            ("hit_rate", Json::from(0.5)),
        ])]));
        r.output = Some(Json::Arr(vec![Json::Int(42)]));
        r
    }

    #[test]
    fn report_round_trips_through_text() {
        let r = sample();
        let text = r.render();
        let back = RunReport::parse(&text).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.to_json(), r.to_json());
    }

    #[test]
    fn schema_version_is_stamped_and_checked() {
        let r = sample();
        let j = r.to_json();
        assert_eq!(j.get("schema_version").and_then(Json::as_i64), Some(1));

        let mut wrong = j.clone();
        if let Json::Obj(pairs) = &mut wrong {
            pairs[0].1 = Json::Int(999);
        }
        let err = RunReport::from_json(&wrong).unwrap_err();
        assert!(err.contains("schema_version 999"), "{err}");
    }

    #[test]
    fn optional_sections_stay_optional() {
        let r = RunReport::new("t", Json::Obj(vec![]), Json::Obj(vec![]), Json::Obj(vec![]));
        let text = r.render();
        assert!(!text.contains("windows"));
        let back = RunReport::parse(&text).unwrap();
        assert_eq!(back.windows, None);
        assert_eq!(back.output, None);
    }

    #[test]
    fn missing_sections_are_rejected() {
        assert!(RunReport::parse("{\"schema_version\":1}").is_err());
        assert!(RunReport::parse("{}").is_err());
        assert!(RunReport::parse("not json").is_err());
    }

    fn pool_sample() -> PoolReport {
        PoolReport::new(
            "raul pool",
            Json::obj([
                ("workers", Json::from(4i64)),
                ("tenants", Json::from(8i64)),
                ("mode", Json::from("dtb")),
            ]),
            Json::Arr(vec![
                Json::obj([
                    ("tenant", Json::from(0i64)),
                    ("name", Json::from("sieve")),
                    ("status", Json::from("completed")),
                    ("latency_ns", Json::from(125_000i64)),
                ]),
                Json::obj([
                    ("tenant", Json::from(1i64)),
                    ("name", Json::from("fib")),
                    ("status", Json::from("completed")),
                    ("latency_ns", Json::from(250_000i64)),
                ]),
            ]),
            Json::obj([
                ("wall_ns", Json::from(300_000i64)),
                ("instructions", Json::from(99_000i64)),
                ("minstr_per_sec", Json::from(330.0)),
                ("steals", Json::from(3i64)),
            ]),
            Percentiles::of(&[125_000.0, 250_000.0]),
        )
    }

    #[test]
    fn pool_report_round_trips_through_text() {
        let r = pool_sample();
        let back = PoolReport::parse(&r.render()).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.latency.p50, 187_500.0);
    }

    #[test]
    fn pool_schema_version_is_distinct_and_checked() {
        let r = pool_sample();
        let j = r.to_json();
        assert_eq!(j.get("schema_version").and_then(Json::as_i64), Some(2));

        // A pool report is not parseable as a run report and vice versa:
        // the version spaces are disjoint by construction.
        assert!(RunReport::from_json(&j).is_err());
        assert!(PoolReport::from_json(&sample().to_json()).is_err());
    }

    fn analyze_sample() -> AnalyzeReport {
        AnalyzeReport::new(
            "raul analyze",
            Json::obj([("scheme", Json::from("huffman"))]),
            Json::Arr(vec![Json::obj([
                ("name", Json::from("sieve")),
                ("scheme", Json::from("huffman")),
                ("clean", Json::Bool(true)),
                ("errors", Json::from(0i64)),
                ("warnings", Json::from(1i64)),
                ("notes", Json::from(0i64)),
                (
                    "diagnostics",
                    Json::Arr(vec![Json::obj([
                        ("code", Json::from("AN501")),
                        ("severity", Json::from("warning")),
                        ("message", Json::from("hot loop exceeds default DTB")),
                    ])]),
                ),
            ])]),
            Json::obj([
                ("images", Json::from(1i64)),
                ("clean", Json::from(1i64)),
                ("errors", Json::from(0i64)),
                ("warnings", Json::from(1i64)),
            ]),
        )
    }

    #[test]
    fn analyze_report_round_trips_through_text() {
        let r = analyze_sample();
        let back = AnalyzeReport::parse(&r.render()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn analyze_schema_version_is_distinct_and_checked() {
        let j = analyze_sample().to_json();
        assert_eq!(j.get("schema_version").and_then(Json::as_i64), Some(7));
        // The three report families reject each other's versions.
        assert!(RunReport::from_json(&j).is_err());
        assert!(PoolReport::from_json(&j).is_err());
        assert!(AnalyzeReport::from_json(&sample().to_json()).is_err());
        assert!(AnalyzeReport::from_json(&pool_sample().to_json()).is_err());
    }

    #[test]
    fn analyze_v7_rejects_pre_facts_version_3_documents() {
        // A document stamped with the pre-dataflow analyze version (3)
        // must be rejected: its verdicts carry no fact sections, and a
        // silent parse would read absent coverage as zero.
        let mut doctored = analyze_sample().to_json();
        if let Json::Obj(pairs) = &mut doctored {
            pairs[0].1 = Json::Int(3);
        }
        let err = AnalyzeReport::from_json(&doctored).unwrap_err();
        assert!(
            err.contains("unsupported analyze schema_version 3 (expected 7)"),
            "{err}"
        );
    }

    #[test]
    fn pool_report_requires_latency_percentiles() {
        let mut j = pool_sample().to_json();
        if let Json::Obj(pairs) = &mut j {
            pairs.retain(|(k, _)| k != "latency_ns");
        }
        let err = PoolReport::from_json(&j).unwrap_err();
        assert!(err.contains("latency_ns"), "{err}");
    }

    #[test]
    fn pool_report_parses_pre_p999_latency_sections() {
        // Reports rendered before p99.9 existed lack the key; adding a
        // field is backward compatible, so they still parse (as 0.0).
        let mut j = pool_sample().to_json();
        if let Json::Obj(pairs) = &mut j {
            for (k, v) in pairs.iter_mut() {
                if k == "latency_ns" {
                    if let Json::Obj(lat) = v {
                        lat.retain(|(name, _)| name != "p999");
                    }
                }
            }
        }
        let back = PoolReport::from_json(&j).unwrap();
        assert_eq!(back.latency.p999, 0.0);
        assert_eq!(back.latency.p99, pool_sample().latency.p99);
    }

    fn profile_sample() -> ProfileReport {
        let mut r = ProfileReport::new(
            "raul profile",
            Json::obj([
                ("workload", Json::from("queens")),
                ("mode", Json::from("dtb")),
            ]),
            Json::obj([
                (
                    "tiers",
                    Json::Arr(vec![Json::obj([
                        ("tier", Json::from("psder")),
                        ("dispatches", Json::from(900i64)),
                        ("cycles", Json::from(5400i64)),
                    ])]),
                ),
                (
                    "regions",
                    Json::Arr(vec![Json::obj([
                        ("name", Json::from("main")),
                        ("cycles", Json::from(5400i64)),
                    ])]),
                ),
            ]),
            Json::obj([
                ("instructions", Json::from(900i64)),
                ("cycles", Json::from(5400i64)),
            ]),
        );
        r.pool = Some(Json::obj([("queue_depth_max", Json::from(4i64))]));
        r.trace_health = Some(Json::obj([("events_dropped", Json::from(0i64))]));
        r
    }

    #[test]
    fn profile_report_round_trips_through_text() {
        let r = profile_sample();
        let back = ProfileReport::parse(&r.render()).unwrap();
        assert_eq!(back, r);
        // Optional sections stay optional.
        let bare = ProfileReport::new("t", Json::Obj(vec![]), Json::Obj(vec![]), Json::Obj(vec![]));
        let back = ProfileReport::parse(&bare.render()).unwrap();
        assert_eq!(back.pool, None);
        assert_eq!(back.trace_health, None);
    }

    fn resilience_sample() -> ResilienceReport {
        ResilienceReport::new(
            "chaos_campaign",
            Json::obj([
                ("scenarios", Json::from(128i64)),
                ("tenants", Json::from(16i64)),
                ("fuel", Json::from(2_000_000i64)),
            ]),
            Json::Arr(vec![Json::obj([
                ("seed", Json::from(7i64)),
                ("completed", Json::from(14i64)),
                ("timed_out", Json::from(2i64)),
            ])]),
            Json::obj([
                ("completed", Json::from(14i64)),
                ("trapped", Json::from(0i64)),
                ("panicked", Json::from(0i64)),
                ("timed_out", Json::from(2i64)),
                ("shed", Json::from(0i64)),
                ("quarantined", Json::from(0i64)),
                ("retries", Json::from(2i64)),
                ("worker_crashes", Json::from(1i64)),
            ]),
            Json::obj([
                ("no_lost_tenants", Json::Bool(true)),
                ("full_accounting", Json::Bool(true)),
                ("bit_identical_survivors", Json::Bool(true)),
                ("p99_bounded", Json::Bool(true)),
            ]),
        )
    }

    #[test]
    fn resilience_report_round_trips_and_rejects_other_versions() {
        let r = resilience_sample();
        let back = ResilienceReport::parse(&r.render()).unwrap();
        assert_eq!(back, r);
        assert_eq!(
            back.to_json().get("schema_version").and_then(Json::as_i64),
            Some(RESILIENCE_SCHEMA_VERSION)
        );
        assert_eq!(
            back.outcomes.get("timed_out").and_then(Json::as_i64),
            Some(2)
        );
        assert_eq!(
            back.invariants
                .get("bit_identical_survivors")
                .and_then(Json::as_bool),
            Some(true)
        );
        // A doctored version is refused with the family's own message.
        let mut doctored = r.to_json();
        if let Json::Obj(pairs) = &mut doctored {
            pairs[0].1 = Json::Int(4);
        }
        let err = ResilienceReport::from_json(&doctored).unwrap_err();
        assert!(
            err.contains("unsupported resilience schema_version 4"),
            "{err}"
        );
        // Missing sections are named.
        let bare = Json::obj([
            ("schema_version", Json::Int(RESILIENCE_SCHEMA_VERSION)),
            ("tool", Json::from("chaos_campaign")),
            ("config", Json::obj([])),
            ("scenarios", Json::Arr(vec![])),
            ("outcomes", Json::obj([])),
        ]);
        let err = ResilienceReport::from_json(&bare).unwrap_err();
        assert!(err.contains("missing invariants section"), "{err}");
    }

    fn service_sample() -> ServiceReport {
        let mut r = ServiceReport::new(
            "service_load",
            Json::obj([
                ("workers", Json::from(4i64)),
                ("queue_watermark", Json::from(32i64)),
                ("seed", Json::from(7i64)),
            ]),
            Json::Arr(vec![Json::obj([
                ("rate_per_mcycle", Json::from(8i64)),
                ("requests", Json::from(120i64)),
                ("completed", Json::from(118i64)),
                ("shed", Json::from(2i64)),
                (
                    "latency_cycles",
                    Json::obj([
                        ("p50", Json::from(41_000.0)),
                        ("p95", Json::from(95_000.0)),
                        ("p99", Json::from(140_000.0)),
                        ("p999", Json::from(160_000.0)),
                    ]),
                ),
            ])]),
            Json::obj([
                ("requests", Json::from(120i64)),
                ("completed", Json::from(118i64)),
                ("shed", Json::from(2i64)),
                ("lost", Json::from(0i64)),
            ]),
        );
        r.slo = Some(Json::obj([
            ("zero_lost_requests", Json::Bool(true)),
            ("p99_within_baseline", Json::Bool(true)),
        ]));
        r
    }

    #[test]
    fn service_report_round_trips_and_rejects_other_versions() {
        let r = service_sample();
        let back = ServiceReport::parse(&r.render()).unwrap();
        assert_eq!(back, r);
        assert_eq!(
            back.to_json().get("schema_version").and_then(Json::as_i64),
            Some(SERVICE_SCHEMA_VERSION)
        );
        assert_eq!(back.aggregate.get("lost").and_then(Json::as_i64), Some(0));
        // The optional SLO section stays optional.
        let bare = ServiceReport::new("t", Json::obj([]), Json::Arr(vec![]), Json::obj([]));
        let back = ServiceReport::parse(&bare.render()).unwrap();
        assert_eq!(back.slo, None);
        // A doctored version is refused with the family's own message.
        let mut doctored = r.to_json();
        if let Json::Obj(pairs) = &mut doctored {
            pairs[0].1 = Json::Int(5);
        }
        let err = ServiceReport::from_json(&doctored).unwrap_err();
        assert!(
            err.contains("unsupported service schema_version 5"),
            "{err}"
        );
        // Missing sections are named.
        let bare = Json::obj([
            ("schema_version", Json::Int(SERVICE_SCHEMA_VERSION)),
            ("tool", Json::from("service_load")),
            ("config", Json::obj([])),
            ("steps", Json::Arr(vec![])),
        ]);
        let err = ServiceReport::from_json(&bare).unwrap_err();
        assert!(err.contains("missing aggregate section"), "{err}");
    }

    #[test]
    fn all_report_families_reject_each_other_seven_ways() {
        let run = sample().to_json();
        let pool = pool_sample().to_json();
        let analyze = analyze_sample().to_json();
        let profile = profile_sample().to_json();
        let resilience = resilience_sample().to_json();
        let service = service_sample().to_json();
        // Seventh shape in the stream: a legacy pre-facts analyze
        // document (version 3). Nobody parses it any more.
        let legacy_analyze = {
            let mut j = analyze_sample().to_json();
            if let Json::Obj(pairs) = &mut j {
                pairs[0].1 = Json::Int(3);
            }
            j
        };
        assert_eq!(
            profile.get("schema_version").and_then(Json::as_i64),
            Some(4)
        );
        assert_eq!(
            resilience.get("schema_version").and_then(Json::as_i64),
            Some(5)
        );
        assert_eq!(
            service.get("schema_version").and_then(Json::as_i64),
            Some(6)
        );

        // Each family parses only its own version: 6 families × 6 foreign
        // shapes (the five other families plus the legacy v3 analyze
        // document) — seven-way disambiguation in one JSONL stream.
        for other in [
            &pool,
            &analyze,
            &profile,
            &resilience,
            &service,
            &legacy_analyze,
        ] {
            assert!(RunReport::from_json(other).is_err());
        }
        for other in [
            &run,
            &analyze,
            &profile,
            &resilience,
            &service,
            &legacy_analyze,
        ] {
            assert!(PoolReport::from_json(other).is_err());
        }
        for other in [
            &run,
            &pool,
            &profile,
            &resilience,
            &service,
            &legacy_analyze,
        ] {
            assert!(AnalyzeReport::from_json(other).is_err());
        }
        for other in [
            &run,
            &pool,
            &analyze,
            &resilience,
            &service,
            &legacy_analyze,
        ] {
            let err = ProfileReport::from_json(other).unwrap_err();
            assert!(err.contains("unsupported profile schema_version"), "{err}");
        }
        for other in [&run, &pool, &analyze, &profile, &service, &legacy_analyze] {
            let err = ResilienceReport::from_json(other).unwrap_err();
            assert!(
                err.contains("unsupported resilience schema_version"),
                "{err}"
            );
        }
        for other in [
            &run,
            &pool,
            &analyze,
            &profile,
            &resilience,
            &legacy_analyze,
        ] {
            let err = ServiceReport::from_json(other).unwrap_err();
            assert!(err.contains("unsupported service schema_version"), "{err}");
        }
    }

    #[test]
    fn trace_health_rides_along_on_run_and_pool_reports() {
        let mut r = sample();
        r.trace_health = Some(Json::obj([
            ("events_dropped", Json::from(7i64)),
            ("events_retained", Json::from(256i64)),
        ]));
        let back = RunReport::parse(&r.render()).unwrap();
        assert_eq!(back.trace_health, r.trace_health);

        let mut p = pool_sample();
        p.trace_health = Some(Json::obj([("write_error", Json::from("disk full"))]));
        let back = PoolReport::parse(&p.render()).unwrap();
        assert_eq!(back.trace_health, p.trace_health);
    }
}
