//! # uhm-repro — facade crate
//!
//! Re-exports the whole reproduction of Rau (1978), *Levels of
//! Representation of Programs and the Architecture of Universal Host
//! Machines*, as one dependency. See the individual crates for the
//! subsystems:
//!
//! * [`hlr`] — the RAUL high-level language (lexer, parser, sema, evaluator);
//! * [`dir`] — the directly interpretable representation, its compiler and
//!   the five encodings of Section 3.2;
//! * [`psder`] — the procedurally structured DER: microinstructions,
//!   semantic routines and the short-format IU2 instruction set;
//! * [`memsim`] — the two-level memory hierarchy and set-associative caches;
//! * [`uhm`] — the universal host machine with its dynamic translation
//!   buffer, plus the Section 7 analytic model;
//! * [`profile`] — the deep profiling plane: attribution counters, span
//!   tracing with Perfetto export, flamegraphs and coverage profiles.
//!
//! The `examples/` directory of this package contains the runnable
//! walkthroughs; `tests/` holds the cross-crate integration suite.

pub use dir;
pub use hlr;
pub use memsim;
pub use profile;
pub use psder;
pub use uhm;
