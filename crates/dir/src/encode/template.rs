//! Per-region decode templates for the table plane's streaming decoder.
//!
//! A contour region fixes every operand-field width, so the work of
//! decoding one instruction collapses to: resolve the opcode (one Huffman
//! LUT probe), look up the region's precomputed field total for that
//! opcode, and shift the already-peeked window apart into operand values.
//! [`decode_window`] mirrors [`Inst::from_parts`] arm for arm — same
//! field order, same range checks, same error values — but constructs the
//! instruction straight from the window without an intermediate field
//! buffer or a second opcode dispatch. The differential suite holds it
//! bit-identical to the reference path on every scheme and corpus.

use crate::isa::{
    unzigzag, AluOp, DecodeError, FieldKind, Inst, Opcode, FIELD_KINDS, OPCODES, OPCODE_COUNT,
};

use super::Region;

/// Widths and per-opcode field totals of one contour region, hoisted out
/// of the streaming loop so the per-instruction path does no width
/// arithmetic beyond a table lookup.
pub(super) struct RegionTpl {
    /// Field width in bits per [`FieldKind::index`].
    wd: [u32; FIELD_KINDS.len()],
    /// Sum of operand-field widths per opcode discriminant.
    fields_total: [u32; OPCODE_COUNT],
    /// Modeled cost of the operand fields per opcode discriminant
    /// (3 per field, as the scheme cost formulas charge).
    field_cost: [u32; OPCODE_COUNT],
    /// Base added back onto region-relative branch targets.
    base: u32,
}

impl RegionTpl {
    pub(super) fn new(region: &Region) -> RegionTpl {
        let mut wd = [0u32; FIELD_KINDS.len()];
        for kind in FIELD_KINDS {
            wd[kind.index()] = region.widths.width(kind);
        }
        let mut fields_total = [0u32; OPCODE_COUNT];
        let mut field_cost = [0u32; OPCODE_COUNT];
        for op in OPCODES {
            let kinds = op.field_kinds();
            fields_total[op as usize] = kinds.iter().map(|k| wd[k.index()]).sum();
            field_cost[op as usize] = 3 * kinds.len() as u32;
        }
        RegionTpl {
            wd,
            fields_total,
            field_cost,
            base: region.target_base,
        }
    }

    /// Total operand-field bits of `opcode` in this region.
    #[inline]
    pub(super) fn fields_total(&self, opcode: usize) -> u32 {
        self.fields_total[opcode]
    }

    /// Modeled operand-field cost of `opcode` (3 per field).
    #[inline]
    pub(super) fn field_cost(&self, opcode: usize) -> u32 {
        self.field_cost[opcode]
    }
}

/// Builds the instruction directly from a peeked 57-bit window (value in
/// the low 57 bits, stream order from the top), with operand fields
/// starting `code_bits` in. The caller must have verified that
/// `code_bits + fields_total(opcode)` bits are in-stream — every shift
/// here touches only verified bits, and the window's zero-masked padding
/// is never reached.
///
/// # Errors
///
/// Exactly [`Inst::from_parts`]' errors in the same field order: a
/// [`DecodeError::FieldRange`] for an over-`u32` value (unreachable for
/// width-measured regions, kept for parity) and [`DecodeError::BadAluOp`]
/// for an in-width but unassigned ALU discriminant.
#[inline]
#[allow(unused_assignments)] // each arm's final `take!` advance is unread
pub(super) fn decode_window(
    opcode: Opcode,
    window: u64,
    code_bits: u32,
    tpl: &RegionTpl,
) -> Result<Inst, DecodeError> {
    let mut off = code_bits;
    // Extracts the next field of `kind`, advancing the running offset.
    macro_rules! take {
        ($kind:expr) => {{
            let w = tpl.wd[$kind.index()];
            let raw = (window << (7 + off)) >> (64 - w);
            off += w;
            raw
        }};
    }
    // A u32-ranged field, with `from_parts`' range check and error.
    macro_rules! fu32 {
        ($kind:expr) => {{
            let raw = take!($kind);
            u32::try_from(raw).map_err(|_| DecodeError::FieldRange($kind, raw))?
        }};
    }
    // A branch target: region-relative in the stream, rebased like the
    // field readers do before construction sees it.
    macro_rules! ftarget {
        () => {{
            let raw = take!(FieldKind::Target) + tpl.base as u64;
            u32::try_from(raw).map_err(|_| DecodeError::FieldRange(FieldKind::Target, raw))?
        }};
    }
    // A zigzag immediate (never fails, as in `from_parts`).
    macro_rules! fimm {
        () => {
            unzigzag(take!(FieldKind::Imm))
        };
    }
    // An ALU discriminant, validated exactly as `from_parts` does.
    macro_rules! falu {
        () => {{
            let raw = take!(FieldKind::Alu);
            u8::try_from(raw)
                .ok()
                .and_then(AluOp::from_u8)
                .ok_or(DecodeError::BadAluOp(raw))?
        }};
    }

    use FieldKind::{GlobalSlot, Len, Proc, Slot};
    Ok(match opcode {
        Opcode::PushConst => Inst::PushConst(fimm!()),
        Opcode::PushLocal => Inst::PushLocal(fu32!(Slot)),
        Opcode::PushGlobal => Inst::PushGlobal(fu32!(GlobalSlot)),
        Opcode::StoreLocal => Inst::StoreLocal(fu32!(Slot)),
        Opcode::StoreGlobal => Inst::StoreGlobal(fu32!(GlobalSlot)),
        Opcode::LoadArrLocal => {
            let base = fu32!(Slot);
            let len = fu32!(Len);
            Inst::LoadArrLocal { base, len }
        }
        Opcode::LoadArrGlobal => {
            let base = fu32!(GlobalSlot);
            let len = fu32!(Len);
            Inst::LoadArrGlobal { base, len }
        }
        Opcode::StoreArrLocal => {
            let base = fu32!(Slot);
            let len = fu32!(Len);
            Inst::StoreArrLocal { base, len }
        }
        Opcode::StoreArrGlobal => {
            let base = fu32!(GlobalSlot);
            let len = fu32!(Len);
            Inst::StoreArrGlobal { base, len }
        }
        Opcode::Pop => Inst::Pop,
        Opcode::Bin => Inst::Bin(falu!()),
        Opcode::Neg => Inst::Neg,
        Opcode::Not => Inst::Not,
        Opcode::Jump => Inst::Jump(ftarget!()),
        Opcode::JumpIfFalse => Inst::JumpIfFalse(ftarget!()),
        Opcode::JumpIfTrue => Inst::JumpIfTrue(ftarget!()),
        Opcode::Call => Inst::Call(fu32!(Proc)),
        Opcode::Return => Inst::Return,
        Opcode::Halt => Inst::Halt,
        Opcode::Write => Inst::Write,
        Opcode::BinLocals => {
            let op = falu!();
            let a = fu32!(Slot);
            let b = fu32!(Slot);
            let dst = fu32!(Slot);
            Inst::BinLocals { op, a, b, dst }
        }
        Opcode::IncLocal => {
            let slot = fu32!(Slot);
            let imm = fimm!();
            Inst::IncLocal { slot, imm }
        }
        Opcode::SetLocalConst => {
            let slot = fu32!(Slot);
            let imm = fimm!();
            Inst::SetLocalConst { slot, imm }
        }
        Opcode::CmpConstBr => {
            let op = falu!();
            let slot = fu32!(Slot);
            let imm = fimm!();
            let target = ftarget!();
            Inst::CmpConstBr {
                op,
                slot,
                imm,
                target,
            }
        }
        Opcode::CmpLocalsBr => {
            let op = falu!();
            let a = fu32!(Slot);
            let b = fu32!(Slot);
            let target = ftarget!();
            Inst::CmpLocalsBr { op, a, b, target }
        }
    })
}
