//! Telemetry end-to-end checks: ring-sink event counts must agree with the
//! machine's own metrics, window samples must partition the run, and the
//! `raul --json` surfaces must emit versioned reports that round-trip
//! through their parsers (`raul run` a schema-1 [`RunReport`],
//! `raul profile` a schema-4 [`ProfileReport`], `raul chaos` a schema-2
//! [`PoolReport`] carrying the supervised outcome taxonomy, and
//! `raul load` a schema-6 [`ServiceReport`] whose trajectory steps keep
//! the five-state request accounting closed).

use std::process::Command;

use dir::encode::SchemeKind;
use telemetry::{Json, PoolReport, ProfileReport, RingSink, RunReport, ServiceReport};
use uhm::{DtbConfig, Machine, Mode};

fn sample_machine() -> (dir::program::Program, Mode) {
    let program = dir::compiler::compile(&hlr::programs::QUEENS.compile().unwrap());
    (program, Mode::Dtb(DtbConfig::with_capacity(32)))
}

#[test]
fn ring_sink_counts_agree_with_metrics() {
    let (program, mode) = sample_machine();
    let machine = Machine::new(&program, SchemeKind::PairHuffman);
    let mut sink = RingSink::new(256);
    let report = machine.run_with(&mode, &mut sink).unwrap();
    let c = sink.counts();
    let m = &report.metrics;
    let dtb = m.dtb.expect("dtb mode records dtb stats");

    // Every instruction in DTB mode is exactly one lookup: hit or miss.
    assert_eq!(c.dtb_hits + c.dtb_misses, m.instructions);
    assert_eq!(c.dtb_hits, dtb.hits);
    assert_eq!(c.dtb_misses, dtb.misses);
    // You cannot displace a translation without having missed first.
    assert!(c.evictions <= c.dtb_misses);
    assert_eq!(c.evictions, dtb.evictions);
    // A traced run classifies every miss into exactly one taxonomy bin.
    assert_eq!(
        c.cold_misses + c.capacity_misses + c.conflict_misses,
        c.dtb_misses
    );
    // Each cached miss produces exactly one translation event.
    assert_eq!(c.translations, c.dtb_misses - dtb.uncached);
    // Calls and returns balance (the final Halt exit is also emitted).
    assert_eq!(c.routine_enters, c.routine_exits);
    // The ring is bounded even though the counts are exact.
    assert!(sink.events().count() <= 256);
    assert!(c.total() >= m.instructions);
}

#[test]
fn untraced_run_is_equivalent() {
    // The NullSink path must produce identical metrics: telemetry is
    // observation, never behaviour.
    let (program, mode) = sample_machine();
    let machine = Machine::new(&program, SchemeKind::PairHuffman);
    let mut sink = RingSink::new(64);
    let traced = machine.run_with(&mode, &mut sink).unwrap();
    let plain = machine.run(&mode).unwrap();
    assert_eq!(plain.output, traced.output);
    assert_eq!(plain.metrics.instructions, traced.metrics.instructions);
    assert_eq!(plain.metrics.cycles.total(), traced.metrics.cycles.total());
    let (p, t) = (plain.metrics.dtb.unwrap(), traced.metrics.dtb.unwrap());
    assert_eq!(
        (p.hits, p.misses, p.evictions),
        (t.hits, t.misses, t.evictions)
    );
}

#[test]
fn window_samples_partition_the_run() {
    let (program, mode) = sample_machine();
    let mut machine = Machine::new(&program, SchemeKind::PairHuffman);
    machine.set_window(Some(500));
    let report = machine.run(&mode).unwrap();
    let windows = report.metrics.windows.as_ref().expect("windowing was on");
    assert!(!windows.is_empty());
    let total: u64 = windows.iter().map(|w| w.instructions).sum();
    assert_eq!(
        total, report.metrics.instructions,
        "windows partition the run"
    );
    let cycle_total: u64 = windows.iter().map(|w| w.cycles.total()).sum();
    assert_eq!(cycle_total, report.metrics.cycles.total());
    let dtb = report.metrics.dtb.unwrap();
    let hits: u64 = windows.iter().map(|w| w.dtb_hits).sum();
    let misses: u64 = windows.iter().map(|w| w.dtb_misses).sum();
    assert_eq!((hits, misses), (dtb.hits, dtb.misses));
    for w in windows {
        // In DTB mode every instruction is one lookup.
        assert_eq!(w.dtb_hits + w.dtb_misses, w.instructions);
        assert!((0.0..=1.0).contains(&w.hit_rate()));
        assert!(w.occupancy <= 32);
    }
    // Consecutive windows tile the instruction axis.
    for pair in windows.windows(2) {
        assert_eq!(pair[0].start + pair[0].instructions, pair[1].start);
    }
}

fn raul_stdout(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_raul"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("raul binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).unwrap()
}

fn raul_json(args: &[&str]) -> RunReport {
    RunReport::parse(raul_stdout(args).trim()).expect("stdout is one schema-1 RunReport")
}

#[test]
fn raul_run_json_emits_a_round_trippable_report() {
    let rr = raul_json(&["run", "examples/programs/sumloop.raul", "--json"]);
    assert_eq!(rr.tool, "raul");
    // The program's own output rides along: sum of 1..=100.
    assert_eq!(rr.output, Some(Json::Arr(vec![Json::Int(5050)])));
    let instructions = rr
        .metrics
        .get("instructions")
        .and_then(Json::as_i64)
        .expect("metrics.instructions");
    assert!(instructions > 0);
    // The taxonomy partitions the misses.
    let dtb = rr.metrics.get("dtb").expect("dtb mode stats");
    let field = |n: &str| dtb.get(n).and_then(Json::as_i64).unwrap();
    assert_eq!(
        field("cold_misses") + field("capacity_misses") + field("conflict_misses"),
        field("misses")
    );
    // Derived §7 parameters are present and sane.
    for p in ["time_per_instruction", "d", "g", "x", "s1", "s2"] {
        assert!(rr.derived.get(p).is_some(), "missing derived.{p}");
    }
    // Trace-sink health rides along: the flight recorder's retained and
    // dropped counts are surfaced in the report itself.
    let ring = rr
        .trace_health
        .as_ref()
        .and_then(|t| t.get("ring"))
        .expect("trace_health.ring");
    assert!(ring.get("retained").and_then(Json::as_i64).unwrap() > 0);
    assert!(ring.get("dropped").and_then(Json::as_i64).unwrap() >= 0);
    // Round trip: render → parse is the identity.
    let back = RunReport::parse(&rr.render()).unwrap();
    assert_eq!(back, rr);
}

#[test]
fn raul_run_json_with_window_attaches_samples() {
    let rr = raul_json(&[
        "run",
        "examples/programs/sumloop.raul",
        "--window",
        "200",
        "--json",
    ]);
    let Some(Json::Arr(windows)) = rr.windows else {
        panic!("expected a windows array");
    };
    assert!(!windows.is_empty());
    let total: i64 = windows
        .iter()
        .map(|w| w.get("instructions").and_then(Json::as_i64).unwrap())
        .sum();
    assert_eq!(
        Some(total),
        rr.metrics.get("instructions").and_then(Json::as_i64)
    );
}

#[test]
fn raul_profile_json_round_trips() {
    let text = raul_stdout(&["profile", "examples/programs/sumloop.raul", "--json"]);
    let pr = ProfileReport::parse(text.trim()).expect("stdout is one schema-4 ProfileReport");
    assert_eq!(pr.tool, "raul-profile");
    // The attribution payload carries every canonical section.
    for k in [
        "regions", "opcodes", "tiers", "pairs", "hottest", "coverage",
    ] {
        assert!(pr.profile.get(k).is_some(), "missing profile.{k}");
    }
    // The counter plane observed every retire (the retire invariant,
    // end to end through the CLI).
    let agg = |k: &str| pr.aggregate.get(k).and_then(Json::as_i64);
    assert_eq!(agg("instructions"), agg("retires_observed"));
    assert_eq!(agg("cycles"), agg("cycles_observed"));
    // A profile report is not a run report: the schemas reject each other.
    assert!(RunReport::parse(text.trim()).is_err());
    // Round trip: render → parse is the identity.
    let back = ProfileReport::parse(&pr.render()).unwrap();
    assert_eq!(back, pr);
}

#[test]
fn raul_chaos_json_accounts_every_supervised_outcome() {
    let text = raul_stdout(&[
        "chaos",
        "examples/programs/sumloop.raul",
        "--tenants",
        "6",
        "--workers",
        "2",
        "--seed",
        "0xC0A5",
        "--crash-rate",
        "0.5",
        "--json",
    ]);
    let pr = PoolReport::parse(text.trim()).expect("stdout is one schema-2 PoolReport");
    assert_eq!(pr.tool, "raul-chaos");
    let agg = |k: &str| pr.aggregate.get(k).and_then(Json::as_i64).unwrap();
    // The six-state outcome taxonomy partitions the tenants even with
    // chaos injected — nothing is silently lost.
    let accounted = agg("completed")
        + agg("trapped")
        + agg("panicked")
        + agg("timed_out")
        + agg("shed")
        + agg("quarantined");
    assert_eq!(accounted, agg("tenants"));
    assert_eq!(pr.tenants.as_arr().unwrap().len(), 6);
    // Supervision counters ride along.
    assert!(agg("retries") >= 0 && agg("worker_crashes") >= 0);
}

#[test]
fn raul_load_json_emits_a_round_trippable_service_report() {
    let text = raul_stdout(&[
        "load",
        "examples/programs/sumloop.raul",
        "--workers",
        "2",
        "--requests",
        "8",
        "--rates",
        "1,5000",
        "--watermark",
        "4",
        "--json",
    ]);
    let sr = ServiceReport::parse(text.trim()).expect("stdout is one schema-6 ServiceReport");
    assert_eq!(sr.tool, "raul-load");
    let steps = sr.steps.as_arr().expect("trajectory steps");
    assert_eq!(steps.len(), 2, "one step per requested rate");
    for step in steps {
        let f = |k: &str| step.get(k).and_then(Json::as_i64).unwrap();
        // The five-state request taxonomy partitions every step, and
        // the zero-lost invariant holds end to end through the CLI.
        assert_eq!(
            f("completed") + f("trapped") + f("panicked") + f("rejected") + f("shed"),
            f("requests")
        );
        assert_eq!(f("lost"), 0);
        assert!(step.get("latency_cycles").is_some(), "modeled percentiles");
        assert!(step.get("host").is_some(), "host observables ride along");
    }
    let agg = |k: &str| sr.aggregate.get(k).and_then(Json::as_i64).unwrap();
    assert_eq!(agg("requests"), 16);
    assert_eq!(agg("lost"), 0);
    // A service report is not a run or pool report: the schema families
    // reject each other in both directions.
    assert!(RunReport::parse(text.trim()).is_err());
    assert!(PoolReport::parse(text.trim()).is_err());
    // Round trip: render → parse is the identity.
    let back = ServiceReport::parse(&sr.render()).unwrap();
    assert_eq!(back, sr);
}

#[test]
fn raul_profile_json_with_tenants_attaches_the_pool_section() {
    let text = raul_stdout(&[
        "profile",
        "examples/programs/sumloop.raul",
        "--tenants",
        "4",
        "--workers",
        "2",
        "--json",
    ]);
    let pr = ProfileReport::parse(text.trim()).unwrap();
    let pool = pr.pool.as_ref().expect("pool section");
    assert_eq!(pool.get("tenants").and_then(Json::as_i64), Some(4));
    assert_eq!(pool.get("completed").and_then(Json::as_i64), Some(4));
    // The merged latency histogram totals the tenant count.
    assert_eq!(
        pool.get("latency_ns")
            .and_then(|h| h.get("total"))
            .and_then(Json::as_i64),
        Some(4)
    );
}
