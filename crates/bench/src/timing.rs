//! Minimal wall-clock micro-benchmark harness.
//!
//! The bench targets (`benches/*.rs`, built with `harness = false`) use
//! this instead of an external benchmarking crate: each named benchmark
//! is auto-calibrated to a batch size large enough to time reliably,
//! sampled several times, and summarized as min/mean ns per iteration.
//! With `--json` the collected timings render as a versioned
//! [`RunReport`] instead of the text table.

use std::hint::black_box;
use std::time::Instant;

use telemetry::{Json, RunReport};

/// Timing summary of one named benchmark.
#[derive(Debug, Clone)]
pub struct Timing {
    /// Benchmark name.
    pub name: String,
    /// Iterations per sampled batch.
    pub iters: u64,
    /// Fastest sampled batch, in ns per iteration.
    pub min_ns: f64,
    /// Mean over sampled batches, in ns per iteration.
    pub mean_ns: f64,
}

/// A collection of benchmarks run by one bench binary.
pub struct Harness {
    tool: &'static str,
    json: bool,
    results: Vec<Timing>,
}

const BATCH_TARGET_NANOS: u128 = 10_000_000; // 10 ms per sampled batch
const MAX_ITERS: u64 = 1 << 24;
const SAMPLES: usize = 5;

impl Harness {
    /// Creates a harness for the bench binary `tool`; reads `--json`
    /// from the process arguments.
    pub fn new(tool: &'static str) -> Harness {
        Harness {
            tool,
            json: std::env::args().any(|a| a == "--json"),
            results: Vec::new(),
        }
    }

    /// Times `f`, printing one result line immediately (unless in
    /// `--json` mode, where results are held for [`Harness::finish`]).
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) {
        // Calibrate: grow the batch until it takes long enough to time.
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let dt = t.elapsed().as_nanos().max(1);
            if dt >= BATCH_TARGET_NANOS || iters >= MAX_ITERS {
                break;
            }
            // Scale towards the target with headroom, at least doubling.
            let scale = (BATCH_TARGET_NANOS * 2 / dt) as u64;
            iters = iters.saturating_mul(scale.max(2)).min(MAX_ITERS);
        }
        let mut per_iter = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            per_iter.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
        let mean_ns = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let min_ns = per_iter.iter().copied().fold(f64::INFINITY, f64::min);
        if !self.json {
            println!("{name:<32} {min_ns:>12.1} ns/iter (min)  {mean_ns:>12.1} ns/iter (mean)");
        }
        self.results.push(Timing {
            name: name.to_string(),
            iters,
            min_ns,
            mean_ns,
        });
    }

    /// The timings collected so far.
    pub fn results(&self) -> &[Timing] {
        &self.results
    }

    /// In `--json` mode, renders the collected timings as a
    /// [`RunReport`] on stdout; otherwise a no-op (lines were already
    /// printed).
    pub fn finish(&self) {
        if !self.json {
            return;
        }
        let rows: Vec<Json> = self
            .results
            .iter()
            .map(|t| {
                Json::obj(vec![
                    ("name", t.name.clone().into()),
                    ("iters", t.iters.into()),
                    ("min_ns", t.min_ns.into()),
                    ("mean_ns", t.mean_ns.into()),
                ])
            })
            .collect();
        let config = Json::obj(vec![("samples", (SAMPLES as u64).into())]);
        let metrics = Json::obj(vec![("benchmarks", Json::Arr(rows))]);
        let report = RunReport::new(self.tool, config, metrics, Json::obj(vec![]));
        println!("{}", report.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_positive_timings() {
        let mut h = Harness {
            tool: "test",
            json: true, // suppress printing
            results: Vec::new(),
        };
        let mut acc = 0u64;
        h.bench("spin", || {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            acc
        });
        let t = &h.results()[0];
        assert!(t.min_ns > 0.0 && t.mean_ns >= t.min_ns);
        assert!(t.iters >= 1);
    }
}
