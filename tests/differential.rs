//! Seeded differential tests: on randomly generated (terminating,
//! trap-free) RAUL programs, every execution level and every encoding must
//! agree exactly. Randomness comes from the deterministic [`hlr::rng::Rng`]
//! so every run explores the same cases.

use dir::encode::SchemeKind;
use hlr::rng::Rng;
use uhm::{DtbConfig, Machine, Mode};

fn build(seed: u64) -> (hlr::hir::Program, dir::Program) {
    let ast = hlr::generate::program(seed, &hlr::generate::Config::default());
    let hir = hlr::sema::analyze(&ast).expect("generated programs are valid");
    let program = dir::compiler::compile(&hir);
    (hir, program)
}

/// HLR evaluator ≡ DIR executor ≡ PSDER interpreter on random programs.
#[test]
fn execution_levels_agree() {
    for seed in 0..48 {
        let (hir, program) = build(seed);
        let reference = hlr::eval::run(&hir).expect("trap-free by construction");
        assert_eq!(dir::exec::run(&program).unwrap(), reference, "seed {seed}");
        assert_eq!(
            psder::interp::run(&program).unwrap(),
            reference,
            "seed {seed}"
        );
    }
}

/// The assembler round-trips random compiled programs exactly.
#[test]
fn assembler_round_trips() {
    for seed in 0..48 {
        let (_, program) = build(seed);
        let text = dir::asm::disassemble(&program);
        let back = dir::asm::assemble(&text).expect("assembles");
        assert_eq!(back, program, "seed {seed}");
    }
}

/// Fusion preserves semantics on random programs.
#[test]
fn fusion_preserves_semantics() {
    for seed in 0..48 {
        let (_, program) = build(seed);
        let (fused, stats) = dir::fuse::fuse(&program);
        fused.validate().expect("fused output validates");
        assert!(stats.after <= stats.before, "seed {seed}");
        assert_eq!(
            dir::exec::run(&fused).unwrap(),
            dir::exec::run(&program).unwrap(),
            "seed {seed}"
        );
    }
}

/// Every encoding round-trips random programs, and sizes are ordered
/// byte ≥ packed ≥ contextual.
#[test]
fn encodings_round_trip() {
    for seed in 0..48 {
        let (_, program) = build(seed);
        let mut sizes = Vec::new();
        for scheme in SchemeKind::all() {
            let image = scheme.encode(&program);
            assert_eq!(
                image.decode_all().unwrap(),
                program.code,
                "seed {seed} {scheme}"
            );
            sizes.push(image.program_bits());
        }
        assert!(sizes[0] >= sizes[1], "seed {seed}: byte >= packed");
        assert!(sizes[1] >= sizes[2], "seed {seed}: packed >= contextual");
    }
}

/// All three machine modes produce the reference output on random
/// programs, under a randomly sized DTB.
#[test]
fn machine_modes_agree() {
    let mut rng = Rng::new(0x6d61_6368);
    for case in 0..16u64 {
        let seed = rng.next_u64();
        let cap_exp = rng.range_u32(2, 8);
        let (hir, program) = build(seed);
        let reference = hlr::eval::run(&hir).expect("trap-free by construction");
        let machine = Machine::new(&program, SchemeKind::PairHuffman);
        let modes = [
            Mode::Interpreter,
            Mode::Dtb(DtbConfig::with_capacity(1 << cap_exp)),
            Mode::ICache {
                geometry: memsim::Geometry::new(8, 4),
            },
        ];
        for mode in modes {
            let report = machine.run(&mode).expect("trap-free");
            assert_eq!(report.output, reference, "case {case} seed {seed} {mode:?}");
        }
    }
}

/// The DTB never changes results regardless of geometry, unit size or
/// allocation policy.
#[test]
fn dtb_geometry_is_semantically_transparent() {
    let mut rng = Rng::new(0x6474_6267);
    for case in 0..16u64 {
        let seed = rng.range_u64(0, 1000);
        let sets = rng.range_usize(1, 8);
        let ways = rng.range_usize(1, 5);
        let overflow = rng.bool_with(0.5).then(|| rng.range_usize(1, 6));
        let (_, program) = build(seed);
        let reference = dir::exec::run(&program).unwrap();
        let cfg = uhm::DtbConfig {
            geometry: memsim::Geometry::new(sets, ways),
            unit_words: match overflow {
                Some(_) => 3,
                None => psder::MAX_TRANSLATION_WORDS,
            },
            allocation: match overflow {
                Some(blocks) => uhm::Allocation::Overflow { blocks },
                None => uhm::Allocation::Fixed,
            },
            replacement: uhm::Replacement::Lru,
        };
        let machine = Machine::new(&program, SchemeKind::Packed);
        let report = machine.run(&Mode::Dtb(cfg)).expect("trap-free");
        assert_eq!(report.output, reference, "case {case} seed {seed}");
    }
}

/// Bitstream round-trip on random (value, width) sequences.
#[test]
fn bitstream_round_trips() {
    let mut rng = Rng::new(0x6269_7473);
    for case in 0..64u64 {
        let n = rng.range_usize(1, 50);
        let fields: Vec<(u64, u32)> = (0..n)
            .map(|_| {
                let width = rng.range_u32(1, 65);
                let v = rng.next_u64();
                let v = if width == 64 {
                    v
                } else {
                    v & ((1u64 << width) - 1)
                };
                (v, width)
            })
            .collect();
        let mut w = dir::bitstream::BitWriter::new();
        for &(v, width) in &fields {
            w.write(v, width);
        }
        let (buf, len) = w.finish();
        let mut r = dir::bitstream::BitReader::new(&buf, len);
        for &(v, width) in &fields {
            assert_eq!(r.read(width).unwrap(), v, "case {case}");
        }
    }
}

/// Huffman round-trip on random frequency tables and messages.
#[test]
fn huffman_round_trips() {
    let mut rng = Rng::new(0x6875_6666);
    for case in 0..64u64 {
        let n_syms = rng.range_usize(2, 30);
        let freqs: Vec<u64> = (0..n_syms).map(|_| rng.range_u64(0, 1000)).collect();
        let msg_len = rng.range_usize(0, 100);
        let symbols: Vec<usize> = (0..msg_len).map(|_| rng.range_usize(0, n_syms)).collect();
        let tree = dir::huffman::Tree::from_frequencies(&freqs);
        let mut w = dir::bitstream::BitWriter::new();
        for &s in &symbols {
            tree.encode(s, &mut w);
        }
        let (buf, len) = w.finish();
        let mut r = dir::bitstream::BitReader::new(&buf, len);
        for &s in &symbols {
            let (got, _) = tree.decode(&mut r).unwrap();
            assert_eq!(got, s, "case {case}");
        }
    }
}

/// Zigzag coding round-trips across the i64 range.
#[test]
fn zigzag_round_trips() {
    let mut rng = Rng::new(0x7a69_677a);
    let mut values = vec![0, 1, -1, i64::MAX, i64::MIN, i64::MAX - 1, i64::MIN + 1];
    values.extend((0..64).map(|_| rng.next_u64() as i64));
    for v in values {
        assert_eq!(dir::isa::unzigzag(dir::isa::zigzag(v)), v, "{v}");
    }
}
