//! Long-format horizontal microinstructions: the machine language of IU1.
//!
//! Section 6.2 contrasts the two instruction units: IU2's instructions are
//! "of a short, vertical format" while IU1's "must exercise detailed
//! control over the configuration of the data paths \[and\] could be of a
//! long, horizontal format". A [`MicroWord`] is one such long instruction:
//! up to [`MicroWord::WIDTH`] micro-operations issued in the same cycle
//! (the paper's §6.1 "high parallelism so that performance may be
//! preserved despite ... a primitive functional capability").
//!
//! Every word costs one level-1 cycle (`t1`); the ops within a word take
//! effect in listed order, modelling chained functional units along the
//! restructured data path.

use dir::AluOp;

/// A scratch register of the micro-engine's register file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Reg {
    /// General register A (first ALU input by convention).
    A = 0,
    /// General register B (second ALU input by convention).
    B = 1,
    /// General register C.
    C = 2,
    /// General register D.
    D = 3,
    /// Result register R.
    R = 4,
}

/// Number of registers in the file.
pub const REG_COUNT: usize = 5;

/// One micro-operation: a single functional-unit activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicroOp {
    /// Pop the operand stack into a register.
    Pop(Reg),
    /// Push a register onto the operand stack.
    Push(Reg),
    /// `dst := a op b`; traps on division by zero.
    Alu {
        /// Operation.
        op: AluOp,
        /// Left input.
        a: Reg,
        /// Right input.
        b: Reg,
        /// Destination.
        dst: Reg,
    },
    /// `dst := -src` (wrapping).
    NegOp {
        /// Input.
        src: Reg,
        /// Destination.
        dst: Reg,
    },
    /// `dst := (src == 0)` as 0/1.
    NotOp {
        /// Input.
        src: Reg,
        /// Destination.
        dst: Reg,
    },
    /// `dst := if cond == 0 { if_zero } else { if_nonzero }`.
    SelectZero {
        /// Condition register.
        cond: Reg,
        /// Chosen when the condition is zero.
        if_zero: Reg,
        /// Chosen otherwise.
        if_nonzero: Reg,
        /// Destination.
        dst: Reg,
    },
    /// Traps with an index-out-of-bounds error unless `0 <= idx < len`.
    CheckIdx {
        /// Register holding the index.
        idx: Reg,
        /// Register holding the length.
        len: Reg,
    },
    /// `dst := frame[addr]`.
    LoadFrame {
        /// Register holding the slot number.
        addr: Reg,
        /// Destination.
        dst: Reg,
    },
    /// `frame[addr] := src`.
    StoreFrame {
        /// Register holding the slot number.
        addr: Reg,
        /// Source.
        src: Reg,
    },
    /// `dst := globals[addr]`.
    LoadGlobal {
        /// Register holding the slot number.
        addr: Reg,
        /// Destination.
        dst: Reg,
    },
    /// `globals[addr] := src`.
    StoreGlobal {
        /// Register holding the slot number.
        addr: Reg,
        /// Source.
        src: Reg,
    },
    /// Append a register to the program output.
    Output(Reg),
    /// Push a register onto the DIR-level return-address stack (the
    /// hardware stack the paper says the CALL instruction "benefits
    /// greatly" from).
    PushRa(Reg),
    /// Pop the return-address stack into a register.
    PopRa(Reg),
    /// Allocate the frame for procedure number `proc`, popping its
    /// arguments from the operand stack into the new frame's first slots.
    NewFrame {
        /// Register holding the procedure index.
        proc: Reg,
    },
    /// Release the current frame.
    DropFrame,
    /// `dst := ` entry DIR address of procedure number `proc`.
    EntryOf {
        /// Register holding the procedure index.
        proc: Reg,
        /// Destination.
        dst: Reg,
    },
    /// Stop the machine.
    HaltOp,
}

/// One long-format instruction: up to [`MicroWord::WIDTH`] micro-ops
/// issued in a single cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MicroWord {
    ops: Vec<MicroOp>,
}

impl MicroWord {
    /// Maximum micro-ops per word (the horizontal issue width).
    pub const WIDTH: usize = 3;

    /// Creates a word from its ops.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MicroWord::WIDTH`] ops are supplied, or none.
    pub fn new(ops: Vec<MicroOp>) -> MicroWord {
        assert!(!ops.is_empty(), "a micro word must do something");
        assert!(
            ops.len() <= Self::WIDTH,
            "micro word exceeds issue width {}",
            Self::WIDTH
        );
        MicroWord { ops }
    }

    /// The ops of this word, in issue order.
    pub fn ops(&self) -> &[MicroOp] {
        &self.ops
    }
}

/// Builds a micro word; panics at construction time if over-wide.
#[macro_export]
macro_rules! mword {
    ($($op:expr),+ $(,)?) => {
        $crate::micro::MicroWord::new(vec![$($op),+])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_width_enforced() {
        let w = mword![MicroOp::Pop(Reg::A), MicroOp::Push(Reg::A)];
        assert_eq!(w.ops().len(), 2);
    }

    #[test]
    #[should_panic(expected = "issue width")]
    fn over_wide_word_rejected() {
        MicroWord::new(vec![
            MicroOp::Pop(Reg::A),
            MicroOp::Pop(Reg::B),
            MicroOp::Pop(Reg::C),
            MicroOp::Pop(Reg::D),
        ]);
    }

    #[test]
    #[should_panic(expected = "must do something")]
    fn empty_word_rejected() {
        MicroWord::new(vec![]);
    }
}
