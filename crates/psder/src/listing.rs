//! Human-readable listings of the PSDER level: micro-assembly for
//! IU1 routines and short-format assembly for IU2 sequences.
//!
//! The listing syntax is stable and used in golden tests; it is the
//! documentation-of-record for the semantic-routine library (the paper's
//! "interpreter and semantic routines" whose size §3.3 worries about).

use std::fmt::Write as _;

use crate::micro::{MicroOp, MicroWord, Reg};
use crate::routines::RoutineLib;
use crate::short::{InterpMode, PopMode, PushMode, RoutineId, ShortInstr};

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Reg::A => "A",
            Reg::B => "B",
            Reg::C => "C",
            Reg::D => "D",
            Reg::R => "R",
        };
        f.write_str(s)
    }
}

impl std::fmt::Display for MicroOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MicroOp::Pop(r) => write!(f, "pop {r}"),
            MicroOp::Push(r) => write!(f, "push {r}"),
            MicroOp::Alu { op, a, b, dst } => write!(f, "{dst} := {a} {op:?} {b}"),
            MicroOp::NegOp { src, dst } => write!(f, "{dst} := -{src}"),
            MicroOp::NotOp { src, dst } => write!(f, "{dst} := !{src}"),
            MicroOp::SelectZero {
                cond,
                if_zero,
                if_nonzero,
                dst,
            } => write!(f, "{dst} := {cond}==0 ? {if_zero} : {if_nonzero}"),
            MicroOp::CheckIdx { idx, len } => write!(f, "check {idx} in 0..{len}"),
            MicroOp::LoadFrame { addr, dst } => write!(f, "{dst} := frame[{addr}]"),
            MicroOp::StoreFrame { addr, src } => write!(f, "frame[{addr}] := {src}"),
            MicroOp::LoadGlobal { addr, dst } => write!(f, "{dst} := glob[{addr}]"),
            MicroOp::StoreGlobal { addr, src } => write!(f, "glob[{addr}] := {src}"),
            MicroOp::Output(r) => write!(f, "out {r}"),
            MicroOp::PushRa(r) => write!(f, "ra.push {r}"),
            MicroOp::PopRa(r) => write!(f, "{r} := ra.pop"),
            MicroOp::NewFrame { proc } => write!(f, "frame.new proc={proc}"),
            MicroOp::DropFrame => write!(f, "frame.drop"),
            MicroOp::EntryOf { proc, dst } => write!(f, "{dst} := entry({proc})"),
            MicroOp::HaltOp => write!(f, "halt"),
        }
    }
}

impl std::fmt::Display for MicroWord {
    /// One horizontal word: its ops joined by `|` (parallel issue).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let parts: Vec<String> = self
            .ops()
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        f.write_str(&parts.join(" | "))
    }
}

impl std::fmt::Display for ShortInstr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShortInstr::Push(PushMode::Imm(v)) => write!(f, "PUSH #{v}"),
            ShortInstr::Push(PushMode::Local(s)) => write!(f, "PUSH local {s}"),
            ShortInstr::Push(PushMode::Global(s)) => write!(f, "PUSH global {s}"),
            ShortInstr::Pop(PopMode::Discard) => write!(f, "POP"),
            ShortInstr::Pop(PopMode::Local(s)) => write!(f, "POP local {s}"),
            ShortInstr::Pop(PopMode::Global(s)) => write!(f, "POP global {s}"),
            ShortInstr::Call(id) => write!(f, "CALL {id:?}"),
            ShortInstr::Interp(InterpMode::Imm(a)) => write!(f, "INTERP {a}"),
            ShortInstr::Interp(InterpMode::Stack) => write!(f, "INTERP (stack)"),
        }
    }
}

/// Renders the whole routine library as a micro-assembly listing, one
/// routine per section, one word per line.
pub fn routine_listing(lib: &RoutineLib) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "; semantic routine library: {} routines, {} micro-words total",
        RoutineId::all().len(),
        lib.total_words()
    );
    for id in RoutineId::all() {
        let words = lib.words(id);
        let _ = writeln!(out, "{id:?}: ; {} cycles", words.len());
        for w in words {
            let _ = writeln!(out, "    {w}");
        }
    }
    out
}

/// Renders one DIR instruction's translation as short-format assembly.
pub fn sequence_listing(sequence: &[ShortInstr]) -> String {
    sequence.iter().map(|s| format!("    {s}\n")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translator::translate;

    #[test]
    fn routine_listing_covers_everything() {
        let lib = RoutineLib::new();
        let text = routine_listing(&lib);
        for id in RoutineId::all() {
            assert!(text.contains(&format!("{id:?}:")), "{id:?} missing");
        }
        assert!(text.contains("frame.new proc=A"));
        assert!(text.contains("check C in 0..B"));
    }

    #[test]
    fn word_display_shows_parallel_issue() {
        let lib = RoutineLib::new();
        let bin = lib.words(crate::short::RoutineId::Bin(dir::AluOp::Add));
        assert_eq!(bin[0].to_string(), "pop B | pop A");
        assert_eq!(bin[1].to_string(), "R := A Add B | push R");
    }

    #[test]
    fn sequence_listing_matches_translation() {
        let seq = translate(dir::Inst::JumpIfFalse(7), 3);
        let text = sequence_listing(&seq);
        assert_eq!(
            text,
            "    PUSH #7\n    PUSH #3\n    CALL Select\n    INTERP (stack)\n"
        );
    }

    #[test]
    fn short_instr_display_forms() {
        assert_eq!(
            ShortInstr::Push(PushMode::Global(3)).to_string(),
            "PUSH global 3"
        );
        assert_eq!(ShortInstr::Pop(PopMode::Discard).to_string(), "POP");
        assert_eq!(
            ShortInstr::Interp(InterpMode::Imm(9)).to_string(),
            "INTERP 9"
        );
    }
}
