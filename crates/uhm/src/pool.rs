//! Multi-tenant execution: a sharded pool of host machines.
//!
//! Rau's UHM is a *host* for many guest programs; this module models the
//! hosting side. A [`MachinePool`] runs N independent tenant programs
//! across a configurable set of worker threads. Scheduling is
//! work-stealing: tenants are dealt round-robin onto per-worker deques,
//! each worker pops its own deque from the front and, when empty, steals
//! from the *back* of a sibling's deque (classic Arora–Blumofe–Plotkin
//! shape, hand-rolled on `std` only).
//!
//! Three invariants the pool maintains, in order of importance:
//!
//! 1. **Bit-identical results.** Every tenant produces exactly the
//!    output, traps and *modeled* metrics it would produce running alone
//!    on a sequential machine ([`MachinePool::run_sequential`] is the
//!    reference). Host-side sharing — one [`Machine`] behind an [`Arc`],
//!    one frozen translation snapshot
//!    ([`Machine::set_shared_translations`]) — never leaks into modeled
//!    behavior (DESIGN.md §6).
//! 2. **Deterministic faults.** A pool-level base [`FaultConfig`] is
//!    re-seeded per tenant as `base_seed ^ tenant_index`. The tenant
//!    index — *not* the worker id — keys the stream, because stealing
//!    makes worker assignment schedule-dependent; tenant-keyed seeds keep
//!    fault campaigns replayable under any interleaving.
//! 3. **Isolation.** A panicking tenant (e.g. one constructed over an
//!    invalid DTB geometry) is caught with `catch_unwind`, reported as
//!    [`TenantOutcome::Panicked`], and the remaining tenants complete.
//!
//! Latency percentiles and aggregate throughput of a pool run are
//! summarized by [`PoolRun`]; `crate::report::pool_report` renders the
//! schema-v2 [`telemetry::PoolReport`] consumed by `raul pool --json`
//! and the `pool_throughput` bench (E16).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use dir::exec::Trap;
use std::collections::VecDeque;
use telemetry::{NullSink, Percentiles, TraceSink};

use crate::fault::FaultConfig;
use crate::machine::{Machine, Mode};
use crate::metrics::Report;

/// One guest of the pool: a named program bound to a machine and mode.
///
/// Tenants may share a [`Machine`] (the `Arc` is cloned, not the
/// machine), which is how one encoded image plus one frozen translation
/// snapshot serves many tenants.
#[derive(Debug, Clone)]
pub struct PoolTenant {
    /// Display name, e.g. the workload name.
    pub name: String,
    /// The shared, immutable host machine this tenant runs on.
    pub machine: Arc<Machine>,
    /// The fetch-path configuration (T1/T2/T3/two-level) for this tenant.
    pub mode: Mode,
}

/// How one tenant's run ended.
#[derive(Debug, Clone, PartialEq)]
pub enum TenantOutcome {
    /// The program ran to completion; output and modeled metrics inside.
    Completed(Box<Report>),
    /// The program trapped (guest-level failure, e.g. stack overflow).
    Trapped(Trap),
    /// The host-side run panicked (host-level failure); the payload is
    /// the panic message. Other tenants are unaffected.
    Panicked(String),
}

impl TenantOutcome {
    /// `"completed"`, `"trapped"` or `"panicked"` — the status string
    /// used by the JSON report.
    pub fn status(&self) -> &'static str {
        match self {
            TenantOutcome::Completed(_) => "completed",
            TenantOutcome::Trapped(_) => "trapped",
            TenantOutcome::Panicked(_) => "panicked",
        }
    }

    /// The completed report, if any.
    pub fn report(&self) -> Option<&Report> {
        match self {
            TenantOutcome::Completed(r) => Some(r.as_ref()),
            _ => None,
        }
    }
}

/// The result of one tenant within a pool run.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantResult {
    /// Index of the tenant in submission order.
    pub tenant: usize,
    /// The tenant's display name.
    pub name: String,
    /// The worker thread that executed this tenant. Informational only:
    /// work stealing makes this schedule-dependent, so nothing
    /// deterministic may key off it.
    pub worker: usize,
    /// Host wall-clock time of this tenant's run, in nanoseconds.
    pub latency_ns: u64,
    /// How the run ended.
    pub outcome: TenantOutcome,
}

/// The aggregated result of one [`MachinePool::run`].
#[derive(Debug, Clone, PartialEq)]
pub struct PoolRun {
    /// Per-tenant results, in tenant-index (submission) order.
    pub results: Vec<TenantResult>,
    /// Host wall-clock of the whole pool run, in nanoseconds.
    pub wall_ns: u64,
    /// Number of worker threads that served the run.
    pub workers: usize,
    /// Number of tenants obtained by stealing from a sibling's deque.
    pub steals: u64,
    /// Jobs still queued after each dequeue, in dequeue order — the
    /// pool's queue-depth timeline. Schedule-dependent (like `steals`),
    /// so purely observational: nothing deterministic may key off it.
    pub queue_depth: Vec<u64>,
}

impl PoolRun {
    /// Per-tenant latencies in nanoseconds, tenant order.
    pub fn latencies_ns(&self) -> Vec<f64> {
        self.results.iter().map(|r| r.latency_ns as f64).collect()
    }

    /// p50/p95/p99/p99.9 of the per-tenant latencies.
    pub fn latency_percentiles(&self) -> Percentiles {
        Percentiles::of(&self.latencies_ns())
    }

    /// Host nanoseconds each worker spent executing tenants (length =
    /// `workers`), summed from per-tenant latencies.
    pub fn worker_busy_ns(&self) -> Vec<u64> {
        let mut busy = vec![0u64; self.workers];
        for r in &self.results {
            if let Some(b) = busy.get_mut(r.worker) {
                *b += r.latency_ns;
            }
        }
        busy
    }

    /// Per-worker utilization: busy time over pool wall-clock, in
    /// `[0, 1]` (clamped; empty wall yields zeros).
    pub fn worker_utilization(&self) -> Vec<f64> {
        self.worker_busy_ns()
            .iter()
            .map(|&b| {
                if self.wall_ns == 0 {
                    0.0
                } else {
                    (b as f64 / self.wall_ns as f64).min(1.0)
                }
            })
            .collect()
    }

    /// Number of tenants that completed without trap or panic.
    pub fn completed(&self) -> usize {
        self.results
            .iter()
            .filter(|r| matches!(r.outcome, TenantOutcome::Completed(_)))
            .count()
    }

    /// Total *modeled* DIR instructions across completed tenants.
    pub fn total_instructions(&self) -> u64 {
        self.completed_reports()
            .map(|r| r.metrics.instructions)
            .sum()
    }

    /// Total *modeled* cycles across completed tenants.
    pub fn total_cycles(&self) -> u64 {
        self.completed_reports()
            .map(|r| r.metrics.cycles.total())
            .sum()
    }

    /// Aggregate throughput in millions of modeled DIR instructions per
    /// host wall-clock second — the E16 figure of merit. Modeled work
    /// over host time: the numerator is schedule-invariant, only the
    /// denominator reflects the pool's parallelism.
    pub fn minstr_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.total_instructions() as f64 * 1e3 / self.wall_ns as f64
    }

    fn completed_reports(&self) -> impl Iterator<Item = &Report> {
        self.results.iter().filter_map(|r| r.outcome.report())
    }
}

/// A pool of worker threads executing independent tenant programs.
///
/// ```
/// use std::sync::Arc;
/// use uhm::pool::MachinePool;
/// use uhm::{Machine, Mode};
///
/// let hir = hlr::compile("proc main() begin write 6 * 7; end")?;
/// let prog = dir::compiler::compile(&hir);
/// let mut machine = Machine::new(&prog, dir::encode::SchemeKind::Packed);
/// machine.freeze_translations(); // share decode templates across tenants
/// let machine = Arc::new(machine);
///
/// let mut pool = MachinePool::new(2);
/// for i in 0..4 {
///     pool.push(format!("t{i}"), Arc::clone(&machine), Mode::Interpreter);
/// }
/// let run = pool.run();
/// assert_eq!(run.completed(), 4);
/// for r in &run.results {
///     assert_eq!(r.outcome.report().unwrap().output, vec![42]);
/// }
/// # Ok::<(), hlr::Error>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct MachinePool {
    tenants: Vec<PoolTenant>,
    workers: usize,
    fault_base: Option<FaultConfig>,
}

impl MachinePool {
    /// Creates an empty pool with `workers` worker threads (clamped to at
    /// least 1).
    pub fn new(workers: usize) -> MachinePool {
        MachinePool {
            tenants: Vec::new(),
            workers: workers.max(1),
            fault_base: None,
        }
    }

    /// Adds a tenant; returns `self` for chaining.
    pub fn push(
        &mut self,
        name: impl Into<String>,
        machine: Arc<Machine>,
        mode: Mode,
    ) -> &mut Self {
        self.tenants.push(PoolTenant {
            name: name.into(),
            machine,
            mode,
        });
        self
    }

    /// Sets a pool-level base fault configuration. Tenant `i` runs with
    /// `base` re-seeded as `base.seed ^ i`, overriding whatever fault
    /// configuration its machine carries — so shared machines still get
    /// distinct, replayable fault streams. `None` (the default) leaves
    /// each machine's own configuration in force.
    pub fn set_faults(&mut self, base: Option<FaultConfig>) -> &mut Self {
        self.fault_base = base;
        self
    }

    /// The number of worker threads this pool will use.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The tenants in submission order.
    pub fn tenants(&self) -> &[PoolTenant] {
        &self.tenants
    }

    /// Runs every tenant across the worker set and collects the results
    /// in tenant order.
    pub fn run(&self) -> PoolRun {
        self.run_with_sinks(|_| NullSink).0
    }

    /// Runs like [`MachinePool::run`], but gives every tenant its own
    /// trace sink built by `make_sink(tenant_index)`. The sinks are
    /// returned in tenant (submission) order alongside the run, so
    /// per-tenant profiles can be aggregated afterwards.
    ///
    /// The sink only observes — each tenant's event stream is a
    /// deterministic function of that tenant alone, so outputs, traps
    /// and modeled metrics remain bit-identical to [`MachinePool::run`]
    /// (and to [`MachinePool::run_sequential`]) under any schedule.
    pub fn run_with_sinks<S, F>(&self, make_sink: F) -> (PoolRun, Vec<S>)
    where
        S: TraceSink + Send,
        F: Fn(usize) -> S + Sync,
    {
        let workers = self.workers.min(self.tenants.len()).max(1);
        // Deal tenants round-robin onto per-worker deques.
        let deques: Vec<Mutex<VecDeque<usize>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        for (i, _) in self.tenants.iter().enumerate() {
            deques[i % workers].lock().unwrap().push_back(i);
        }
        let steals = AtomicU64::new(0);
        let remaining = AtomicU64::new(self.tenants.len() as u64);
        let depth_samples: Mutex<Vec<u64>> = Mutex::new(Vec::with_capacity(self.tenants.len()));

        let started = Instant::now();
        let mut collected: Vec<Vec<(TenantResult, S)>> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let deques = &deques;
                    let steals = &steals;
                    let remaining = &remaining;
                    let depth_samples = &depth_samples;
                    let make_sink = &make_sink;
                    scope.spawn(move || {
                        let mut local = Vec::new();
                        while let Some(idx) = next_job(w, deques, steals) {
                            let depth = remaining.fetch_sub(1, Ordering::Relaxed) - 1;
                            depth_samples.lock().unwrap().push(depth);
                            let mut sink = make_sink(idx);
                            let result = self.run_tenant_with(idx, w, &mut sink);
                            local.push((result, sink));
                        }
                        local
                    })
                })
                .collect();
            for h in handles {
                // Worker bodies never panic (tenant panics are caught
                // inside run_tenant_with), so join cannot fail.
                collected.push(h.join().expect("pool worker panicked"));
            }
        });
        let wall_ns = started.elapsed().as_nanos() as u64;

        let mut pairs: Vec<(TenantResult, S)> = collected.into_iter().flatten().collect();
        pairs.sort_by_key(|(r, _)| r.tenant);
        let (results, sinks): (Vec<TenantResult>, Vec<S>) = pairs.into_iter().unzip();
        (
            PoolRun {
                results,
                wall_ns,
                workers,
                steals: steals.load(Ordering::Relaxed),
                queue_depth: depth_samples.into_inner().unwrap(),
            },
            sinks,
        )
    }

    /// Runs every tenant in submission order on the calling thread — the
    /// reference semantics the threaded [`MachinePool::run`] must match
    /// bit-for-bit (same outputs, traps, modeled metrics and fault
    /// streams; only latencies and wall-clock differ).
    pub fn run_sequential(&self) -> PoolRun {
        let started = Instant::now();
        let results: Vec<TenantResult> = (0..self.tenants.len())
            .map(|i| self.run_tenant_with(i, 0, &mut NullSink))
            .collect();
        PoolRun {
            wall_ns: started.elapsed().as_nanos() as u64,
            results,
            workers: 1,
            // Sequential dequeue order is submission order, so the
            // queue simply drains: n-1, n-2, ..., 0.
            queue_depth: (0..self.tenants.len() as u64).rev().collect(),
            steals: 0,
        }
    }

    fn run_tenant_with<S: TraceSink>(
        &self,
        idx: usize,
        worker: usize,
        sink: &mut S,
    ) -> TenantResult {
        let tenant = &self.tenants[idx];
        let faults = self.fault_base.map(|base| FaultConfig {
            seed: base.seed ^ idx as u64,
            ..base
        });
        let started = Instant::now();
        let run = catch_unwind(AssertUnwindSafe(|| match faults {
            Some(cfg) => tenant
                .machine
                .run_with_faults(&tenant.mode, sink, Some(cfg)),
            None => tenant.machine.run_with(&tenant.mode, sink),
        }));
        let latency_ns = started.elapsed().as_nanos() as u64;
        let outcome = match run {
            Ok(Ok(report)) => TenantOutcome::Completed(Box::new(report)),
            Ok(Err(trap)) => TenantOutcome::Trapped(trap),
            Err(payload) => TenantOutcome::Panicked(panic_message(&payload)),
        };
        TenantResult {
            tenant: idx,
            name: tenant.name.clone(),
            worker,
            latency_ns,
            outcome,
        }
    }
}

/// Pops the next tenant index for worker `w`: own deque from the front,
/// else steal from the back of the first non-empty sibling.
fn next_job(w: usize, deques: &[Mutex<VecDeque<usize>>], steals: &AtomicU64) -> Option<usize> {
    if let Some(idx) = deques[w].lock().unwrap().pop_front() {
        return Some(idx);
    }
    for off in 1..deques.len() {
        let victim = (w + off) % deques.len();
        if let Some(idx) = deques[victim].lock().unwrap().pop_back() {
            steals.fetch_add(1, Ordering::Relaxed);
            return Some(idx);
        }
    }
    None
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtb::DtbConfig;
    use dir::encode::SchemeKind;
    use telemetry::FaultKind;

    fn machine_for(src: &str) -> Arc<Machine> {
        let hir = hlr::compile(src).expect("test source compiles");
        let prog = dir::compiler::compile(&hir);
        let mut m = Machine::new(&prog, SchemeKind::Packed);
        m.freeze_translations();
        Arc::new(m)
    }

    fn sample_pool(workers: usize) -> MachinePool {
        let sources = [
            "proc main() begin int i := 0; while i < 25 do begin write i * i; i := i + 1; end end",
            "proc main() begin int a := 0; int b := 1; int i := 0; \
             while i < 20 do begin int t := a + b; a := b; b := t; write a; i := i + 1; end end",
            "proc main() begin write 6 * 7; end",
        ];
        let machines: Vec<Arc<Machine>> = sources.iter().map(|s| machine_for(s)).collect();
        let mut pool = MachinePool::new(workers);
        for t in 0..7 {
            let m = &machines[t % machines.len()];
            let mode = if t % 2 == 0 {
                Mode::Dtb(DtbConfig::with_capacity(16))
            } else {
                Mode::Interpreter
            };
            pool.push(format!("tenant-{t}"), Arc::clone(m), mode);
        }
        pool
    }

    fn outcomes(run: &PoolRun) -> Vec<(&str, &TenantOutcome)> {
        run.results
            .iter()
            .map(|r| (r.name.as_str(), &r.outcome))
            .collect()
    }

    #[test]
    fn pooled_results_match_sequential_bit_for_bit() {
        let pool = sample_pool(4);
        let seq = pool.run_sequential();
        let par = pool.run();
        // Same tenants, same order, identical outputs / traps / modeled
        // metrics (TenantOutcome PartialEq covers Report in full).
        assert_eq!(outcomes(&seq), outcomes(&par));
        assert_eq!(par.results.len(), 7);
        assert_eq!(par.completed(), 7);
        assert!(par.total_instructions() > 0);
        assert_eq!(par.total_instructions(), seq.total_instructions());
        assert_eq!(par.total_cycles(), seq.total_cycles());
    }

    #[test]
    fn fault_streams_are_keyed_by_tenant_not_schedule() {
        let mut pool = sample_pool(4);
        pool.set_faults(Some(FaultConfig::only(0xBEEF, FaultKind::DtbWord, 0.02)));
        let seq = pool.run_sequential();
        let one = {
            let mut p = pool.clone();
            p.workers = 1;
            p.run()
        };
        let par = pool.run();
        assert_eq!(outcomes(&seq), outcomes(&par));
        assert_eq!(outcomes(&seq), outcomes(&one));
        // The campaign actually injected: at least one tenant recovered
        // from a corrupted DTB word.
        let recoveries: u64 = par
            .results
            .iter()
            .filter_map(|r| r.outcome.report())
            .map(|r| r.metrics.recoveries)
            .sum();
        assert!(recoveries > 0, "fault campaign was inert");
    }

    #[test]
    fn distinct_tenants_get_distinct_fault_seeds() {
        // Two tenants, same machine, same mode: without per-tenant
        // re-seeding their fault streams (and thus corrupted-word
        // counts over a long run) would be identical.
        let m = machine_for(
            "proc main() begin int i := 0; \
             while i < 400 do begin write i; i := i + 1; end end",
        );
        let mut pool = MachinePool::new(1);
        pool.push("a", Arc::clone(&m), Mode::Dtb(DtbConfig::with_capacity(8)));
        pool.push("b", Arc::clone(&m), Mode::Dtb(DtbConfig::with_capacity(8)));
        pool.set_faults(Some(FaultConfig::only(7, FaultKind::DtbWord, 0.05)));
        let run = pool.run();
        let stats: Vec<_> = run
            .results
            .iter()
            .map(|r| r.outcome.report().unwrap().metrics.faults.unwrap())
            .collect();
        assert_ne!(stats[0], stats[1], "tenants shared one fault stream");
    }

    #[test]
    fn panicking_tenant_is_isolated() {
        let mut pool = sample_pool(2);
        // A zero-word allocation unit fails validation, so Dtb::new
        // panics on construction, inside the tenant's run.
        let bad = DtbConfig {
            unit_words: 0,
            ..DtbConfig::with_capacity(16)
        };
        let victim = &pool.tenants[0].machine;
        pool.push("bad-geometry", Arc::clone(victim), Mode::Dtb(bad));
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // keep test output clean
        let run = pool.run();
        std::panic::set_hook(hook);
        assert_eq!(run.results.len(), 8);
        assert_eq!(run.completed(), 7);
        let last = run.results.last().unwrap();
        assert_eq!(last.name, "bad-geometry");
        match &last.outcome {
            TenantOutcome::Panicked(msg) => {
                assert!(!msg.is_empty());
            }
            other => panic!("expected panic outcome, got {other:?}"),
        }
    }

    #[test]
    fn stealing_occurs_under_imbalance_and_changes_nothing() {
        // All work dealt to worker 0's deque side by using 4 workers over
        // 8 tenants with wildly uneven costs: the cheap tenants' workers
        // finish and steal.
        let heavy = machine_for(
            "proc main() begin int i := 0; \
             while i < 2000 do begin write i; i := i + 1; end end",
        );
        let light = machine_for("proc main() begin write 1; end");
        let mut pool = MachinePool::new(4);
        for t in 0..8 {
            let m = if t < 4 { &heavy } else { &light };
            pool.push(format!("t{t}"), Arc::clone(m), Mode::Interpreter);
        }
        let seq = pool.run_sequential();
        let par = pool.run();
        assert_eq!(outcomes(&seq), outcomes(&par));
        // Steal counts are schedule-dependent; just check the counter is
        // wired (it may legitimately be 0 on a slow machine, so only
        // sanity-bound it).
        assert!(par.steals <= 8);
    }

    #[test]
    fn more_workers_than_tenants_is_fine() {
        let m = machine_for("proc main() begin write 9; end");
        let mut pool = MachinePool::new(16);
        pool.push("only", m, Mode::Interpreter);
        let run = pool.run();
        assert_eq!(run.workers, 1); // clamped to tenant count
        assert_eq!(run.completed(), 1);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        assert_eq!(MachinePool::new(0).workers(), 1);
    }

    #[test]
    fn empty_pool_runs_to_empty_result() {
        let run = MachinePool::new(4).run();
        assert!(run.results.is_empty());
        assert_eq!(run.completed(), 0);
        assert_eq!(run.minstr_per_sec(), 0.0);
        assert_eq!(run.latency_percentiles(), Percentiles::default());
    }

    #[test]
    fn latency_percentiles_are_populated_and_ordered() {
        let run = sample_pool(2).run();
        let p = run.latency_percentiles();
        assert!(p.p50 > 0.0);
        assert!(p.p50 <= p.p95 && p.p95 <= p.p99 && p.p99 <= p.p999);
    }

    /// A counting sink with the profiling contract: no miss
    /// classification, so metrics stay bit-identical to untraced runs.
    struct CountSink(telemetry::EventCounts);

    impl TraceSink for CountSink {
        const CLASSIFY_MISSES: bool = false;

        fn emit(&mut self, event: telemetry::Event) {
            self.0.record(&event);
        }
    }

    #[test]
    fn per_tenant_sinks_observe_without_changing_results() {
        let pool = sample_pool(3);
        let plain = pool.run_sequential();
        let (run, sinks) = pool.run_with_sinks(|_| CountSink(telemetry::EventCounts::default()));
        // Observation is free: outputs, traps and modeled metrics are
        // bit-identical to the unprofiled sequential reference.
        assert_eq!(outcomes(&plain), outcomes(&run));
        assert_eq!(sinks.len(), run.results.len());
        // Sinks come back in tenant order: each saw exactly its
        // tenant's retired instructions.
        for (r, sink) in run.results.iter().zip(&sinks) {
            let m = &r.outcome.report().unwrap().metrics;
            assert_eq!(sink.0.retires, m.instructions);
        }
    }

    #[test]
    fn queue_depth_and_utilization_are_wired() {
        let run = sample_pool(2).run();
        assert_eq!(run.queue_depth.len(), run.results.len());
        // The queue drains: the last dequeue leaves it empty.
        assert_eq!(run.queue_depth.iter().min(), Some(&0));
        assert!(run
            .queue_depth
            .iter()
            .all(|&d| d < run.results.len() as u64));
        let util = run.worker_utilization();
        assert_eq!(util.len(), run.workers);
        assert!(util.iter().all(|u| (0.0..=1.0).contains(u)));
        assert!(util.iter().any(|&u| u > 0.0));
        // Sequential reference records the drain in submission order.
        let seq = sample_pool(2).run_sequential();
        assert_eq!(seq.queue_depth.first(), Some(&6));
        assert_eq!(seq.queue_depth.last(), Some(&0));
    }
}
