//! Recursive-descent parser for RAUL.
//!
//! The grammar (EBNF):
//!
//! ```text
//! program   := { var_decl | proc_decl }
//! proc_decl := "proc" ident "(" [ param { "," param } ] ")" [ "->" type ] block
//! param     := type ident
//! var_decl  := type ident [ "[" int "]" ] [ ":=" expr ] ";"
//! type      := "int" | "bool"
//! block     := "begin" { var_decl } { stmt } "end"
//! stmt      := ident ":=" expr ";"
//!            | ident "[" expr "]" ":=" expr ";"
//!            | "if" expr "then" stmt [ "else" stmt ]
//!            | "while" expr "do" stmt
//!            | "for" ident ":=" expr "to" expr "do" stmt
//!            | block
//!            | "call" ident "(" [ expr { "," expr } ] ")" ";"
//!            | "return" [ expr ] ";"
//!            | "write" expr ";"
//!            | "skip" ";"
//! expr      := or
//! or        := and { "or" and }
//! and       := unary_not { "and" unary_not }
//! unary_not := "not" unary_not | cmp
//! cmp       := add [ ("=" | "<>" | "<" | "<=" | ">" | ">=") add ]
//! add       := mul { ("+" | "-") mul }
//! mul       := neg { ("*" | "/" | "%") neg }
//! neg       := "-" neg | primary
//! primary   := int | "true" | "false" | ident [ "(" args ")" | "[" expr "]" ]
//!            | "(" expr ")"
//! ```

use crate::ast::*;
use crate::error::{Error, Result};
use crate::lexer::tokenize;
use crate::token::{Token, TokenKind};
use crate::types::Type;
use crate::Span;

/// Parses RAUL source text into an AST.
///
/// # Errors
///
/// Returns the first lexical or syntactic error.
///
/// # Example
///
/// ```
/// let ast = hlr::parser::parse("proc main() begin skip; end")?;
/// assert_eq!(ast.procs[0].name, "main");
/// # Ok::<(), hlr::Error>(())
/// ```
pub fn parse(source: &str) -> Result<Program> {
    let tokens = tokenize(source)?;
    Parser { tokens, pos: 0 }.program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        let i = (self.pos + 1).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token> {
        if self.peek() == kind {
            Ok(self.bump())
        } else {
            Err(Error::parse(
                format!("expected {}, found {}", kind.describe(), self.peek()),
                self.span(),
            ))
        }
    }

    fn ident(&mut self) -> Result<(String, Span)> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                let t = self.bump();
                Ok((name, t.span))
            }
            other => Err(Error::parse(
                format!("expected identifier, found {other}"),
                self.span(),
            )),
        }
    }

    fn program(&mut self) -> Result<Program> {
        let mut program = Program::default();
        loop {
            match self.peek() {
                TokenKind::Eof => break,
                TokenKind::Proc => program.procs.push(self.proc_decl()?),
                TokenKind::KwInt | TokenKind::KwBool => {
                    program.globals.push(self.var_decl()?);
                }
                other => {
                    return Err(Error::parse(
                        format!("expected declaration, found {other}"),
                        self.span(),
                    ))
                }
            }
        }
        Ok(program)
    }

    fn scalar_type(&mut self) -> Result<Type> {
        match self.peek() {
            TokenKind::KwInt => {
                self.bump();
                Ok(Type::Int)
            }
            TokenKind::KwBool => {
                self.bump();
                Ok(Type::Bool)
            }
            other => Err(Error::parse(
                format!("expected type, found {other}"),
                self.span(),
            )),
        }
    }

    fn proc_decl(&mut self) -> Result<ProcDecl> {
        let start = self.span();
        self.expect(&TokenKind::Proc)?;
        let (name, _) = self.ident()?;
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if self.peek() != &TokenKind::RParen {
            loop {
                let pstart = self.span();
                let ty = self.scalar_type()?;
                let (pname, pspan) = self.ident()?;
                params.push(Param {
                    name: pname,
                    ty,
                    span: pstart.merge(pspan),
                });
                if self.peek() == &TokenKind::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        let ret = if self.peek() == &TokenKind::Arrow {
            self.bump();
            Some(self.scalar_type()?)
        } else {
            None
        };
        let header_end = self.span();
        let body = self.block()?;
        Ok(ProcDecl {
            name,
            params,
            ret,
            body,
            span: start.merge(header_end),
        })
    }

    fn var_decl(&mut self) -> Result<VarDecl> {
        let start = self.span();
        let base = self.scalar_type()?;
        let (name, _) = self.ident()?;
        let (ty, init) = if self.peek() == &TokenKind::LBracket {
            if base != Type::Int {
                return Err(Error::parse("only integer arrays are supported", start));
            }
            self.bump();
            let len = match self.peek().clone() {
                TokenKind::Int(n) if n > 0 && n <= u32::MAX as i64 => {
                    self.bump();
                    n as u32
                }
                other => {
                    return Err(Error::parse(
                        format!("expected positive array length, found {other}"),
                        self.span(),
                    ))
                }
            };
            self.expect(&TokenKind::RBracket)?;
            (Type::IntArray(len), None)
        } else if self.peek() == &TokenKind::Assign {
            self.bump();
            let init = self.expr()?;
            (base, Some(init))
        } else {
            (base, None)
        };
        let end = self.span();
        self.expect(&TokenKind::Semi)?;
        Ok(VarDecl {
            name,
            ty,
            init,
            span: start.merge(end),
        })
    }

    fn block(&mut self) -> Result<Block> {
        let start = self.span();
        self.expect(&TokenKind::Begin)?;
        let mut decls = Vec::new();
        while matches!(self.peek(), TokenKind::KwInt | TokenKind::KwBool) {
            decls.push(self.var_decl()?);
        }
        let mut stmts = Vec::new();
        while self.peek() != &TokenKind::End {
            if self.peek() == &TokenKind::Eof {
                return Err(Error::parse("unterminated block: expected `end`", start));
            }
            stmts.push(self.stmt()?);
        }
        let end = self.span();
        self.bump(); // `end`
        Ok(Block {
            decls,
            stmts,
            span: start.merge(end),
        })
    }

    fn stmt(&mut self) -> Result<Stmt> {
        let start = self.span();
        match self.peek().clone() {
            TokenKind::If => {
                self.bump();
                let cond = self.expr()?;
                self.expect(&TokenKind::Then)?;
                let then_branch = Box::new(self.stmt()?);
                let else_branch = if self.peek() == &TokenKind::Else {
                    self.bump();
                    Some(Box::new(self.stmt()?))
                } else {
                    None
                };
                let end = else_branch
                    .as_ref()
                    .map(|s| s.span())
                    .unwrap_or_else(|| then_branch.span());
                Ok(Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                    span: start.merge(end),
                })
            }
            TokenKind::While => {
                self.bump();
                let cond = self.expr()?;
                self.expect(&TokenKind::Do)?;
                let body = Box::new(self.stmt()?);
                let span = start.merge(body.span());
                Ok(Stmt::While { cond, body, span })
            }
            TokenKind::For => {
                self.bump();
                let (var, _) = self.ident()?;
                self.expect(&TokenKind::Assign)?;
                let from = self.expr()?;
                self.expect(&TokenKind::To)?;
                let to = self.expr()?;
                self.expect(&TokenKind::Do)?;
                let body = Box::new(self.stmt()?);
                let span = start.merge(body.span());
                Ok(Stmt::For {
                    var,
                    from,
                    to,
                    body,
                    span,
                })
            }
            TokenKind::Begin => Ok(Stmt::Block(self.block()?)),
            TokenKind::Call => {
                self.bump();
                let (name, _) = self.ident()?;
                let args = self.call_args()?;
                let end = self.span();
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Call {
                    name,
                    args,
                    span: start.merge(end),
                })
            }
            TokenKind::Return => {
                self.bump();
                let value = if self.peek() == &TokenKind::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                let end = self.span();
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Return {
                    value,
                    span: start.merge(end),
                })
            }
            TokenKind::Write => {
                self.bump();
                let value = self.expr()?;
                let end = self.span();
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Write {
                    value,
                    span: start.merge(end),
                })
            }
            TokenKind::Skip => {
                self.bump();
                let end = self.span();
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Skip {
                    span: start.merge(end),
                })
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.peek() == &TokenKind::LBracket {
                    self.bump();
                    let index = self.expr()?;
                    self.expect(&TokenKind::RBracket)?;
                    self.expect(&TokenKind::Assign)?;
                    let value = self.expr()?;
                    let end = self.span();
                    self.expect(&TokenKind::Semi)?;
                    Ok(Stmt::AssignIndexed {
                        name,
                        index,
                        value,
                        span: start.merge(end),
                    })
                } else {
                    self.expect(&TokenKind::Assign)?;
                    let value = self.expr()?;
                    let end = self.span();
                    self.expect(&TokenKind::Semi)?;
                    Ok(Stmt::Assign {
                        name,
                        value,
                        span: start.merge(end),
                    })
                }
            }
            other => Err(Error::parse(
                format!("expected statement, found {other}"),
                start,
            )),
        }
    }

    fn call_args(&mut self) -> Result<Vec<Expr>> {
        self.expect(&TokenKind::LParen)?;
        let mut args = Vec::new();
        if self.peek() != &TokenKind::RParen {
            loop {
                args.push(self.expr()?);
                if self.peek() == &TokenKind::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(args)
    }

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.and_expr()?;
        while self.peek() == &TokenKind::Or {
            self.bump();
            let rhs = self.and_expr()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.not_expr()?;
        while self.peek() == &TokenKind::And {
            self.bump();
            let rhs = self.not_expr()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.peek() == &TokenKind::Not {
            let start = self.span();
            self.bump();
            let operand = self.not_expr()?;
            let span = start.merge(operand.span());
            Ok(Expr::Unary {
                op: UnOp::Not,
                operand: Box::new(operand),
                span,
            })
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            TokenKind::Eq => BinOp::Eq,
            TokenKind::Ne => BinOp::Ne,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        let span = lhs.span().merge(rhs.span());
        Ok(Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
            span,
        })
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.mul_expr()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.neg_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Mod,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.neg_expr()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
    }

    fn neg_expr(&mut self) -> Result<Expr> {
        if self.peek() == &TokenKind::Minus {
            let start = self.span();
            self.bump();
            let operand = self.neg_expr()?;
            let span = start.merge(operand.span());
            Ok(Expr::Unary {
                op: UnOp::Neg,
                operand: Box::new(operand),
                span,
            })
        } else {
            self.primary()
        }
    }

    fn primary(&mut self) -> Result<Expr> {
        let start = self.span();
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::Int(v, start))
            }
            TokenKind::True => {
                self.bump();
                Ok(Expr::Bool(true, start))
            }
            TokenKind::False => {
                self.bump();
                Ok(Expr::Bool(false, start))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                if self.peek2() == &TokenKind::LParen {
                    self.bump();
                    let args = self.call_args()?;
                    Ok(Expr::Call {
                        name,
                        args,
                        span: start,
                    })
                } else if self.peek2() == &TokenKind::LBracket {
                    self.bump();
                    self.bump();
                    let index = self.expr()?;
                    let end = self.span();
                    self.expect(&TokenKind::RBracket)?;
                    Ok(Expr::Index {
                        name,
                        index: Box::new(index),
                        span: start.merge(end),
                    })
                } else {
                    self.bump();
                    Ok(Expr::Var(name, start))
                }
            }
            other => Err(Error::parse(
                format!("expected expression, found {other}"),
                start,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_empty_program() {
        let p = parse("").unwrap();
        assert!(p.globals.is_empty());
        assert!(p.procs.is_empty());
    }

    #[test]
    fn parses_globals_and_procs() {
        let p = parse("int g := 1; int a[8]; proc main() begin skip; end").unwrap();
        assert_eq!(p.globals.len(), 2);
        assert_eq!(p.globals[1].ty, Type::IntArray(8));
        assert_eq!(p.procs.len(), 1);
    }

    #[test]
    fn parses_params_and_return_type() {
        let p = parse("proc f(int a, bool b) -> int begin return 1; end").unwrap();
        let f = &p.procs[0];
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].ty, Type::Int);
        assert_eq!(f.params[1].ty, Type::Bool);
        assert_eq!(f.ret, Some(Type::Int));
    }

    #[test]
    fn precedence_mul_over_add() {
        let p = parse("proc main() begin int x := 1 + 2 * 3; skip; end").unwrap();
        let init = p.procs[0].body.decls[0].init.as_ref().unwrap();
        match init {
            Expr::Binary {
                op: BinOp::Add,
                rhs,
                ..
            } => match rhs.as_ref() {
                Expr::Binary { op: BinOp::Mul, .. } => {}
                other => panic!("expected mul on rhs, got {other:?}"),
            },
            other => panic!("expected add at top, got {other:?}"),
        }
    }

    #[test]
    fn precedence_cmp_over_and() {
        let p = parse("proc main() begin bool b := 1 < 2 and 3 < 4; skip; end").unwrap();
        let init = p.procs[0].body.decls[0].init.as_ref().unwrap();
        assert!(matches!(init, Expr::Binary { op: BinOp::And, .. }));
    }

    #[test]
    fn unary_minus_is_right_associative() {
        let p = parse("proc main() begin int x := --1; skip; end").unwrap();
        let init = p.procs[0].body.decls[0].init.as_ref().unwrap();
        match init {
            Expr::Unary {
                op: UnOp::Neg,
                operand,
                ..
            } => {
                assert!(matches!(
                    operand.as_ref(),
                    Expr::Unary { op: UnOp::Neg, .. }
                ));
            }
            other => panic!("expected neg, got {other:?}"),
        }
    }

    #[test]
    fn parses_all_statement_forms() {
        let src = r#"
            int g;
            proc f(int n) -> int begin return n; end
            proc main() begin
                int i;
                int a[4];
                g := 1;
                a[0] := 2;
                if g = 1 then skip; else g := 2;
                while g < 3 do g := g + 1;
                for i := 0 to 3 do a[i] := i;
                begin int local := 5; write local; end
                call f(1);
                write f(2);
                write a[1 + 2];
                skip;
            end
        "#;
        let p = parse(src).unwrap();
        assert_eq!(p.procs.len(), 2);
        assert_eq!(p.procs[1].body.stmts.len(), 10);
    }

    #[test]
    fn nested_if_else_binds_to_nearest() {
        let p =
            parse("proc main() begin if true then if false then skip; else write 1; end").unwrap();
        match &p.procs[0].body.stmts[0] {
            Stmt::If {
                else_branch,
                then_branch,
                ..
            } => {
                assert!(else_branch.is_none());
                assert!(matches!(
                    then_branch.as_ref(),
                    Stmt::If {
                        else_branch: Some(_),
                        ..
                    }
                ));
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn error_on_bool_array() {
        assert!(parse("bool b[4];").is_err());
    }

    #[test]
    fn error_on_zero_length_array() {
        assert!(parse("int a[0];").is_err());
    }

    #[test]
    fn error_on_unterminated_block() {
        let err = parse("proc main() begin skip;").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn error_on_garbage_statement() {
        assert!(parse("proc main() begin 42; end").is_err());
    }

    #[test]
    fn error_on_missing_semicolon() {
        assert!(parse("proc main() begin write 1 end").is_err());
    }

    #[test]
    fn parenthesised_expressions() {
        let p = parse("proc main() begin int x := (1 + 2) * 3; skip; end").unwrap();
        let init = p.procs[0].body.decls[0].init.as_ref().unwrap();
        assert!(matches!(init, Expr::Binary { op: BinOp::Mul, .. }));
    }
}
