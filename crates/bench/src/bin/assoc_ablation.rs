//! **E9 — associativity ablation (§5.2):** DTB hit ratio at fixed capacity
//! across associativity degrees 1, 2, 4, 8 and full.
//!
//! The paper adopts degree 4 because it "has been found to be nearly as
//! effective as full associativity"; this experiment checks that claim for
//! the DTB on our workloads.
//!
//! Run with `cargo run -p uhm-bench --bin assoc_ablation --release`.
//! With `--json`, emits a versioned RunReport instead of the text table.

use dir::encode::SchemeKind;
use memsim::Geometry;
use psder::MAX_TRANSLATION_WORDS;
use telemetry::Json;
use uhm::{Allocation, DtbConfig, Machine, Mode};
use uhm_bench::{bench_report, json_flag, workloads};

fn config(capacity: usize, ways: usize) -> DtbConfig {
    DtbConfig {
        geometry: Geometry::new((capacity / ways).max(1), ways),
        unit_words: MAX_TRANSLATION_WORDS,
        allocation: Allocation::Fixed,
        replacement: uhm::Replacement::Lru,
    }
}

fn main() {
    let json = json_flag();
    let capacity = 32;
    let degrees: [usize; 5] = [1, 2, 4, 8, capacity];
    if !json {
        println!("Associativity ablation at a fixed {capacity}-entry DTB\n");
        println!(
            "{:>14} | {}",
            "workload",
            degrees
                .iter()
                .map(|&w| if w == capacity {
                    format!("{:>8}", "full")
                } else {
                    format!("{w:>8}-way")
                })
                .collect::<Vec<_>>()
                .join(" ")
        );
        println!("{}", "-".repeat(17 + 13 * degrees.len()));
    }
    let mut rows = Vec::new();
    let mut sums = vec![0.0; degrees.len()];
    let mut count = 0usize;
    for w in workloads() {
        let machine = Machine::new(&w.base, SchemeKind::PairHuffman);
        let mut cells = Vec::new();
        let mut points = Vec::new();
        for (i, &ways) in degrees.iter().enumerate() {
            let r = machine
                .run(&Mode::Dtb(config(capacity, ways)))
                .expect("samples are trap-free");
            let h = r.metrics.dtb.unwrap().hit_ratio();
            sums[i] += h;
            cells.push(format!("{h:>12.4}"));
            points.push(Json::obj(vec![
                ("ways", (ways as u64).into()),
                ("hit_ratio", h.into()),
            ]));
        }
        count += 1;
        if json {
            rows.push(Json::obj(vec![
                ("workload", w.name.into()),
                ("degrees", Json::Arr(points)),
            ]));
        } else {
            println!("{:>14} | {}", w.name, cells.join(" "));
        }
    }
    if json {
        let config = Json::obj(vec![
            ("capacity", (capacity as u64).into()),
            (
                "degrees",
                Json::Arr(degrees.iter().map(|&d| (d as u64).into()).collect()),
            ),
        ]);
        println!("{}", bench_report("assoc_ablation", config, rows).render());
        return;
    }
    println!("{}", "-".repeat(17 + 13 * degrees.len()));
    let means: Vec<String> = sums
        .iter()
        .map(|s| format!("{:>12.4}", s / count as f64))
        .collect();
    println!("{:>14} | {}", "mean h_D", means.join(" "));
    println!("\nReading: on most workloads degree 4 is within a whisker of every other");
    println!("degree, supporting §5.2's compromise. Where the working set exceeds the");
    println!("DTB (queens, straightline), *lower* associativity can win: DIR addresses");
    println!("are sequential, so modulo placement spreads a loop across all sets while");
    println!("full-associative LRU exhibits classic loop thrashing (a loop one entry");
    println!("larger than the buffer yields zero hits). The 1978 'degree 4 ≈ full'");
    println!("evidence came from data caches; for an instruction-addressed DTB, modest");
    println!("associativity is not merely cheaper — it is also safer.");
}
