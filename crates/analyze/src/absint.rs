//! Pass 2: per-region abstract interpretation of the DIR stack machine.
//!
//! Each region (the prelude, then every procedure) is interpreted over an
//! abstract state of *(operand-stack depth, must-initialized locals)*. The
//! worklist iterates to a fixpoint with the join *equal depth, intersected
//! init sets* — the JVM verifier's discipline specialized to an untyped
//! operand stack. On a clean program this proves, per reachable path:
//!
//! - no operand-stack underflow, and a finite maximum stack depth;
//! - every `Return` executes at exactly the declared result depth;
//! - every branch lands inside the owning region;
//! - every slot operand stays inside its declared frame/global area;
//! - locals are stored before they are read (array-backed slots are
//!   exempt: frames zero-fill, so their reads are defined).
//!
//! These are exactly the traps the trusted executor and engine stop
//! constructing errors for, so every finding here is a hard verification
//! error — except read-before-store of a scalar that *is* stored elsewhere
//! in the region, which the runtime defines as reading zero and is
//! reported as a warning.

use std::collections::BTreeSet;

use dir::isa::{Inst, Opcode};
use dir::program::Program;

use crate::diag::{DiagCode, Diagnostic};

/// One analysis region: the prelude or a procedure body.
#[derive(Debug, Clone)]
pub(crate) struct Region {
    /// `<prelude>` or the procedure name.
    pub name: String,
    /// First instruction index.
    pub start: u32,
    /// One past the last instruction.
    pub end: u32,
    /// Arguments, pre-initialized by `Call`.
    pub n_args: u32,
    /// Frame slots available.
    pub frame_size: u32,
    /// Whether `Return` must leave exactly one operand.
    pub returns_value: bool,
    /// The prelude runs in a pseudo-frame and must not `Return`.
    pub is_prelude: bool,
}

/// Decomposes a program into the prelude region followed by every
/// procedure in table order (the same contours the contextual encoders
/// key on).
pub(crate) fn regions(program: &Program) -> Vec<Region> {
    let prelude_end = program
        .procs
        .iter()
        .map(|p| p.entry)
        .min()
        .unwrap_or(program.code.len() as u32);
    let mut out = vec![Region {
        name: "<prelude>".to_string(),
        start: 0,
        end: prelude_end,
        n_args: 0,
        frame_size: 0,
        returns_value: false,
        is_prelude: true,
    }];
    out.extend(program.procs.iter().map(|p| Region {
        name: p.name.clone(),
        start: p.entry,
        end: p.end,
        n_args: p.n_args,
        frame_size: p.frame_size,
        returns_value: p.returns_value,
        is_prelude: false,
    }));
    out
}

/// Stack effect `(pops, pushes)` of every opcode whose effect is
/// shape-independent; `Call` and `Return` are frame-mediated and return
/// `None` (the interpreter handles them with procedure metadata).
pub(crate) fn basic_effect(inst: &Inst) -> Option<(u32, u32)> {
    Some(match inst.opcode() {
        Opcode::PushConst | Opcode::PushLocal | Opcode::PushGlobal => (0, 1),
        Opcode::StoreLocal
        | Opcode::StoreGlobal
        | Opcode::Pop
        | Opcode::Write
        | Opcode::JumpIfFalse
        | Opcode::JumpIfTrue => (1, 0),
        Opcode::LoadArrLocal | Opcode::LoadArrGlobal => (1, 1),
        Opcode::StoreArrLocal | Opcode::StoreArrGlobal => (2, 0),
        Opcode::Bin => (2, 1),
        Opcode::Neg | Opcode::Not => (1, 1),
        Opcode::Jump | Opcode::Halt => (0, 0),
        Opcode::BinLocals
        | Opcode::IncLocal
        | Opcode::SetLocalConst
        | Opcode::CmpConstBr
        | Opcode::CmpLocalsBr => (0, 0),
        Opcode::Call | Opcode::Return => return None,
    })
}

/// A dense bitset over frame slots.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SlotSet {
    bits: Vec<u64>,
}

impl SlotSet {
    fn new(n: usize) -> SlotSet {
        SlotSet {
            bits: vec![0; n.div_ceil(64)],
        }
    }

    fn set(&mut self, i: usize) {
        self.bits[i / 64] |= 1 << (i % 64);
    }

    fn get(&self, i: usize) -> bool {
        self.bits[i / 64] >> (i % 64) & 1 == 1
    }

    /// Intersects in place; reports whether anything changed.
    fn intersect_with(&mut self, other: &SlotSet) -> bool {
        let mut changed = false;
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            let next = *a & b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }
}

/// Frame slots an instruction reads directly (not through the stack).
fn local_reads(inst: &Inst, buf: &mut Vec<u32>) {
    buf.clear();
    match *inst {
        Inst::PushLocal(s) => buf.push(s),
        Inst::BinLocals { a, b, .. } | Inst::CmpLocalsBr { a, b, .. } => {
            buf.push(a);
            buf.push(b);
        }
        Inst::IncLocal { slot, .. } | Inst::CmpConstBr { slot, .. } => buf.push(slot),
        _ => {}
    }
}

/// The frame slot an instruction writes, if any.
fn local_write(inst: &Inst) -> Option<u32> {
    match *inst {
        Inst::StoreLocal(s) => Some(s),
        Inst::BinLocals { dst, .. } => Some(dst),
        Inst::IncLocal { slot, .. } | Inst::SetLocalConst { slot, .. } => Some(slot),
        _ => None,
    }
}

/// What the abstract interpreter proved about one region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionSummary {
    /// `<prelude>` or the procedure name.
    pub name: String,
    /// First instruction index.
    pub start: u32,
    /// One past the last instruction.
    pub end: u32,
    /// Maximum operand-stack depth on any path through the region.
    pub max_stack: u32,
}

/// Runs the abstract interpreter over every region, appending findings to
/// `diags` and returning the per-region summaries.
pub(crate) fn analyze_regions(
    program: &Program,
    diags: &mut Vec<Diagnostic>,
) -> Vec<RegionSummary> {
    regions(program)
        .into_iter()
        .map(|r| {
            let max_stack = analyze_region(program, &r, diags);
            RegionSummary {
                name: r.name,
                start: r.start,
                end: r.end,
                max_stack,
            }
        })
        .collect()
}

/// Deduplicated reporting: the worklist revisits instructions as init sets
/// narrow, so each `(address, code, detail)` triple is reported once.
type Reported = BTreeSet<(u32, DiagCode, u32)>;

fn report_once(
    reported: &mut Reported,
    diags: &mut Vec<Diagnostic>,
    code: DiagCode,
    addr: u32,
    aux: u32,
    region: &str,
    message: String,
) {
    if reported.insert((addr, code, aux)) {
        diags.push(Diagnostic::at(code, addr, region, message));
    }
}

fn analyze_region(program: &Program, region: &Region, diags: &mut Vec<Diagnostic>) -> u32 {
    let code = &program.code;
    let start = region.start as usize;
    let end = region.end as usize;
    if start >= end || end > code.len() {
        return 0;
    }
    let n = end - start;
    let fs = region.frame_size as usize;

    // One scan up front for the two-tier uninitialized rule: array-backed
    // slots are exempt (zero-filled frames make their reads defined), and
    // scalars stored *somewhere* in the region downgrade a premature read
    // from error to warning.
    let mut exempt = SlotSet::new(fs);
    let mut written_anywhere = SlotSet::new(fs);
    for inst in &code[start..end] {
        if let Inst::LoadArrLocal { base, len } | Inst::StoreArrLocal { base, len } = *inst {
            for s in base..base.saturating_add(len).min(region.frame_size) {
                exempt.set(s as usize);
            }
        }
        if let Some(s) = local_write(inst) {
            if (s as usize) < fs {
                written_anywhere.set(s as usize);
            }
        }
    }

    let mut entry_init = SlotSet::new(fs);
    for a in 0..region.n_args.min(region.frame_size) {
        entry_init.set(a as usize);
    }

    let mut states: Vec<Option<(u32, SlotSet)>> = vec![None; n];
    states[0] = Some((0, entry_init));
    let mut work: Vec<usize> = vec![0];
    let mut reported = Reported::new();
    let mut uninit_reads: BTreeSet<(u32, u32)> = BTreeSet::new();
    let mut reads = Vec::new();
    let mut max_stack = 0u32;

    while let Some(rel) = work.pop() {
        let (depth, init) = states[rel].clone().expect("queued index has a state");
        let addr = (start + rel) as u32;
        let inst = code[start + rel];

        // Slot-range screening: these are the bounds the trusted engine
        // stops trapping on, so out-of-range operands are hard errors and
        // no sound state propagates past them.
        let mut slots_ok = true;
        local_reads(&inst, &mut reads);
        let write = local_write(&inst);
        for s in reads.iter().copied().chain(write) {
            if s >= region.frame_size {
                slots_ok = false;
                report_once(
                    &mut reported,
                    diags,
                    DiagCode::SlotOutOfRange,
                    addr,
                    s,
                    &region.name,
                    format!("frame slot {s} outside declared size {}", region.frame_size),
                );
            }
        }
        match inst {
            Inst::PushGlobal(s) | Inst::StoreGlobal(s) if s >= program.globals_size => {
                slots_ok = false;
                report_once(
                    &mut reported,
                    diags,
                    DiagCode::SlotOutOfRange,
                    addr,
                    s,
                    &region.name,
                    format!(
                        "global slot {s} outside declared size {}",
                        program.globals_size
                    ),
                );
            }
            Inst::LoadArrLocal { base, len } | Inst::StoreArrLocal { base, len }
                if base.saturating_add(len) > region.frame_size =>
            {
                slots_ok = false;
                report_once(
                    &mut reported,
                    diags,
                    DiagCode::SlotOutOfRange,
                    addr,
                    base,
                    &region.name,
                    format!(
                        "frame array {base}+{len} outside declared size {}",
                        region.frame_size
                    ),
                );
            }
            Inst::LoadArrGlobal { base, len } | Inst::StoreArrGlobal { base, len }
                if base.saturating_add(len) > program.globals_size =>
            {
                slots_ok = false;
                report_once(
                    &mut reported,
                    diags,
                    DiagCode::SlotOutOfRange,
                    addr,
                    base,
                    &region.name,
                    format!(
                        "global array {base}+{len} outside declared size {}",
                        program.globals_size
                    ),
                );
            }
            _ => {}
        }
        if !slots_ok {
            continue;
        }

        // Read-before-store bookkeeping (resolved to error/warning after
        // the fixpoint, when `written_anywhere` is known to be complete).
        for &s in &reads {
            if !(init.get(s as usize) || exempt.get(s as usize)) {
                uninit_reads.insert((addr, s));
            }
        }

        // Stack effect.
        let (pops, pushes) = match inst {
            Inst::Call(p) => {
                if p as usize >= program.procs.len() {
                    report_once(
                        &mut reported,
                        diags,
                        DiagCode::BadCallee,
                        addr,
                        p,
                        &region.name,
                        format!(
                            "call to procedure {p} outside table of {}",
                            program.procs.len()
                        ),
                    );
                    continue;
                }
                let callee = &program.procs[p as usize];
                (callee.n_args, callee.returns_value as u32)
            }
            Inst::Return => {
                if region.is_prelude {
                    report_once(
                        &mut reported,
                        diags,
                        DiagCode::ReturnImbalance,
                        addr,
                        0,
                        &region.name,
                        "return executes in the prelude pseudo-frame".to_string(),
                    );
                } else {
                    let want = region.returns_value as u32;
                    if depth != want {
                        report_once(
                            &mut reported,
                            diags,
                            DiagCode::ReturnImbalance,
                            addr,
                            depth,
                            &region.name,
                            format!("return at stack depth {depth}, expected {want}"),
                        );
                    }
                }
                continue; // terminal
            }
            _ => basic_effect(&inst).expect("call/return handled above"),
        };
        if depth < pops {
            report_once(
                &mut reported,
                diags,
                DiagCode::StackUnderflow,
                addr,
                depth,
                &region.name,
                format!("{:?} pops {pops} at stack depth {depth}", inst.opcode()),
            );
            continue;
        }
        let depth2 = depth - pops + pushes;
        max_stack = max_stack.max(depth).max(depth2);

        let mut init2 = init;
        if let Some(s) = write {
            init2.set(s as usize);
        }

        // Successors, screened against the code array and the owning
        // region (a branch that escapes its region would execute under the
        // wrong frame).
        let mut succs: [Option<u32>; 2] = [None, None];
        let branch_target = inst.target();
        if let Some(t) = branch_target {
            if t as usize >= code.len() {
                report_once(
                    &mut reported,
                    diags,
                    DiagCode::JumpOutOfRange,
                    addr,
                    t,
                    &region.name,
                    format!(
                        "branch target {t} outside code of {} instructions",
                        code.len()
                    ),
                );
            } else if t < region.start || t >= region.end {
                report_once(
                    &mut reported,
                    diags,
                    DiagCode::JumpCrossesProcedure,
                    addr,
                    t,
                    &region.name,
                    format!(
                        "branch target {t} outside owning region {}..{}",
                        region.start, region.end
                    ),
                );
            } else {
                succs[0] = Some(t);
            }
        }
        let falls_through = !matches!(inst.opcode(), Opcode::Jump | Opcode::Return | Opcode::Halt);
        if falls_through {
            let next = addr + 1;
            if next >= region.end {
                report_once(
                    &mut reported,
                    diags,
                    DiagCode::FallsThroughRegion,
                    addr,
                    0,
                    &region.name,
                    format!("{:?} falls through the region end", inst.opcode()),
                );
            } else {
                succs[1] = Some(next);
            }
        }

        for t in succs.into_iter().flatten() {
            let trel = t as usize - start;
            match &mut states[trel] {
                slot @ None => {
                    *slot = Some((depth2, init2.clone()));
                    work.push(trel);
                }
                Some((d, s)) => {
                    if *d != depth2 {
                        let have = *d;
                        report_once(
                            &mut reported,
                            diags,
                            DiagCode::StackImbalance,
                            t,
                            depth2,
                            &region.name,
                            format!("paths join at stack depths {have} and {depth2}"),
                        );
                    } else if s.intersect_with(&init2) {
                        work.push(trel);
                    }
                }
            }
        }
    }

    for (addr, slot) in uninit_reads {
        let (code_, msg) = if written_anywhere.get(slot as usize) {
            (
                DiagCode::MaybeUninitializedLocal,
                format!("local {slot} may be read before its first store"),
            )
        } else {
            (
                DiagCode::UninitializedLocal,
                format!("local {slot} is read but never stored in this region"),
            )
        };
        diags.push(Diagnostic::at(code_, addr, &region.name, msg));
    }

    max_stack
}
