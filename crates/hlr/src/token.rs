//! Lexical tokens of RAUL.

use crate::Span;

/// A lexical token together with its source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token's kind and payload.
    pub kind: TokenKind,
    /// Location in the source text.
    pub span: Span,
}

/// The kinds of token produced by the [`lexer`](crate::lexer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An integer literal, e.g. `42`.
    Int(i64),
    /// An identifier, e.g. `count`.
    Ident(String),

    // Keywords.
    /// `proc`
    Proc,
    /// `begin`
    Begin,
    /// `end`
    End,
    /// `int`
    KwInt,
    /// `bool`
    KwBool,
    /// `if`
    If,
    /// `then`
    Then,
    /// `else`
    Else,
    /// `while`
    While,
    /// `do`
    Do,
    /// `for`
    For,
    /// `to`
    To,
    /// `call`
    Call,
    /// `return`
    Return,
    /// `write`
    Write,
    /// `skip`
    Skip,
    /// `true`
    True,
    /// `false`
    False,
    /// `and`
    And,
    /// `or`
    Or,
    /// `not`
    Not,

    // Punctuation and operators.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `:=`
    Assign,
    /// `->`
    Arrow,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// Returns the keyword token for `word`, if `word` is a reserved word.
    pub fn keyword(word: &str) -> Option<TokenKind> {
        Some(match word {
            "proc" => TokenKind::Proc,
            "begin" => TokenKind::Begin,
            "end" => TokenKind::End,
            "int" => TokenKind::KwInt,
            "bool" => TokenKind::KwBool,
            "if" => TokenKind::If,
            "then" => TokenKind::Then,
            "else" => TokenKind::Else,
            "while" => TokenKind::While,
            "do" => TokenKind::Do,
            "for" => TokenKind::For,
            "to" => TokenKind::To,
            "call" => TokenKind::Call,
            "return" => TokenKind::Return,
            "write" => TokenKind::Write,
            "skip" => TokenKind::Skip,
            "true" => TokenKind::True,
            "false" => TokenKind::False,
            "and" => TokenKind::And,
            "or" => TokenKind::Or,
            "not" => TokenKind::Not,
            _ => return None,
        })
    }

    /// A short human-readable description used in error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Int(v) => format!("integer `{v}`"),
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Eof => "end of input".to_string(),
            other => format!("`{}`", other.lexeme()),
        }
    }

    /// The canonical source spelling of a fixed token, or a placeholder for
    /// variable tokens.
    fn lexeme(&self) -> &'static str {
        match self {
            TokenKind::Proc => "proc",
            TokenKind::Begin => "begin",
            TokenKind::End => "end",
            TokenKind::KwInt => "int",
            TokenKind::KwBool => "bool",
            TokenKind::If => "if",
            TokenKind::Then => "then",
            TokenKind::Else => "else",
            TokenKind::While => "while",
            TokenKind::Do => "do",
            TokenKind::For => "for",
            TokenKind::To => "to",
            TokenKind::Call => "call",
            TokenKind::Return => "return",
            TokenKind::Write => "write",
            TokenKind::Skip => "skip",
            TokenKind::True => "true",
            TokenKind::False => "false",
            TokenKind::And => "and",
            TokenKind::Or => "or",
            TokenKind::Not => "not",
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::LBracket => "[",
            TokenKind::RBracket => "]",
            TokenKind::Semi => ";",
            TokenKind::Comma => ",",
            TokenKind::Assign => ":=",
            TokenKind::Arrow => "->",
            TokenKind::Plus => "+",
            TokenKind::Minus => "-",
            TokenKind::Star => "*",
            TokenKind::Slash => "/",
            TokenKind::Percent => "%",
            TokenKind::Eq => "=",
            TokenKind::Ne => "<>",
            TokenKind::Lt => "<",
            TokenKind::Le => "<=",
            TokenKind::Gt => ">",
            TokenKind::Ge => ">=",
            TokenKind::Int(_) | TokenKind::Ident(_) | TokenKind::Eof => "?",
        }
    }
}

impl std::fmt::Display for TokenKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_round_trip() {
        for word in [
            "proc", "begin", "end", "int", "bool", "if", "then", "else", "while", "do", "for",
            "to", "call", "return", "write", "skip", "true", "false", "and", "or", "not",
        ] {
            let tok = TokenKind::keyword(word).expect(word);
            assert_eq!(tok.lexeme(), word);
        }
    }

    #[test]
    fn non_keyword_is_none() {
        assert_eq!(TokenKind::keyword("main"), None);
        assert_eq!(TokenKind::keyword(""), None);
    }

    #[test]
    fn describe_variable_tokens() {
        assert_eq!(TokenKind::Int(7).describe(), "integer `7`");
        assert_eq!(TokenKind::Ident("x".into()).describe(), "identifier `x`");
        assert_eq!(TokenKind::Eof.describe(), "end of input");
        assert_eq!(TokenKind::Assign.describe(), "`:=`");
    }
}
