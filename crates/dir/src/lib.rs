//! # uhm-dir — the directly interpretable representation
//!
//! This crate implements the *DIR* tier of Rau (1978) and the whole
//! two-dimensional space of intermediate representations from the paper's
//! Section 3:
//!
//! * **Vertical axis (semantic level):** the base stack ISA produced by
//!   [`compiler`] and the fused, higher-level ISA produced by [`fuse`].
//! * **Horizontal axis (degree of encoding):** the five encodings in
//!   [`encode`], from byte-aligned fields to predecessor-conditioned
//!   Huffman codes, each with a measured decode-cost model.
//!
//! Supporting modules: [`isa`] (instructions and their field schemas),
//! [`program`] (the flat code array + procedure table), [`exec`] (the
//! semantic reference executor), [`bitstream`] and [`huffman`] (encoding
//! machinery), [`stats`] (static statistics), [`formats`] (the Table 1
//! format-equivalence demonstration) and [`facts`] (per-site check-elision
//! bitmaps consumed by the executors).
//!
//! # Example
//!
//! ```
//! use dir::encode::SchemeKind;
//!
//! let hir = hlr::compile("proc main() begin write 6 * 7; end")?;
//! let prog = dir::compiler::compile(&hir);
//! assert_eq!(dir::exec::run(&prog).unwrap(), vec![42]);
//!
//! let image = SchemeKind::Huffman.encode(&prog);
//! assert_eq!(image.decode_all().unwrap(), prog.code);
//! # Ok::<(), hlr::Error>(())
//! ```

#![warn(missing_docs)]

pub mod asm;
pub mod bitstream;
pub mod cfg;
pub mod compiler;
pub mod encode;
pub mod exec;
pub mod facts;
pub mod formats;
pub mod fuse;
pub mod huffman;
pub mod isa;
pub mod program;
pub mod stats;

pub use encode::DecodeMode;
pub use facts::SiteFacts;
pub use isa::{AluOp, Inst, Opcode};
pub use program::{ProcInfo, Program};
