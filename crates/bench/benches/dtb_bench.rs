//! Benchmarks of the DTB data structure in isolation: lookup and fill
//! paths under hit- and miss-heavy address streams.

use psder::{PushMode, ShortInstr};
use std::hint::black_box;
use uhm::{Dtb, DtbConfig};
use uhm_bench::timing::Harness;

fn translation() -> Vec<ShortInstr> {
    (0..4).map(|i| ShortInstr::Push(PushMode::Imm(i))).collect()
}

fn main() {
    let mut h = Harness::new("dtb_bench");

    let mut dtb = Dtb::new(DtbConfig::with_capacity(256));
    let t = translation();
    for addr in 0..256u32 {
        dtb.fill(addr, &t);
    }
    let mut i = 0u32;
    h.bench("dtb_lookup_hit", || {
        i = (i + 1) % 256;
        black_box(dtb.lookup(black_box(i)))
    });

    let mut dtb = Dtb::new(DtbConfig::with_capacity(64));
    let mut addr = 0u32;
    h.bench("dtb_miss_fill", || {
        addr = addr.wrapping_add(97); // always a fresh address
        if dtb.lookup(black_box(addr)).is_none() {
            black_box(dtb.fill(addr, &t));
        }
    });

    let inst = dir::Inst::CmpConstBr {
        op: dir::AluOp::Lt,
        slot: 1,
        imm: 100,
        target: 17,
    };
    h.bench("translate_template", || {
        black_box(psder::translate(black_box(inst), 18))
    });

    h.finish();
}
