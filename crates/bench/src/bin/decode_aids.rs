//! **§8 cost-effectiveness:** "The decoding overhead of a universal host
//! machine may be reduced either by providing powerful hardware aids to
//! the decoding process or by the use of a dynamic translation buffer ...
//! The former approach requires the addition of random logic whereas the
//! latter approach relies on the use of memory."
//!
//! This experiment pits the two against each other: the conventional
//! interpreter with increasingly powerful decode hardware (decode cost
//! scaled to 100% / 50% / 25% / 10% of the measured software cost) versus
//! the unmodified machine plus a 64-entry DTB (whose price is its level-1
//! buffer memory, reported in short words).
//!
//! Run with `cargo run -p uhm-bench --bin decode_aids --release`.
//! With `--json`, emits a versioned RunReport instead of the text table.

use dir::encode::SchemeKind;
use telemetry::Json;
use uhm::{CostModel, DtbConfig, Limits, Machine, Mode};
use uhm_bench::{bench_report, json_flag, workloads};

fn main() {
    let json = json_flag();
    let scales = [100u64, 50, 25, 10];
    let dtb_cfg = DtbConfig::with_capacity(64);
    if !json {
        println!("Decode hardware aids vs dynamic translation (PairHuffman static DIR)\n");
        println!(
            "{:>14} | {} | {:>9}",
            "workload",
            scales
                .iter()
                .map(|s| format!("{:>9}", format!("T1@{s}%")))
                .collect::<Vec<_>>()
                .join(" "),
            "T2 (DTB)"
        );
        println!("{}", "-".repeat(17 + 10 * scales.len() + 12));
    }
    let mut rows = Vec::new();
    let mut beats = 0usize;
    let mut total = 0usize;
    for w in workloads() {
        let mut cells = Vec::new();
        let mut aided = Vec::new();
        let mut best_aided = f64::INFINITY;
        for &scale in &scales {
            let costs = CostModel {
                decode_scale_percent: scale,
                ..CostModel::default()
            };
            let machine = Machine::with(&w.base, SchemeKind::PairHuffman, costs, Limits::default());
            let t1 = machine
                .run(&Mode::Interpreter)
                .expect("samples are trap-free")
                .metrics
                .time_per_instruction();
            best_aided = best_aided.min(t1);
            cells.push(format!("{t1:>9.2}"));
            aided.push(Json::obj(vec![
                ("decode_scale_percent", scale.into()),
                ("time_per_instruction", t1.into()),
            ]));
        }
        let machine = Machine::new(&w.base, SchemeKind::PairHuffman);
        let t2 = machine
            .run(&Mode::Dtb(dtb_cfg))
            .expect("samples are trap-free")
            .metrics
            .time_per_instruction();
        if w.name != "straightline" {
            total += 1;
            if t2 < best_aided {
                beats += 1;
            }
        }
        if json {
            rows.push(Json::obj(vec![
                ("workload", w.name.into()),
                ("aided_interpreter", Json::Arr(aided)),
                ("dtb_time", t2.into()),
            ]));
        } else {
            println!("{:>14} | {} | {:>9.2}", w.name, cells.join(" "), t2);
        }
    }
    if json {
        let config = Json::obj(vec![
            (
                "decode_scales_percent",
                Json::Arr(scales.iter().map(|&s| s.into()).collect()),
            ),
            ("dtb_entries", 64u64.into()),
            ("dtb_buffer_words", (dtb_cfg.buffer_words() as u64).into()),
        ]);
        println!("{}", bench_report("decode_aids", config, rows).render());
        return;
    }
    println!(
        "\nThe DTB's price: {} short words of level-1 buffer ({} bits at 24-bit words).",
        dtb_cfg.buffer_words(),
        dtb_cfg.buffer_words() * 24
    );
    println!(
        "On {beats}/{total} looping workloads the DTB beats even a 10x decode\n\
         accelerator: hardware aids only attack the d term, while the DTB also\n\
         removes the level-2 fetch (s2*t2) from the hit path. Decode aids win\n\
         only where reuse is absent (straightline) — memory vs random logic,\n\
         settled in memory's favour for §8's assumed workloads."
    );
}
