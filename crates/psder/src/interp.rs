//! A complete (cost-free) PSDER-level interpreter.
//!
//! Runs a DIR program by translating each instruction on the fly into its
//! short-format sequence and executing it against the [`Engine`], with the
//! semantic routines from the [`RoutineLib`]. This is the semantic
//! reference for the `uhm` machines: they must produce byte-identical
//! output (the uhm test suite checks this differentially), differing only
//! in *when* translations happen and what they cost.

use dir::exec::Trap;
use dir::facts::SiteFacts;
use dir::program::Program;

use crate::engine::{Engine, MicroEffect, ShortEffect};
use crate::routines::RoutineLib;
use crate::translator::translate;

/// Resource limits for a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Maximum DIR instructions executed.
    pub max_steps: u64,
    /// Maximum call depth.
    pub max_depth: u32,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_steps: 200_000_000,
            max_depth: 10_000,
        }
    }
}

/// Runs a program to completion.
///
/// # Errors
///
/// Returns the same [`Trap`]s as [`dir::exec::run`].
pub fn run(program: &Program) -> Result<Vec<i64>, Trap> {
    run_with(program, Limits::default())
}

/// Runs a program under explicit limits.
///
/// # Errors
///
/// Returns the same [`Trap`]s as [`dir::exec::run`].
pub fn run_with(program: &Program, limits: Limits) -> Result<Vec<i64>, Trap> {
    run_engine(program, None, false, limits).0
}

/// Runs a program with *per-site* check elision: at each DIR address whose
/// [`SiteFacts`] bit is set, the corresponding guard (divide-by-zero or
/// `CheckIdx` bounds) is skipped inside that instruction's translation.
/// Output is bit-identical to [`run_with`] whenever the facts are sound.
///
/// # Errors
///
/// Returns the same [`Trap`]s as [`dir::exec::run`].
pub fn run_sited_with(
    program: &Program,
    facts: &SiteFacts,
    limits: Limits,
) -> Result<Vec<i64>, Trap> {
    run_engine(program, Some(facts), false, limits).0
}

/// Runs a program in *audit* mode: checked semantics throughout, but every
/// guard the facts claim elidable is counted when it fires (before trapping
/// normally). Returns the run result and the number of violations — nonzero
/// means the facts were unsound for this program.
pub fn run_audit_with(
    program: &Program,
    facts: &SiteFacts,
    limits: Limits,
) -> (Result<Vec<i64>, Trap>, u64) {
    run_engine(program, Some(facts), true, limits)
}

fn run_engine(
    program: &Program,
    facts: Option<&SiteFacts>,
    audit: bool,
    limits: Limits,
) -> (Result<Vec<i64>, Trap>, u64) {
    let lib = RoutineLib::new();
    let mut engine = Engine::new(program, limits.max_depth);
    engine.set_audit(audit);
    let result = (|| {
        let mut pc: u32 = 0;
        let mut steps: u64 = 0;
        loop {
            steps += 1;
            if steps > limits.max_steps {
                return Err(Trap::StepLimit);
            }
            let inst = *program
                .code
                .get(pc as usize)
                .ok_or(Trap::Malformed("pc out of range"))?;
            if let Some(f) = facts {
                engine.set_site_elide(f.div_ok(pc), f.idx_ok(pc));
            }
            let sequence = translate(inst, pc + 1);
            let mut next: Option<u32> = None;
            for short in sequence {
                match engine.exec_short(short)? {
                    ShortEffect::Continue => {}
                    ShortEffect::CallRoutine(id) => {
                        for word in lib.words(id) {
                            if engine.exec_word(word)? == MicroEffect::Halt {
                                return Ok(());
                            }
                        }
                    }
                    ShortEffect::Interp(addr) => {
                        next = Some(addr);
                    }
                }
            }
            pc = next.ok_or(Trap::Malformed("sequence ended without INTERP"))?;
        }
    })();
    let violations = engine.site_violations();
    (result.map(|()| engine.into_output()), violations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dir::compiler::compile;

    #[test]
    fn matches_dir_executor_on_all_samples() {
        for s in hlr::programs::ALL {
            let p = compile(&s.compile().unwrap());
            let want = dir::exec::run(&p).unwrap();
            let got = run(&p).unwrap_or_else(|e| panic!("{}: {e}", s.name));
            assert_eq!(got, want, "{}", s.name);
        }
    }

    #[test]
    fn matches_dir_executor_on_fused_samples() {
        for s in hlr::programs::ALL {
            let (p, _) = dir::fuse::fuse(&compile(&s.compile().unwrap()));
            let want = dir::exec::run(&p).unwrap();
            let got = run(&p).unwrap_or_else(|e| panic!("{}: {e}", s.name));
            assert_eq!(got, want, "{}", s.name);
        }
    }

    #[test]
    fn matches_dir_executor_on_generated_programs() {
        for seed in 0..30 {
            let ast = hlr::generate::program(seed, &hlr::generate::Config::default());
            let hir = hlr::sema::analyze(&ast).unwrap();
            let p = compile(&hir);
            assert_eq!(run(&p).unwrap(), dir::exec::run(&p).unwrap(), "seed {seed}");
        }
    }

    #[test]
    fn traps_match_dir_executor() {
        let cases = [
            "proc main() begin write 1 / 0; end",
            "proc main() begin int a[3]; write a[7]; end",
            "proc main() begin int a[2]; a[-1] := 9; skip; end",
        ];
        for src in cases {
            let p = compile(&hlr::compile(src).unwrap());
            assert_eq!(
                run(&p).unwrap_err(),
                dir::exec::run(&p).unwrap_err(),
                "{src}"
            );
        }
    }

    #[test]
    fn step_limit_enforced() {
        let p = compile(&hlr::compile("proc main() begin while true do skip; end").unwrap());
        let r = run_with(
            &p,
            Limits {
                max_steps: 500,
                max_depth: 16,
            },
        );
        assert_eq!(r.unwrap_err(), Trap::StepLimit);
    }

    #[test]
    fn depth_limit_enforced() {
        let p = compile(
            &hlr::compile("proc f() begin call f(); end proc main() begin call f(); end").unwrap(),
        );
        let r = run_with(
            &p,
            Limits {
                max_steps: 10_000_000,
                max_depth: 20,
            },
        );
        assert_eq!(r.unwrap_err(), Trap::DepthLimit);
    }
}
