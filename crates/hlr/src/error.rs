//! Error types shared by the lexer, parser and semantic analyser.

use crate::Span;

/// A convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// An error produced while processing RAUL source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    /// Which pipeline stage rejected the input.
    pub stage: Stage,
    /// Human-readable description (lowercase, no trailing punctuation).
    pub message: String,
    /// Source location of the offending construct.
    pub span: Span,
}

/// The pipeline stage that produced an [`Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Tokenisation.
    Lex,
    /// Parsing.
    Parse,
    /// Name resolution and type checking.
    Sema,
}

impl Error {
    /// Creates a lexical error.
    pub fn lex(message: impl Into<String>, span: Span) -> Self {
        Error {
            stage: Stage::Lex,
            message: message.into(),
            span,
        }
    }

    /// Creates a parse error.
    pub fn parse(message: impl Into<String>, span: Span) -> Self {
        Error {
            stage: Stage::Parse,
            message: message.into(),
            span,
        }
    }

    /// Creates a semantic error.
    pub fn sema(message: impl Into<String>, span: Span) -> Self {
        Error {
            stage: Stage::Sema,
            message: message.into(),
            span,
        }
    }
}

impl Error {
    /// Renders the error with source context: the offending line, a caret
    /// marker under the span, and 1-based line/column coordinates.
    ///
    /// # Example
    ///
    /// ```
    /// let err = hlr::compile("proc main() begin write nope; end").unwrap_err();
    /// let text = err.render("proc main() begin write nope; end");
    /// assert!(text.contains("line 1"));
    /// assert!(text.contains("^^^^"));
    /// ```
    pub fn render(&self, source: &str) -> String {
        let (line_no, col, line_text) = locate(source, self.span.start);
        let width = (self.span.end.saturating_sub(self.span.start)).max(1);
        // Clamp the caret run to the end of the line.
        let width = width.min(line_text.len().saturating_sub(col) + 1).max(1);
        let stage = match self.stage {
            Stage::Lex => "lex",
            Stage::Parse => "parse",
            Stage::Sema => "sema",
        };
        format!(
            "{stage} error at line {line_no}, column {}: {}
     |
{line_no:4} | {line_text}
     | {}{}
",
            col + 1,
            self.message,
            " ".repeat(col),
            "^".repeat(width),
        )
    }
}

/// Finds the 1-based line number, 0-based column, and line text containing
/// byte offset `at`.
fn locate(source: &str, at: usize) -> (usize, usize, String) {
    let at = at.min(source.len());
    let mut line_start = 0usize;
    let mut line_no = 1usize;
    for (i, b) in source.bytes().enumerate() {
        if i >= at {
            break;
        }
        if b == b'\n' {
            line_start = i + 1;
            line_no += 1;
        }
    }
    let line_end = source[line_start..]
        .find('\n')
        .map(|i| line_start + i)
        .unwrap_or(source.len());
    (
        line_no,
        at - line_start,
        source[line_start..line_end].to_string(),
    )
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stage = match self.stage {
            Stage::Lex => "lex",
            Stage::Parse => "parse",
            Stage::Sema => "sema",
        };
        write!(f, "{} error at {}: {}", stage, self.span, self.message)
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_stage_and_span() {
        let e = Error::parse("expected `;`", Span::new(4, 5));
        assert_eq!(e.to_string(), "parse error at 4..5: expected `;`");
    }

    #[test]
    fn render_points_at_the_problem() {
        let src = "proc main() begin\n    write nope;\nend";
        let err = crate::compile(src).unwrap_err();
        let text = err.render(src);
        assert!(text.contains("line 2"), "{text}");
        assert!(text.contains("write nope;"), "{text}");
        assert!(text.contains("^^^^"), "{text}");
    }

    #[test]
    fn render_survives_out_of_range_span() {
        let e = Error::sema("synthetic", Span::new(500, 510));
        let text = e.render("short");
        assert!(text.contains("synthetic"));
    }

    #[test]
    fn render_first_line() {
        let src = "int @;";
        let err = crate::compile(src).unwrap_err();
        let text = err.render(src);
        assert!(text.contains("line 1, column 5"), "{text}");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
