//! Hierarchical span tracing with Chrome `trace_event` export.
//!
//! [`SpanTracer`] turns a machine's event stream into a trace that loads
//! directly in Perfetto / `chrome://tracing`: procedure-call spans
//! (`B`/`E` pairs reconstructed from the retire-address stream), one `X`
//! slice per retired DIR instruction named by its opcode, child slices
//! for the dynamic translation routine and semantic routines, counter
//! tracks (`C`) for DTB occupancy, and instant markers (`i`) for misses,
//! evictions, fault injections and degradations.
//!
//! Time is the *modeled* clock: the tracer advances by each retire's
//! cycle delta, and one modeled level-1 cycle renders as one microsecond
//! of trace time (`ts`/`dur` are in µs in the trace_event format), so a
//! span's width is exactly its modeled cost. Sub-events arrive before
//! the retire that pays for them, so the tracer buffers them per
//! instruction and lays them out when the retire fixes the span's start
//! and duration.
//!
//! Like every sink in this crate the tracer sets
//! [`TraceSink::CLASSIFY_MISSES`] to `false`: attaching it never changes
//! the run's modeled metrics.

use dir::isa::OPCODES;
use dir::program::Program;
use telemetry::{Event, Json, TraceSink};

use crate::map::{CallStack, ProcMap};

/// Default cap on retained trace events; beyond it events are counted
/// but not retained (surfaced via [`SpanTracer::dropped`] and the
/// report's `trace_health` section).
const DEFAULT_MAX_EVENTS: usize = 1 << 18;

/// Sub-events buffered between two retires.
#[derive(Debug, Clone, Copy)]
enum Pending {
    Translate {
        addr: u32,
        decode_cycles: u64,
        generate_cycles: u64,
    },
    Routine {
        id: u16,
        words: u32,
    },
    Instant {
        name: &'static str,
        addr: u32,
        detail: Option<&'static str>,
    },
    Occupancy(u32),
}

/// A [`TraceSink`] producing Chrome trace_event JSON.
#[derive(Debug)]
pub struct SpanTracer {
    map: ProcMap,
    opcode_of: Vec<u8>,
    stack: CallStack,
    clock: u64,
    pending: Vec<Pending>,
    events: Vec<Json>,
    max_events: usize,
    dropped: u64,
    /// Depth of procedure `B` events suppressed by the cap. Their
    /// matching `E` events must be suppressed too (and end-of-run
    /// closing must skip them) or the retained spans stop nesting.
    suppressed: usize,
    pid: u32,
    tid: u32,
}

impl SpanTracer {
    /// Creates a tracer for one program, on trace process/thread 1/1.
    pub fn new(program: &Program) -> SpanTracer {
        SpanTracer {
            map: ProcMap::new(program),
            opcode_of: program.code.iter().map(|i| i.opcode() as u8).collect(),
            stack: CallStack::new(),
            clock: 0,
            pending: Vec::new(),
            events: Vec::new(),
            max_events: DEFAULT_MAX_EVENTS,
            dropped: 0,
            suppressed: 0,
            pid: 1,
            tid: 1,
        }
    }

    /// Sets the trace pid/tid this tracer emits under — pool runs give
    /// each tenant its own pid so Perfetto shows them as separate
    /// process tracks.
    pub fn set_track(&mut self, pid: u32, tid: u32) -> &mut Self {
        self.pid = pid;
        self.tid = tid;
        self
    }

    /// Overrides the retained-event cap.
    pub fn set_max_events(&mut self, max: usize) -> &mut Self {
        self.max_events = max;
        self
    }

    /// The modeled clock, in cycles (= µs of trace time).
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Retained trace events so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events discarded because the cap was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    fn push(&mut self, ev: Json) {
        if self.events.len() >= self.max_events {
            self.dropped += 1;
            return;
        }
        self.events.push(ev);
    }

    fn duration(&self, name: String, cat: &str, ts: u64, dur: u64, args: Json) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::Str(name)),
            ("cat".into(), Json::from(cat)),
            ("ph".into(), Json::from("X")),
            ("ts".into(), Json::from(ts)),
            ("dur".into(), Json::from(dur)),
            ("pid".into(), Json::from(self.pid)),
            ("tid".into(), Json::from(self.tid)),
            ("args".into(), args),
        ])
    }

    fn begin_end(&self, name: &str, ph: &str, ts: u64) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::from(name)),
            ("cat".into(), Json::from("proc")),
            ("ph".into(), Json::from(ph)),
            ("ts".into(), Json::from(ts)),
            ("pid".into(), Json::from(self.pid)),
            ("tid".into(), Json::from(self.tid)),
        ])
    }

    fn opcode_name(&self, addr: u32) -> String {
        self.opcode_of.get(addr as usize).map_or_else(
            || "<unknown>".to_string(),
            |&op| format!("{:?}", OPCODES[op as usize]),
        )
    }

    /// Lays out the buffered sub-events and the instruction slice for one
    /// retire occupying `[clock, clock + cycles)`.
    fn retire(&mut self, addr: u32, tier: telemetry::Tier, cycles: u64) {
        let ts = self.clock;
        // Procedure frame transitions happen at the instruction's start.
        let region = self.map.region_of(addr);
        let before: Vec<usize> = self.stack.frames().to_vec();
        let step = self.stack.step(region);
        for i in 0..step.pops {
            // Innermost frames pop first; a pop of a cap-suppressed `B`
            // consumes the suppression instead of emitting an orphan `E`.
            if self.suppressed > 0 {
                self.suppressed -= 1;
                self.dropped += 1;
                continue;
            }
            let name = self.map.name(before[before.len() - 1 - i]).to_string();
            let ev = self.begin_end(&name, "E", ts);
            // `E` events for retained `B`s bypass the cap: an unbalanced
            // pair would corrupt the nesting of everything retained.
            self.events.push(ev);
        }
        if step.pushed {
            if self.events.len() >= self.max_events {
                self.dropped += 1;
                self.suppressed += 1;
            } else {
                let name = self.map.name(region).to_string();
                let ev = self.begin_end(&name, "B", ts);
                self.events.push(ev);
            }
        }

        // The instruction slice.
        let args = Json::obj([
            ("addr", Json::from(addr)),
            ("tier", Json::from(tier.label())),
        ]);
        let slice = self.duration(self.opcode_name(addr), "instr", ts, cycles, args);
        self.push(slice);

        // Children laid out sequentially from the slice start; instants
        // and counter samples at the slice start.
        let mut child_ts = ts;
        let pending = std::mem::take(&mut self.pending);
        for p in pending {
            match p {
                Pending::Translate {
                    addr,
                    decode_cycles,
                    generate_cycles,
                } => {
                    let dur = decode_cycles + generate_cycles;
                    let args = Json::obj([
                        ("addr", Json::from(addr)),
                        ("decode_cycles", Json::from(decode_cycles)),
                        ("generate_cycles", Json::from(generate_cycles)),
                    ]);
                    let ev =
                        self.duration("translate".to_string(), "translate", child_ts, dur, args);
                    self.push(ev);
                    child_ts += dur;
                }
                Pending::Routine { id, words } => {
                    let args = Json::obj([("routine", Json::from(i64::from(id)))]);
                    let ev = self.duration(
                        format!("routine:{id}"),
                        "semantic",
                        child_ts,
                        u64::from(words),
                        args,
                    );
                    self.push(ev);
                    child_ts += u64::from(words);
                }
                Pending::Instant { name, addr, detail } => {
                    let mut pairs = vec![
                        ("name".to_string(), Json::from(name)),
                        ("cat".to_string(), Json::from("event")),
                        ("ph".to_string(), Json::from("i")),
                        ("ts".to_string(), Json::from(ts)),
                        ("pid".to_string(), Json::from(self.pid)),
                        ("tid".to_string(), Json::from(self.tid)),
                        ("s".to_string(), Json::from("t")),
                    ];
                    let mut args = vec![("addr".to_string(), Json::from(addr))];
                    if let Some(d) = detail {
                        args.push(("kind".to_string(), Json::from(d)));
                    }
                    pairs.push(("args".to_string(), Json::Obj(args)));
                    self.push(Json::Obj(pairs));
                }
                Pending::Occupancy(occ) => {
                    let ev = Json::Obj(vec![
                        ("name".into(), Json::from("dtb_occupancy")),
                        ("cat".into(), Json::from("dtb")),
                        ("ph".into(), Json::from("C")),
                        ("ts".into(), Json::from(ts)),
                        ("pid".into(), Json::from(self.pid)),
                        ("tid".into(), Json::from(self.tid)),
                        ("args".into(), Json::obj([("resident", Json::from(occ))])),
                    ]);
                    self.push(ev);
                }
            }
        }
        self.clock += cycles;
    }

    /// Closes open procedure spans and renders the trace as a Chrome
    /// trace_event JSON document (`{"traceEvents": [...]}`, loadable in
    /// Perfetto). Consumes the tracer.
    pub fn finish(mut self) -> String {
        self.to_json().render()
    }

    /// The trace document as a JSON value, closing any open spans.
    pub fn to_json(&mut self) -> Json {
        let ts = self.clock;
        let frames: Vec<usize> = self.stack.frames().to_vec();
        self.stack.unwind();
        // The innermost `suppressed` frames have no retained `B`: skip
        // them, then close the rest. Closing events bypass the cap —
        // unbalanced B/E pairs would corrupt everything retained.
        for &region in frames.iter().rev().skip(self.suppressed) {
            let name = self.map.name(region).to_string();
            let ev = self.begin_end(&name, "E", ts);
            self.events.push(ev);
        }
        self.suppressed = 0;
        Json::obj([
            ("traceEvents", Json::Arr(self.events.clone())),
            ("displayTimeUnit", Json::from("ns")),
            (
                "otherData",
                Json::obj([
                    ("clock", Json::from("modeled-cycles")),
                    ("cycle_ts", Json::from("1us")),
                    ("dropped_events", Json::from(self.dropped)),
                ]),
            ),
        ])
    }
}

impl TraceSink for SpanTracer {
    // Tracing must not flip on the shadow miss classifier: a traced
    // run's modeled metrics stay bit-identical to an untraced run.
    const CLASSIFY_MISSES: bool = false;

    fn emit(&mut self, event: Event) {
        match event {
            Event::Retire { addr, tier, cycles } => {
                self.retire(addr, tier, u64::from(cycles));
            }
            Event::Translate {
                addr,
                decode_cycles,
                generate_cycles,
            } => self.pending.push(Pending::Translate {
                addr,
                decode_cycles,
                generate_cycles,
            }),
            Event::RoutineExit { id, words } => {
                self.pending.push(Pending::Routine { id, words });
            }
            Event::DtbMiss { addr, kind } => self.pending.push(Pending::Instant {
                name: "dtb_miss",
                addr,
                detail: Some(kind.label()),
            }),
            Event::Evict { victim, .. } => self.pending.push(Pending::Instant {
                name: "dtb_evict",
                addr: victim,
                detail: None,
            }),
            Event::FaultInjected { kind, addr } => self.pending.push(Pending::Instant {
                name: "fault_injected",
                addr,
                detail: Some(kind.label()),
            }),
            Event::Degraded { addr } => self.pending.push(Pending::Instant {
                name: "degraded",
                addr,
                detail: None,
            }),
            Event::DtbFill { occupancy, .. } => {
                self.pending.push(Pending::Occupancy(occupancy));
            }
            // High-frequency micro-events (hits, fetches, per-inst
            // decodes, routine entries, promotions) are deliberately not
            // materialized as spans — the retire slice carries their cost.
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dir::encode::SchemeKind;
    use uhm::{DtbConfig, Machine, Mode};

    const CALLS: &str = "proc helper(int n) -> int begin return n * 2; end
        proc main() begin
            int i; int s := 0;
            for i := 0 to 19 do s := s + helper(i);
            write s;
        end";

    fn traced(src: &str, mode: &Mode) -> (Json, uhm::Report) {
        let program = dir::compiler::compile(&hlr::compile(src).unwrap());
        let machine = Machine::new(&program, SchemeKind::Packed);
        let mut tracer = SpanTracer::new(&program);
        let report = machine.run_with(mode, &mut tracer).unwrap();
        (tracer.to_json(), report)
    }

    fn events(doc: &Json) -> &[Json] {
        doc.get("traceEvents").and_then(Json::as_arr).unwrap()
    }

    #[test]
    fn clock_advances_by_exactly_the_modeled_cycles() {
        let program = dir::compiler::compile(&hlr::compile(CALLS).unwrap());
        let machine = Machine::new(&program, SchemeKind::Packed);
        let mut tracer = SpanTracer::new(&program);
        let report = machine
            .run_with(&Mode::Dtb(DtbConfig::with_capacity(16)), &mut tracer)
            .unwrap();
        assert_eq!(tracer.clock(), report.metrics.cycles.total());
    }

    #[test]
    fn instruction_slices_cover_the_run() {
        let (doc, report) = traced(CALLS, &Mode::Interpreter);
        let slices: Vec<&Json> = events(&doc)
            .iter()
            .filter(|e| {
                e.get("ph").and_then(Json::as_str) == Some("X")
                    && e.get("cat").and_then(Json::as_str) == Some("instr")
            })
            .collect();
        assert_eq!(slices.len() as u64, report.metrics.instructions);
        let dur_sum: i64 = slices
            .iter()
            .map(|e| e.get("dur").and_then(Json::as_i64).unwrap())
            .sum();
        assert_eq!(dur_sum as u64, report.metrics.cycles.total());
    }

    #[test]
    fn begin_and_end_events_balance_per_name() {
        let (doc, _) = traced(CALLS, &Mode::Interpreter);
        let mut depth = std::collections::HashMap::new();
        for e in events(&doc) {
            match e.get("ph").and_then(Json::as_str) {
                Some("B") => {
                    *depth
                        .entry(e.get("name").and_then(Json::as_str).unwrap().to_string())
                        .or_insert(0i64) += 1;
                }
                Some("E") => {
                    *depth
                        .entry(e.get("name").and_then(Json::as_str).unwrap().to_string())
                        .or_insert(0i64) -= 1;
                }
                _ => {}
            }
        }
        assert!(!depth.is_empty(), "no proc spans at all");
        assert!(depth.contains_key("helper"));
        for (name, d) in depth {
            assert_eq!(d, 0, "unbalanced B/E for {name}");
        }
    }

    #[test]
    fn dtb_mode_adds_translate_and_counter_tracks() {
        let (doc, _) = traced(CALLS, &Mode::Dtb(DtbConfig::with_capacity(8)));
        let evs = events(&doc);
        assert!(evs
            .iter()
            .any(|e| e.get("name").and_then(Json::as_str) == Some("translate")));
        assert!(evs
            .iter()
            .any(|e| e.get("ph").and_then(Json::as_str) == Some("C")));
        // Timestamps are monotone non-decreasing (events are laid out in
        // retire order).
        let mut last = 0i64;
        for e in evs {
            if let Some(ts) = e.get("ts").and_then(Json::as_i64) {
                assert!(ts >= last, "ts went backwards: {ts} < {last}");
                last = ts;
            }
        }
    }

    #[test]
    fn event_cap_drops_but_keeps_document_well_formed() {
        let program = dir::compiler::compile(&hlr::compile(CALLS).unwrap());
        let machine = Machine::new(&program, SchemeKind::Packed);
        let mut tracer = SpanTracer::new(&program);
        tracer.set_max_events(32);
        machine.run_with(&Mode::Interpreter, &mut tracer).unwrap();
        assert!(tracer.dropped() > 0);
        let doc = tracer.to_json();
        assert_eq!(
            doc.get("otherData")
                .and_then(|o| o.get("dropped_events"))
                .and_then(Json::as_i64)
                .map(|d| d > 0),
            Some(true)
        );
        // Still parseable, still an object with the traceEvents array.
        let text = doc.render();
        let back = Json::parse(&text).unwrap();
        assert!(back.get("traceEvents").and_then(Json::as_arr).is_some());
    }

    #[test]
    fn tracks_are_settable_for_pool_tenants() {
        let program = dir::compiler::compile(&hlr::compile(CALLS).unwrap());
        let machine = Machine::new(&program, SchemeKind::Packed);
        let mut tracer = SpanTracer::new(&program);
        tracer.set_track(7, 3);
        machine.run_with(&Mode::Interpreter, &mut tracer).unwrap();
        let doc = tracer.to_json();
        for e in events(&doc) {
            assert_eq!(e.get("pid").and_then(Json::as_i64), Some(7));
            assert_eq!(e.get("tid").and_then(Json::as_i64), Some(3));
        }
    }
}
