//! Execution metrics: cycle breakdown and the measured Section 7
//! parameters.

use crate::dtb::DtbStats;
use crate::fault::FaultStats;
use memsim::CacheStats;

/// Cycles spent per activity, in level-1 cycles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleBreakdown {
    /// DIR fetches from level-2 memory (`s2 · t2` terms).
    pub fetch_l2: u64,
    /// Short-word fetches from the DTB buffer (`s1 · τ_D` term).
    pub fetch_dtb: u64,
    /// Word fetches through the baseline instruction cache.
    pub fetch_cache: u64,
    /// DTB associative-array lookups (one `τ_D` per INTERP).
    pub lookup: u64,
    /// Second-level translation-store lookups (two-level DTB only).
    pub lookup2: u64,
    /// Promotion traffic: copying translations from the second-level store
    /// into the first-level DTB (two-level DTB only).
    pub promote: u64,
    /// Decoding DIR instructions (`d`).
    pub decode: u64,
    /// Generating PSDER translations (`g`, generation part).
    pub generate: u64,
    /// Storing translations into the buffer array (`g`, store part).
    pub store: u64,
    /// IU2 steering execution in non-DTB modes (interpreter dispatch).
    pub steering: u64,
    /// Semantic-routine micro-words (`x`).
    pub semantic: u64,
}

impl CycleBreakdown {
    /// Cycles accumulated since `base` (field-wise difference). `base`
    /// must be an earlier snapshot of the same run.
    pub fn since(&self, base: &CycleBreakdown) -> CycleBreakdown {
        CycleBreakdown {
            fetch_l2: self.fetch_l2 - base.fetch_l2,
            fetch_dtb: self.fetch_dtb - base.fetch_dtb,
            fetch_cache: self.fetch_cache - base.fetch_cache,
            lookup: self.lookup - base.lookup,
            lookup2: self.lookup2 - base.lookup2,
            promote: self.promote - base.promote,
            decode: self.decode - base.decode,
            generate: self.generate - base.generate,
            store: self.store - base.store,
            steering: self.steering - base.steering,
            semantic: self.semantic - base.semantic,
        }
    }

    /// Total cycles.
    pub fn total(&self) -> u64 {
        self.fetch_l2
            + self.fetch_dtb
            + self.fetch_cache
            + self.lookup
            + self.lookup2
            + self.promote
            + self.decode
            + self.generate
            + self.store
            + self.steering
            + self.semantic
    }
}

/// Full metrics of a machine run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    /// Dynamic DIR instruction count `N`.
    pub instructions: u64,
    /// Cycle breakdown.
    pub cycles: CycleBreakdown,
    /// DIR instructions that were actually fetched-and-decoded (every one
    /// in T1/T3; only misses in T2).
    pub decoded: u64,
    /// Level-2 words fetched for DIR instructions.
    pub l2_words: u64,
    /// Short words executed (from the DTB in T2; inline in T1/T3).
    pub short_words: u64,
    /// Semantic-routine micro-words executed.
    pub routine_words: u64,
    /// DTB statistics (T2 and two-level modes).
    pub dtb: Option<DtbStats>,
    /// Second-level translation-store statistics (two-level mode only).
    pub dtb2: Option<DtbStats>,
    /// Instruction-cache statistics (T3 only).
    pub icache: Option<CacheStats>,
    /// Integrity-check failures recovered by invalidate-and-retranslate
    /// (fault plane only).
    pub recoveries: u64,
    /// Dynamic instructions executed in degraded pure-interpretation
    /// mode after repeated failures at their DIR address.
    pub degraded_instructions: u64,
    /// Level-2 fetches retried after a dropped fetch.
    pub fetch_retries: u64,
    /// Fault-injection totals, when a fault plane was attached.
    pub faults: Option<FaultStats>,
    /// Dynamic DIR address trace, when requested.
    pub trace: Option<Vec<u32>>,
    /// Per-window time-series samples, when requested (see
    /// [`Machine::set_window`](crate::Machine::set_window)).
    pub windows: Option<Vec<crate::window::WindowSample>>,
}

impl Metrics {
    /// Average interpretation time per DIR instruction, in level-1 cycles —
    /// the paper's `T`.
    pub fn time_per_instruction(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles.total() as f64 / self.instructions as f64
        }
    }

    /// Measured mean decode cost per *decoded* instruction (`d`).
    pub fn mean_decode(&self) -> f64 {
        if self.decoded == 0 {
            0.0
        } else {
            self.cycles.decode as f64 / self.decoded as f64
        }
    }

    /// Measured mean generate+store cost per decoded instruction (`g`).
    pub fn mean_generate(&self) -> f64 {
        if self.decoded == 0 {
            0.0
        } else {
            (self.cycles.generate + self.cycles.store) as f64 / self.decoded as f64
        }
    }

    /// Measured mean semantic time per DIR instruction (`x`).
    pub fn mean_semantic(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles.semantic as f64 / self.instructions as f64
        }
    }

    /// Measured mean short words per DIR instruction (`s1`).
    pub fn mean_s1(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.short_words as f64 / self.instructions as f64
        }
    }

    /// Cycles during which IU1 (the long-format unit) owns the control
    /// word: semantic routines, decoding, translation generation and
    /// interpreter steering — Figure 3's "instruction unit 1".
    pub fn iu1_cycles(&self) -> u64 {
        self.cycles.decode
            + self.cycles.generate
            + self.cycles.store
            + self.cycles.steering
            + self.cycles.semantic
    }

    /// Cycles during which IU2 (the short-format unit) owns the control
    /// word: DTB lookups and short-word fetches from the buffer array.
    pub fn iu2_cycles(&self) -> u64 {
        self.cycles.lookup + self.cycles.lookup2 + self.cycles.fetch_dtb
    }

    /// Cycles stalled on memory traffic outside either instruction unit:
    /// level-2 fetches, i-cache fetches and two-level promotion copies.
    pub fn memory_cycles(&self) -> u64 {
        self.cycles.fetch_l2 + self.cycles.fetch_cache + self.cycles.promote
    }

    /// Measured mean level-2 words per decoded DIR instruction (`s2`).
    pub fn mean_s2(&self) -> f64 {
        if self.decoded == 0 {
            0.0
        } else {
            self.l2_words as f64 / self.decoded as f64
        }
    }
}

/// Output plus metrics of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// The program's output (identical across machine modes).
    pub output: Vec<i64>,
    /// The run's metrics.
    pub metrics: Metrics,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_totals() {
        let b = CycleBreakdown {
            fetch_l2: 10,
            fetch_dtb: 5,
            fetch_cache: 0,
            lookup: 3,
            lookup2: 2,
            promote: 4,
            decode: 7,
            generate: 2,
            store: 1,
            steering: 4,
            semantic: 8,
        };
        assert_eq!(b.total(), 46);
    }

    #[test]
    fn derived_means_guard_division_by_zero() {
        let m = Metrics::default();
        assert_eq!(m.time_per_instruction(), 0.0);
        assert_eq!(m.mean_decode(), 0.0);
        assert_eq!(m.mean_s1(), 0.0);
    }

    #[test]
    fn iu_partition_covers_all_cycles() {
        let b = CycleBreakdown {
            fetch_l2: 1,
            fetch_dtb: 2,
            fetch_cache: 4,
            lookup: 8,
            lookup2: 16,
            promote: 32,
            decode: 64,
            generate: 128,
            store: 256,
            steering: 512,
            semantic: 1024,
        };
        let m = Metrics {
            cycles: b,
            ..Metrics::default()
        };
        assert_eq!(
            m.iu1_cycles() + m.iu2_cycles() + m.memory_cycles(),
            b.total()
        );
    }

    #[test]
    fn derived_means_compute() {
        let m = Metrics {
            instructions: 10,
            decoded: 5,
            l2_words: 10,
            short_words: 25,
            cycles: CycleBreakdown {
                decode: 50,
                semantic: 30,
                generate: 8,
                store: 2,
                ..CycleBreakdown::default()
            },
            ..Metrics::default()
        };
        assert_eq!(m.mean_decode(), 10.0);
        assert_eq!(m.mean_generate(), 2.0);
        assert_eq!(m.mean_semantic(), 3.0);
        assert_eq!(m.mean_s1(), 2.5);
        assert_eq!(m.mean_s2(), 2.0);
    }
}
