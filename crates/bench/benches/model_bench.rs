//! Benchmark of the analytic model grid (Tables 2/3) and of the
//! working-set analytics used by the locality experiments.

use std::hint::black_box;
use uhm::model::{grid, printed};
use uhm_bench::timing::Harness;

fn main() {
    let mut h = Harness::new("model_bench");

    h.bench("model_grid_f1_f2", || {
        black_box(grid(printed::f1));
        black_box(grid(printed::f2));
    });

    let trace: Vec<u64> = (0..100_000u64).map(|i| (i * 31 + i % 17) % 509).collect();
    h.bench("lru_hit_ratios_100k", || {
        black_box(memsim::workset::lru_hit_ratios(&trace, &[16, 64, 256]))
    });
    h.bench("working_set_100k", || {
        black_box(memsim::workset::working_set_size(&trace, 1000))
    });

    h.finish();
}
