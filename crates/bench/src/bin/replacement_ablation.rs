//! **Replacement-policy ablation (§5.2):** the paper's replacement array
//! implements true LRU ("the one selected for replacement is that which
//! was used least recently"). This experiment quantifies what the recency
//! tracking buys over FIFO and random replacement at several DTB
//! capacities.
//!
//! Run with `cargo run -p uhm-bench --bin replacement_ablation --release`.

use dir::encode::SchemeKind;
use memsim::Geometry;
use psder::MAX_TRANSLATION_WORDS;
use uhm::{Allocation, DtbConfig, Machine, Mode, Replacement};
use uhm_bench::workloads;

fn config(capacity: usize, replacement: Replacement) -> DtbConfig {
    DtbConfig {
        geometry: Geometry::new((capacity / 4).max(1), 4),
        unit_words: MAX_TRANSLATION_WORDS,
        allocation: Allocation::Fixed,
        replacement,
    }
}

fn main() {
    let policies = [
        ("lru", Replacement::Lru),
        ("fifo", Replacement::Fifo),
        ("random", Replacement::Random { seed: 0x5EED }),
    ];
    println!("Replacement-policy ablation (degree-4 sets, PairHuffman static DIR)\n");
    for capacity in [16usize, 32, 64] {
        println!("== {capacity}-entry DTB: hit ratio h_D ==");
        println!(
            "{:>14} | {:>8} {:>8} {:>8}",
            "workload", "lru", "fifo", "random"
        );
        println!("{}", "-".repeat(45));
        let mut sums = [0.0f64; 3];
        let mut n = 0;
        for w in workloads() {
            let machine = Machine::new(&w.base, SchemeKind::PairHuffman);
            let mut cells = Vec::new();
            for (i, (_, policy)) in policies.iter().enumerate() {
                let r = machine
                    .run(&Mode::Dtb(config(capacity, *policy)))
                    .expect("samples are trap-free");
                let h = r.metrics.dtb.unwrap().hit_ratio();
                sums[i] += h;
                cells.push(format!("{h:>8.4}"));
            }
            n += 1;
            println!("{:>14} | {}", w.name, cells.join(" "));
        }
        println!("{}", "-".repeat(45));
        println!(
            "{:>14} | {:>8.4} {:>8.4} {:>8.4}\n",
            "mean",
            sums[0] / n as f64,
            sums[1] / n as f64,
            sums[2] / n as f64
        );
    }
    println!("Reading: the policies are close when the working set fits (all ≈ 1) or");
    println!("drowns the buffer (all ≈ 0); LRU's recency tracking earns its keep in");
    println!("the transition region — and random occasionally beats both on cyclic");
    println!("reference patterns where deterministic policies thrash in lock-step.");
}
