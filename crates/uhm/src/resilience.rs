//! Resilience policies for supervised pool execution.
//!
//! The pool ([`crate::pool::MachinePool`]) isolates tenant panics, but
//! isolation alone does not make a shared host survivable: a hung tenant
//! holds a worker forever, a repeatedly faulting image wastes retries for
//! every caller, and an oversized queue turns one slow tenant into
//! pool-wide latency. This module holds the *policies* of the supervision
//! layer — all pure data and pure functions so they can be property-tested
//! without a pool:
//!
//! - [`BackoffPolicy`] — the supervised-retry policy: seeded, jittered
//!   exponential backoff with a hard attempt cap. (Distinct from
//!   [`crate::config::RetryPolicy`], which governs *in-run* fault-plane
//!   recovery inside one machine; this one governs whole-run re-execution
//!   by the pool.)
//! - [`BreakerPolicy`] / [`Breaker`] — a per-image circuit breaker that
//!   first degrades a repeat offender to pure interpretation (cheap, no
//!   shared translation artifacts to corrupt) and then quarantines it.
//! - [`AdmissionPolicy`] — admission control from the static DTB pressure
//!   bounds of `uhm-analyze`: reject oversized programs up front, or
//!   right-size their DTB to the recommended geometry.
//! - [`Supervisor`] — the bundle of budget + retry + breaker + admission
//!   + queue watermark the pool consults.
//! - [`ChaosConfig`] — pool-level fault injection (worker crashes, hung
//!   tenants, shared-artifact corruption), rolled statelessly per tenant
//!   so outcomes are schedule-invariant.
//!
//! Everything here is deterministic given its seeds. Wall-clock only
//! enters through [`crate::config::Budget::deadline_ns`], and nothing
//! deterministic keys off it.

use hlr::rng::Rng;

use crate::config::Budget;

/// Ceiling applied to a jittered delay: nominal cap plus the jitter
/// allowance, so `schedule` can promise a hard upper bound.
fn jitter_cap(cap_ns: u64, jitter_percent: u64) -> u64 {
    cap_ns.saturating_add(cap_ns / 100 * jitter_percent)
}

/// Supervised-retry policy: how many times the pool re-runs a tenant
/// whose failure looks transient, and how long it backs off between
/// attempts.
///
/// Delays follow seeded, jittered exponential backoff: attempt `i`
/// nominally waits `min(cap_ns, base_ns << i)`, plus up to
/// `jitter_percent`% additive jitter drawn from a [`Rng`] keyed by
/// `seed ^ key`, clamped so the whole schedule is monotonically
/// non-decreasing. Backoff *cost* is charged to the tenant's recorded
/// latency; the pool does not actually sleep, so campaigns stay fast and
/// deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Total attempts including the first (so `1` disables retry).
    /// Clamped to at least 1.
    pub max_attempts: u32,
    /// Nominal delay before the first retry, in nanoseconds.
    pub base_ns: u64,
    /// Ceiling on the nominal delay; jitter may exceed it by at most
    /// `jitter_percent`%.
    pub cap_ns: u64,
    /// Additive jitter bound as a percentage of the nominal delay
    /// (0 = deterministic schedule).
    pub jitter_percent: u64,
    /// Seed decorrelating jitter streams; combined with the per-tenant
    /// key so two tenants never share a schedule.
    pub seed: u64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            max_attempts: 3,
            base_ns: 1_000_000,  // 1 ms
            cap_ns: 100_000_000, // 100 ms
            jitter_percent: 20,
            seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

impl BackoffPolicy {
    /// Total attempts, clamped to at least one.
    pub fn attempts(&self) -> u32 {
        self.max_attempts.max(1)
    }

    /// The full backoff schedule for one tenant: the delay in
    /// nanoseconds before each retry, so its length is `attempts() - 1`
    /// (a policy of one attempt never waits).
    ///
    /// Guarantees, property-tested in `tests/resilience_plane.rs`:
    /// the schedule is monotonically non-decreasing, every delay is at
    /// most `cap_ns` plus the jitter allowance, and the schedule always
    /// terminates within the attempt cap.
    pub fn schedule(&self, key: u64) -> Vec<u64> {
        let mut rng = Rng::new(self.seed ^ key);
        let mut delays = Vec::with_capacity(self.attempts() as usize - 1);
        let mut prev = 0u64;
        for i in 0..self.attempts() - 1 {
            let nominal = self
                .base_ns
                .checked_shl(i)
                .unwrap_or(u64::MAX)
                .min(self.cap_ns);
            let jitter = if self.jitter_percent == 0 || nominal == 0 {
                0
            } else {
                rng.range_u64(0, nominal / 100 * self.jitter_percent + 1)
            };
            let delay = nominal
                .saturating_add(jitter)
                .min(jitter_cap(self.cap_ns, self.jitter_percent))
                .max(prev);
            delays.push(delay);
            prev = delay;
        }
        delays
    }
}

/// Per-image circuit-breaker thresholds.
///
/// The breaker counts *consecutive* non-completed outcomes of one image
/// (one `Arc<Machine>`, however many tenants share it). At
/// `degrade_after` failures the image is degraded to pure interpretation
/// — the cheapest mode, with no translation artifacts left to corrupt —
/// and at `quarantine_after` it is quarantined: not run at all, the
/// tenant reported as [`TenantOutcome::Quarantined`]. A completed run
/// closes the breaker again.
///
/// [`TenantOutcome::Quarantined`]: crate::pool::TenantOutcome::Quarantined
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerPolicy {
    /// Consecutive failures before the image degrades to
    /// [`Mode::Interpreter`](crate::machine::Mode). Clamped to at least 1.
    pub degrade_after: u32,
    /// Consecutive failures before the image is quarantined. Clamped to
    /// at least `degrade_after`.
    pub quarantine_after: u32,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        BreakerPolicy {
            degrade_after: 2,
            quarantine_after: 4,
        }
    }
}

impl BreakerPolicy {
    fn degrade_at(&self) -> u32 {
        self.degrade_after.max(1)
    }

    fn quarantine_at(&self) -> u32 {
        self.quarantine_after.max(self.degrade_at())
    }
}

/// Where one image's circuit breaker stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BreakerState {
    /// Healthy: run in the tenant's requested mode.
    #[default]
    Closed,
    /// Degraded: run, but force pure interpretation.
    Degraded,
    /// Quarantined: do not run at all.
    Quarantined,
}

/// Consecutive-failure counter plus [`BreakerState`] for one image.
#[derive(Debug, Clone, Copy, Default)]
pub struct Breaker {
    failures: u32,
    state: BreakerState,
}

impl Breaker {
    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Consecutive failures recorded since the last success.
    pub fn failures(&self) -> u32 {
        self.failures
    }

    /// Records a non-completed final outcome, advancing
    /// Closed → Degraded → Quarantined against `policy`.
    pub fn record_failure(&mut self, policy: &BreakerPolicy) {
        self.failures = self.failures.saturating_add(1);
        self.state = if self.failures >= policy.quarantine_at() {
            BreakerState::Quarantined
        } else if self.failures >= policy.degrade_at() {
            BreakerState::Degraded
        } else {
            BreakerState::Closed
        };
    }

    /// Records a completed run: the breaker closes and the failure
    /// count resets.
    pub fn record_success(&mut self) {
        self.failures = 0;
        self.state = BreakerState::Closed;
    }
}

/// Admission control from static analysis: before a tenant runs, the
/// pool computes its DTB pressure bound
/// ([`analyze::bound`]) and either rejects it, admits it
/// as-is, or right-sizes its DTB.
///
/// The same policy gates the service plane
/// ([`crate::service::ServiceConfig::admission`]), where it fires
/// before a request enters any queue — rejection there is *static*
/// (`admission:` reasons), in contrast to the *dynamic* quota and
/// watermark shedding decided at arrival time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionPolicy {
    /// Reject programs whose whole-program translation storage bound
    /// exceeds this many short words ([`TenantOutcome::Shed`] with an
    /// `admission:` reason). `None` = admit any size.
    ///
    /// [`TenantOutcome::Shed`]: crate::pool::TenantOutcome::Shed
    pub max_pressure_words: Option<u64>,
    /// When the hot span does not fit the tenant's DTB, grow the DTB to
    /// the recommended geometry instead of letting it thrash.
    pub right_size: bool,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy {
            max_pressure_words: None,
            right_size: true,
        }
    }
}

/// The supervision configuration a pool run consults: budget, retry,
/// breaker, admission, and the queue watermark for load shedding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Supervisor {
    /// Per-tenant execution budget (fuel and/or deadline). Applied to
    /// every attempt; an unlimited budget never preempts.
    pub budget: Budget,
    /// Supervised-retry policy for transient failures.
    pub backoff: BackoffPolicy,
    /// Per-image circuit-breaker thresholds.
    pub breaker: BreakerPolicy,
    /// Admission control from static DTB pressure bounds.
    pub admission: AdmissionPolicy,
    /// Load-shedding watermark: tenants queued beyond this depth are
    /// shed up front ([`TenantOutcome::Shed`]). `None` = never shed.
    ///
    /// [`TenantOutcome::Shed`]: crate::pool::TenantOutcome::Shed
    pub max_queue: Option<usize>,
}

impl Default for Supervisor {
    fn default() -> Self {
        Supervisor {
            budget: Budget::unlimited(),
            backoff: BackoffPolicy::default(),
            breaker: BreakerPolicy::default(),
            admission: AdmissionPolicy::default(),
            max_queue: None,
        }
    }
}

/// Salt decorrelating worker-crash rolls from the other chaos streams.
const CRASH_SALT: u64 = 0x63726173_68000001;
/// Salt decorrelating hung-tenant rolls.
const HANG_SALT: u64 = 0x68616e67_00000002;
/// Salt decorrelating shared-artifact-corruption rolls.
const CORRUPT_SALT: u64 = 0x636f7272_00000003;

/// Pool-level chaos: which tenants get a worker crash, a hang, or
/// corrupted shared translation artifacts injected.
///
/// Each kind of havoc is rolled *statelessly* per tenant index —
/// `Rng::new(seed ^ tenant ^ SALT)` — so the set of injected faults is a
/// pure function of `(seed, tenant)` and identical under any schedule,
/// worker count, or stealing order. That is what lets the chaos campaign
/// compare outcome tables against a committed baseline bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Base seed of all three chaos streams.
    pub seed: u64,
    /// Probability that a tenant's worker crashes mid-tenant (the panic
    /// escapes the tenant's isolation boundary).
    pub worker_crash_rate: f64,
    /// Probability that a tenant hangs on its first attempt (an infinite
    /// loop is swapped in; only a budget can preempt it).
    pub hang_rate: f64,
    /// Probability that a tenant's first attempt sees corrupted shared
    /// translation artifacts (every template truncated, so dispatch
    /// traps as malformed).
    pub artifact_corruption_rate: f64,
}

impl ChaosConfig {
    /// A quiet configuration: a seed, no injections.
    pub fn quiet(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            worker_crash_rate: 0.0,
            hang_rate: 0.0,
            artifact_corruption_rate: 0.0,
        }
    }

    fn roll(&self, tenant: usize, salt: u64, rate: f64) -> bool {
        rate > 0.0 && Rng::new(self.seed ^ tenant as u64 ^ salt).bool_with(rate)
    }

    /// Whether the worker running `tenant` crashes.
    pub fn crashes_worker(&self, tenant: usize) -> bool {
        self.roll(tenant, CRASH_SALT, self.worker_crash_rate)
    }

    /// Whether `tenant` hangs on its first attempt.
    pub fn hangs(&self, tenant: usize) -> bool {
        self.roll(tenant, HANG_SALT, self.hang_rate)
    }

    /// Whether `tenant`'s first attempt sees corrupted shared artifacts.
    pub fn corrupts_artifacts(&self, tenant: usize) -> bool {
        self.roll(tenant, CORRUPT_SALT, self.artifact_corruption_rate)
    }

    /// Whether any injection is enabled at all.
    pub fn is_quiet(&self) -> bool {
        self.worker_crash_rate == 0.0
            && self.hang_rate == 0.0
            && self.artifact_corruption_rate == 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_has_cap_minus_one_delays() {
        let p = BackoffPolicy::default();
        assert_eq!(p.schedule(7).len(), p.attempts() as usize - 1);
        let one = BackoffPolicy {
            max_attempts: 1,
            ..BackoffPolicy::default()
        };
        assert!(one.schedule(7).is_empty());
        let zero = BackoffPolicy {
            max_attempts: 0,
            ..BackoffPolicy::default()
        };
        assert_eq!(zero.attempts(), 1, "attempt cap clamps to one");
    }

    #[test]
    fn backoff_without_jitter_is_pure_exponential() {
        let p = BackoffPolicy {
            max_attempts: 5,
            base_ns: 100,
            cap_ns: 500,
            jitter_percent: 0,
            seed: 1,
        };
        assert_eq!(p.schedule(0), vec![100, 200, 400, 500]);
    }

    #[test]
    fn backoff_is_deterministic_per_key_and_decorrelated_across_keys() {
        let p = BackoffPolicy::default();
        assert_eq!(p.schedule(3), p.schedule(3));
        assert_ne!(p.schedule(3), p.schedule(4), "keys decorrelate jitter");
    }

    #[test]
    fn breaker_walks_closed_degraded_quarantined_and_resets() {
        let policy = BreakerPolicy::default();
        let mut b = Breaker::default();
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure(&policy);
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure(&policy);
        assert_eq!(b.state(), BreakerState::Degraded);
        b.record_failure(&policy);
        b.record_failure(&policy);
        assert_eq!(b.state(), BreakerState::Quarantined);
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.failures(), 0);
    }

    #[test]
    fn degenerate_breaker_thresholds_clamp() {
        let policy = BreakerPolicy {
            degrade_after: 0,
            quarantine_after: 0,
        };
        let mut b = Breaker::default();
        b.record_failure(&policy);
        assert_eq!(
            b.state(),
            BreakerState::Quarantined,
            "zero thresholds clamp to 1, so the first failure quarantines"
        );
    }

    #[test]
    fn chaos_rolls_are_stateless_and_decorrelated() {
        let c = ChaosConfig {
            seed: 42,
            worker_crash_rate: 0.5,
            hang_rate: 0.5,
            artifact_corruption_rate: 0.5,
        };
        for t in 0..64 {
            assert_eq!(c.crashes_worker(t), c.crashes_worker(t));
            assert_eq!(c.hangs(t), c.hangs(t));
            assert_eq!(c.corrupts_artifacts(t), c.corrupts_artifacts(t));
        }
        // The three streams must not be the same coin: over 64 tenants
        // at p = 0.5 the odds of identical streams are ~2^-64.
        let crash: Vec<bool> = (0..64).map(|t| c.crashes_worker(t)).collect();
        let hang: Vec<bool> = (0..64).map(|t| c.hangs(t)).collect();
        let corrupt: Vec<bool> = (0..64).map(|t| c.corrupts_artifacts(t)).collect();
        assert_ne!(crash, hang);
        assert_ne!(hang, corrupt);
        assert!(ChaosConfig::quiet(42).is_quiet());
        assert!(!ChaosConfig::quiet(42).crashes_worker(0));
    }
}
