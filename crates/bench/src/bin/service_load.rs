//! **E21 — the service-plane load trajectory:** drive an open-loop
//! arrival-rate sweep through `uhm::service` over the shared workload
//! corpus and commit the resulting latency-under-load trajectory as an
//! exact baseline.
//!
//! Each step replays the same request mix (the core workloads, one
//! tenant lane per workload, DTB mode) at a stepped arrival rate —
//! requests per million modeled cycles — through a service with a
//! queue watermark and a per-tenant quota. Because arrivals, service
//! times, queueing and shedding all live on the modeled clock, every
//! step's p50/p95/p99/p99.9 and outcome table are bit-reproducible;
//! `--smoke` recomputes the trajectory and compares it against the
//! committed baseline (`baselines/service_load.json`) **exactly** — the
//! CI gate for the service plane. The SLOs asserted in every run:
//!
//! 1. **Zero lost requests** — every submitted request has exactly one
//!    recorded outcome in every step.
//! 2. **Full accounting** — the five outcome counts (completed /
//!    trapped / panicked / rejected / shed) sum to the request count.
//! 3. **Bounded p99** — each step's modeled p99 latency stays under an
//!    absolute ceiling (the committed baseline pins the exact value;
//!    the ceiling guards the sweep itself against runaway queueing).
//!
//! With `--json`, emits the schema-v6
//! [`ServiceReport`](telemetry::ServiceReport); with
//! `--baseline`, prints the baseline file's exact contents (how
//! `baselines/service_load.json` is regenerated after an intentional
//! change).
//!
//! Run with `cargo run -p uhm-bench --release --bin service_load`.

use std::process::ExitCode;
use std::sync::Arc;

use dir::encode::SchemeKind;
use telemetry::Json;
use uhm::service::{Service, ServiceConfig, ServiceRun};
use uhm::{DtbConfig, Machine, Mode};
use uhm_bench::{core_workloads, json_flag};

/// Seed of the arrival jitter streams and the pinned pool schedule.
const SEED: u64 = 0x5E41;
/// Dispatch width: simulated servers and host pool workers.
const WORKERS: usize = 4;
/// Requests per load step (the mix cycles through the core workloads).
const REQUESTS: usize = 60;
/// Backpressure watermark: total backlog above which arrivals shed.
const QUEUE_WATERMARK: usize = 24;
/// Per-tenant quota: one tenant's backlog cap.
const TENANT_QUOTA: usize = 10;
/// The stepped open-loop arrival rates, in requests per million modeled
/// cycles — spanning idle to well past saturation.
const RATES: [u64; 7] = [1, 2, 4, 8, 16, 32, 64];
/// Absolute per-step p99 ceiling on the modeled clock, in cycles.
const P99_BOUND_CYCLES: f64 = 2e8;

/// Builds the service under test: the core workloads (base tier, packed
/// scheme, frozen translations) behind one tenant lane per workload,
/// `REQUESTS` requests round-robin across them.
fn service() -> Service {
    let machines: Vec<(&'static str, Arc<Machine>)> = core_workloads()
        .iter()
        .map(|w| {
            let mut m = Machine::new(&w.base, SchemeKind::Packed);
            m.freeze_translations();
            (w.name, Arc::new(m))
        })
        .collect();
    let mut service = Service::new(ServiceConfig {
        workers: WORKERS,
        queue_watermark: Some(QUEUE_WATERMARK),
        tenant_quota: Some(TENANT_QUOTA),
        seed: SEED,
        ..ServiceConfig::default()
    });
    for i in 0..REQUESTS {
        let (name, machine) = &machines[i % machines.len()];
        service.submit(
            *name,
            format!("{name}-{i}"),
            Arc::clone(machine),
            Mode::Dtb(DtbConfig::with_capacity(64)),
        );
    }
    service
}

/// The deterministic trajectory table: the canonical per-step JSON with
/// the host-side observables stripped — exactly what the baseline
/// commits and `--smoke` compares.
fn trajectory(run: &ServiceRun) -> Json {
    Json::Arr(
        run.steps
            .iter()
            .map(|s| match uhm::report::step_json(s) {
                Json::Obj(pairs) => {
                    Json::Obj(pairs.into_iter().filter(|(k, _)| k != "host").collect())
                }
                other => other,
            })
            .collect(),
    )
}

fn config_json() -> Json {
    Json::obj(vec![
        ("seed", (SEED as i64).into()),
        ("workers", (WORKERS as i64).into()),
        ("requests_per_step", (REQUESTS as i64).into()),
        ("queue_watermark", (QUEUE_WATERMARK as i64).into()),
        ("tenant_quota", (TENANT_QUOTA as i64).into()),
        (
            "rates_per_mcycle",
            Json::Arr(RATES.iter().map(|&r| (r as i64).into()).collect()),
        ),
        ("p99_bound_cycles", P99_BOUND_CYCLES.into()),
        ("scheme", "packed".into()),
        ("mode", "dtb64".into()),
    ])
}

/// The three SLO verdicts over a finished sweep.
fn slo_json(run: &ServiceRun) -> Json {
    let statuses = ["completed", "trapped", "panicked", "rejected", "shed"];
    let full_accounting = run
        .steps
        .iter()
        .all(|s| statuses.iter().map(|x| s.outcome_count(x)).sum::<usize>() == s.results.len());
    let p99_bounded = run
        .steps
        .iter()
        .all(|s| s.latency_percentiles().p99 < P99_BOUND_CYCLES);
    Json::obj(vec![
        ("zero_lost_requests", Json::Bool(run.lost() == 0)),
        ("full_accounting", Json::Bool(full_accounting)),
        ("p99_bounded", Json::Bool(p99_bounded)),
    ])
}

fn slos_hold(run: &ServiceRun) -> bool {
    let slo = slo_json(run);
    ["zero_lost_requests", "full_accounting", "p99_bounded"]
        .iter()
        .all(|k| slo.get(k).and_then(Json::as_bool) == Some(true))
}

/// Committed reference trajectory; `--smoke` fails on any deviation.
const BASELINE: &str = include_str!("../../baselines/service_load.json");

/// The baseline file's contents for the current sweep (regenerate with
/// `--baseline` after an intentional policy or corpus change).
fn baseline_json(run: &ServiceRun) -> Json {
    Json::obj(vec![
        ("tool", "service_load".into()),
        ("config", config_json()),
        ("trajectory", trajectory(run)),
    ])
}

fn smoke() -> ExitCode {
    let run = service().run_load(&RATES);
    if !slos_hold(&run) {
        eprintln!("service smoke: SLO violated: {}", slo_json(&run).render());
        return ExitCode::FAILURE;
    }
    let got = trajectory(&run);
    let baseline = match Json::parse(BASELINE) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("service smoke: baseline unreadable: {e}");
            return ExitCode::FAILURE;
        }
    };
    let expected = baseline.get("trajectory").cloned().unwrap_or(Json::Null);
    if got != expected {
        eprintln!("service smoke: trajectory deviates from the committed baseline");
        eprintln!("  expected: {}", expected.render());
        eprintln!("  got:      {}", got.render());
        return ExitCode::FAILURE;
    }
    println!(
        "service smoke PASS: {} steps x {REQUESTS} requests, all SLOs held, \
         trajectory matches baseline",
        run.steps.len()
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    if std::env::args().any(|a| a == "--smoke") {
        return smoke();
    }
    let run = service().run_load(&RATES);
    if std::env::args().any(|a| a == "--baseline") {
        println!("{}", baseline_json(&run).render());
        return ExitCode::SUCCESS;
    }
    if json_flag() {
        let mut report = uhm::report::service_report("service_load", config_json(), &run);
        report.slo = Some(slo_json(&run));
        println!("{}", report.render());
        return ExitCode::SUCCESS;
    }
    println!(
        "Service load trajectory ({REQUESTS} requests/step, {WORKERS} workers, \
         watermark {QUEUE_WATERMARK}, quota {TENANT_QUOTA}, seed {SEED:#x})\n"
    );
    println!(
        "{:>5} {:>5} {:>5} {:>5} {:>5} {:>5} {:>11} {:>11} {:>11} {:>11}",
        "rate", "ok", "rej", "shed", "lost", "qpeak", "p50", "p95", "p99", "p99.9"
    );
    for s in &run.steps {
        let p = s.latency_percentiles();
        println!(
            "{:>5} {:>5} {:>5} {:>5} {:>5} {:>5} {:>11.0} {:>11.0} {:>11.0} {:>11.0}",
            s.rate_per_mcycle,
            s.outcome_count("completed"),
            s.outcome_count("rejected"),
            s.outcome_count("shed"),
            s.lost(),
            s.queue_peak,
            p.p50,
            p.p95,
            p.p99,
            p.p999
        );
    }
    println!("\nSLOs: {}", slo_json(&run).render());
    if slos_hold(&run) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
