//! The versioned, machine-readable run report.
//!
//! Every `--json` surface in the workspace — `raul run`, `raul profile`,
//! and each bench binary — emits exactly this shape, so results are
//! diffable across PRs and scriptable with `jq`. The schema is versioned:
//! consumers check `schema_version` and fail loudly on mismatch instead
//! of silently misreading renamed fields.
//!
//! Top-level shape (version 1):
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "tool": "raul run",
//!   "config": { ... },          // free-form: workload, mode, scheme, knobs
//!   "metrics": { ... },         // counters + cycle breakdown + dtb/icache stats
//!   "derived": { "T": .., "d": .., "g": .., "x": .., "s1": .., "s2": .. },
//!   "windows": [ ... ],         // optional per-N-instruction samples
//!   "output": [ ... ]           // optional program output
//! }
//! ```

use crate::json::Json;

/// Current schema version of [`RunReport`]. Bump on any
/// rename/removal/semantic change of an existing field; adding fields is
/// backward compatible and does not require a bump.
pub const SCHEMA_VERSION: i64 = 1;

/// One machine-readable run report.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// The emitting tool, e.g. `"raul run"` or `"dtb_sweep"`.
    pub tool: String,
    /// The configuration that produced the run (free-form object).
    pub config: Json,
    /// Measured counters (free-form object; `uhm` fills the canonical
    /// shape).
    pub metrics: Json,
    /// The derived §7 parameters (`T`, `d`, `g`, `x`, `s1`, `s2`).
    pub derived: Json,
    /// Optional per-window samples.
    pub windows: Option<Json>,
    /// Optional program output.
    pub output: Option<Json>,
}

impl RunReport {
    /// Creates a report with empty optional sections.
    pub fn new(tool: &str, config: Json, metrics: Json, derived: Json) -> RunReport {
        RunReport {
            tool: tool.to_string(),
            config,
            metrics,
            derived,
            windows: None,
            output: None,
        }
    }

    /// The report as a JSON value (with `schema_version` stamped in).
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("schema_version".to_string(), Json::Int(SCHEMA_VERSION)),
            ("tool".to_string(), Json::Str(self.tool.clone())),
            ("config".to_string(), self.config.clone()),
            ("metrics".to_string(), self.metrics.clone()),
            ("derived".to_string(), self.derived.clone()),
        ];
        if let Some(w) = &self.windows {
            pairs.push(("windows".to_string(), w.clone()));
        }
        if let Some(o) = &self.output {
            pairs.push(("output".to_string(), o.clone()));
        }
        Json::Obj(pairs)
    }

    /// Serializes to one compact JSON line.
    pub fn render(&self) -> String {
        self.to_json().render()
    }

    /// Reconstructs a report from a parsed JSON value.
    ///
    /// # Errors
    ///
    /// Fails when `schema_version` is missing or not [`SCHEMA_VERSION`],
    /// or a required section is absent.
    pub fn from_json(value: &Json) -> Result<RunReport, String> {
        let version = value
            .get("schema_version")
            .and_then(Json::as_i64)
            .ok_or("missing schema_version")?;
        if version != SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema_version {version} (expected {SCHEMA_VERSION})"
            ));
        }
        let tool = value
            .get("tool")
            .and_then(Json::as_str)
            .ok_or("missing tool")?
            .to_string();
        let section = |name: &str| -> Result<Json, String> {
            value
                .get(name)
                .cloned()
                .ok_or(format!("missing {name} section"))
        };
        Ok(RunReport {
            tool,
            config: section("config")?,
            metrics: section("metrics")?,
            derived: section("derived")?,
            windows: value.get("windows").cloned(),
            output: value.get("output").cloned(),
        })
    }

    /// Parses a report from JSON text.
    ///
    /// # Errors
    ///
    /// Propagates JSON syntax errors and schema violations.
    pub fn parse(text: &str) -> Result<RunReport, String> {
        RunReport::from_json(&Json::parse(text)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunReport {
        let mut r = RunReport::new(
            "raul run",
            Json::obj([
                ("workload", Json::from("sieve")),
                ("mode", Json::from("dtb")),
                ("dtb_entries", Json::from(64i64)),
            ]),
            Json::obj([
                ("instructions", Json::from(12345i64)),
                ("cycles_total", Json::from(99999i64)),
            ]),
            Json::obj([
                ("T", Json::from(8.1)),
                ("d", Json::from(12.0)),
                ("s1", Json::from(2.5)),
            ]),
        );
        r.windows = Some(Json::Arr(vec![Json::obj([
            ("start", Json::from(0i64)),
            ("hit_rate", Json::from(0.5)),
        ])]));
        r.output = Some(Json::Arr(vec![Json::Int(42)]));
        r
    }

    #[test]
    fn report_round_trips_through_text() {
        let r = sample();
        let text = r.render();
        let back = RunReport::parse(&text).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.to_json(), r.to_json());
    }

    #[test]
    fn schema_version_is_stamped_and_checked() {
        let r = sample();
        let j = r.to_json();
        assert_eq!(j.get("schema_version").and_then(Json::as_i64), Some(1));

        let mut wrong = j.clone();
        if let Json::Obj(pairs) = &mut wrong {
            pairs[0].1 = Json::Int(999);
        }
        let err = RunReport::from_json(&wrong).unwrap_err();
        assert!(err.contains("schema_version 999"), "{err}");
    }

    #[test]
    fn optional_sections_stay_optional() {
        let r = RunReport::new("t", Json::Obj(vec![]), Json::Obj(vec![]), Json::Obj(vec![]));
        let text = r.render();
        assert!(!text.contains("windows"));
        let back = RunReport::parse(&text).unwrap();
        assert_eq!(back.windows, None);
        assert_eq!(back.output, None);
    }

    #[test]
    fn missing_sections_are_rejected() {
        assert!(RunReport::parse("{\"schema_version\":1}").is_err());
        assert!(RunReport::parse("{}").is_err());
        assert!(RunReport::parse("not json").is_err());
    }
}
