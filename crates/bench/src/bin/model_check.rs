//! **Model validation:** the Section-7 analytic model, fed with parameters
//! *measured* from the simulator, must predict each machine's simulated
//! average interpretation time. This closes the loop the paper left open
//! ("the evaluation of F1 and F2 is hampered by the lack of suitable
//! statistics").
//!
//! Run with `cargo run -p uhm-bench --bin model_check --release`.
//! With `--json`, emits a versioned RunReport instead of the text table.

use dir::encode::SchemeKind;
use telemetry::Json;
use uhm::model::{ModeKind, Params};
use uhm::{CostModel, DtbConfig};
use uhm_bench::{bench_report, json_flag, run_three, workloads};

fn main() {
    let json = json_flag();
    if !json {
        println!("Analytic model vs cycle-accurate simulation (PairHuffman, 64-entry DTB)\n");
        println!(
            "{:>14} | {:>8} {:>8} {:>6} | {:>8} {:>8} {:>6} | {:>8} {:>8} {:>6}",
            "workload",
            "T1 sim",
            "T1 mod",
            "err%",
            "T2 sim",
            "T2 mod",
            "err%",
            "T3 sim",
            "T3 mod",
            "err%"
        );
        println!("{}", "-".repeat(98));
    }
    let costs = CostModel::default();
    let mut rows = Vec::new();
    let mut max_err: f64 = 0.0;
    for w in workloads() {
        let (interp, dtb, cache) = run_three(
            &w.base,
            SchemeKind::PairHuffman,
            DtbConfig::with_capacity(64),
        );
        let p = Params::from_reports(&costs, &interp, &dtb, &cache);
        let mut cells = Vec::new();
        let mut fields: Vec<(&'static str, Json)> = vec![("workload", w.name.into())];
        for (report, kind, label) in [
            (&interp, ModeKind::Interpreter, "t1"),
            (&dtb, ModeKind::Dtb, "t2"),
            (&cache, ModeKind::ICache, "t3"),
        ] {
            let sim = report.metrics.time_per_instruction();
            let model = p.predict(&kind);
            let err = 100.0 * (model - sim) / sim;
            max_err = max_err.max(err.abs());
            cells.push(format!("{sim:>8.2} {model:>8.2} {err:>6.2}"));
            fields.push((
                label,
                Json::obj(vec![
                    ("simulated", sim.into()),
                    ("modelled", model.into()),
                    ("error_percent", err.into()),
                ]),
            ));
        }
        if json {
            rows.push(Json::obj(fields));
        } else {
            println!("{:>14} | {}", w.name, cells.join(" | "));
        }
    }
    if json {
        let config = Json::obj(vec![
            ("scheme", "pair".into()),
            ("dtb_entries", 64u64.into()),
            ("max_abs_error_percent", max_err.into()),
        ]);
        println!("{}", bench_report("model_check", config, rows).render());
        return;
    }
    println!("\nmax |error| = {max_err:.2}%");
    println!("Residual error comes from correlation the mean-value model ignores:");
    println!("which instructions miss the DTB is not independent of their d and s2.");
}
