//! The resolved, typed intermediate form produced by [`sema`](crate::sema).
//!
//! In Rau's terms this is the output of the first, permanent binding step:
//! every symbolic name has been bound to a numeric (scope, slot) pair, the
//! associative-memory assumption of the HLR has been discharged, and the
//! hierarchical syntax is ready to be unravelled into a sequential DIR.

use crate::ast::{BinOp, UnOp};
use crate::types::Type;

/// A resolved program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Number of value slots in the global area.
    pub globals_size: u32,
    /// Procedures, in declaration order.
    pub procs: Vec<Proc>,
    /// Index into [`Program::procs`] of the entry procedure (`main`).
    pub entry: usize,
    /// Statements that initialise global variables, executed before `main`.
    pub global_init: Vec<Stmt>,
}

impl Program {
    /// Returns the procedure with the given index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn proc(&self, index: usize) -> &Proc {
        &self.procs[index]
    }
}

/// A resolved procedure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Proc {
    /// Source name, retained for diagnostics and listings.
    pub name: String,
    /// Number of parameters (always the first slots of the frame).
    pub n_params: u32,
    /// Total frame slots (parameters + all locals, with stack-disciplined
    /// slot reuse between sibling contours).
    pub frame_size: u32,
    /// Return type, if this is a function procedure.
    pub ret: Option<Type>,
    /// The resolved body.
    pub body: Vec<Stmt>,
    /// Number of contours (nested blocks) in the body, for encoding
    /// statistics.
    pub contour_count: u32,
    /// Maximum number of slots simultaneously visible in any contour —
    /// bounds the operand-field width a contextual encoding needs.
    pub max_visible_slots: u32,
}

/// A resolved scalar variable reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarRef {
    /// A slot in the global area.
    Global {
        /// Slot index within the global area.
        slot: u32,
    },
    /// A slot in the current procedure's frame.
    Local {
        /// Slot index within the frame.
        slot: u32,
    },
}

/// A resolved array reference: a contiguous run of slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArrRef {
    /// Whether the array lives in the global area or the frame.
    pub global: bool,
    /// First slot of the array.
    pub base: u32,
    /// Number of elements.
    pub len: u32,
}

/// A resolved expression, annotated with its type by construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer constant.
    Int(i64),
    /// Boolean constant.
    Bool(bool),
    /// Read a scalar variable.
    Load(VarRef),
    /// Read `arr[index]` with a bounds check at run time.
    LoadIndexed {
        /// The array.
        arr: ArrRef,
        /// Index expression (int).
        index: Box<Expr>,
    },
    /// Call a function procedure and use its result.
    Call {
        /// Callee index into [`Program::procs`].
        proc: usize,
        /// Actual arguments.
        args: Vec<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        operand: Box<Expr>,
    },
}

/// A resolved statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `var := value`.
    Store {
        /// Destination.
        var: VarRef,
        /// Source expression.
        value: Expr,
    },
    /// `arr[index] := value` with a bounds check.
    StoreIndexed {
        /// Destination array.
        arr: ArrRef,
        /// Index expression.
        index: Expr,
        /// Source expression.
        value: Expr,
    },
    /// Two-way branch.
    If {
        /// Boolean condition.
        cond: Expr,
        /// Taken when the condition is true.
        then_branch: Vec<Stmt>,
        /// Taken when the condition is false.
        else_branch: Vec<Stmt>,
    },
    /// Pre-tested loop.
    While {
        /// Boolean condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// Counted ascending loop with inclusive bound.
    For {
        /// Induction variable (int).
        var: VarRef,
        /// Initial value.
        from: Expr,
        /// Final value, evaluated once before the loop.
        to: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// A lowered `begin ... end` block; declarations have already become
    /// explicit stores, so only the grouping remains.
    Block(Vec<Stmt>),
    /// Call a procedure for effect; any result is discarded.
    CallStmt {
        /// Callee index.
        proc: usize,
        /// Actual arguments.
        args: Vec<Expr>,
        /// Whether the callee returns a value that must be popped.
        has_result: bool,
    },
    /// Return from the current procedure.
    Return(Option<Expr>),
    /// Append a value to the program output.
    Write(Expr),
    /// No operation.
    Skip,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varref_is_copy_and_hash() {
        fn assert_traits<T: Copy + std::hash::Hash + Eq>() {}
        assert_traits::<VarRef>();
        assert_traits::<ArrRef>();
    }

    #[test]
    fn program_proc_accessor() {
        let p = Program {
            globals_size: 0,
            procs: vec![Proc {
                name: "main".into(),
                n_params: 0,
                frame_size: 0,
                ret: None,
                body: vec![],
                contour_count: 1,
                max_visible_slots: 0,
            }],
            entry: 0,
            global_init: vec![],
        };
        assert_eq!(p.proc(0).name, "main");
    }
}
