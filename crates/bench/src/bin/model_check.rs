//! **Model validation:** the Section-7 analytic model, fed with parameters
//! *measured* from the simulator, must predict each machine's simulated
//! average interpretation time. This closes the loop the paper left open
//! ("the evaluation of F1 and F2 is hampered by the lack of suitable
//! statistics").
//!
//! Run with `cargo run -p uhm-bench --bin model_check --release`.

use dir::encode::SchemeKind;
use uhm::model::{ModeKind, Params};
use uhm::{CostModel, DtbConfig};
use uhm_bench::{run_three, workloads};

fn main() {
    println!("Analytic model vs cycle-accurate simulation (PairHuffman, 64-entry DTB)\n");
    println!(
        "{:>14} | {:>8} {:>8} {:>6} | {:>8} {:>8} {:>6} | {:>8} {:>8} {:>6}",
        "workload", "T1 sim", "T1 mod", "err%", "T2 sim", "T2 mod", "err%", "T3 sim", "T3 mod",
        "err%"
    );
    println!("{}", "-".repeat(98));
    let costs = CostModel::default();
    let mut max_err: f64 = 0.0;
    for w in workloads() {
        let (interp, dtb, cache) =
            run_three(&w.base, SchemeKind::PairHuffman, DtbConfig::with_capacity(64));
        let p = Params::from_reports(&costs, &interp, &dtb, &cache);
        let mut cells = Vec::new();
        for (report, kind) in [
            (&interp, ModeKind::Interpreter),
            (&dtb, ModeKind::Dtb),
            (&cache, ModeKind::ICache),
        ] {
            let sim = report.metrics.time_per_instruction();
            let model = p.predict(&kind);
            let err = 100.0 * (model - sim) / sim;
            max_err = max_err.max(err.abs());
            cells.push(format!("{sim:>8.2} {model:>8.2} {err:>6.2}"));
        }
        println!("{:>14} | {}", w.name, cells.join(" | "));
    }
    println!("\nmax |error| = {max_err:.2}%");
    println!("Residual error comes from correlation the mean-value model ignores:");
    println!("which instructions miss the DTB is not independent of their d and s2.");
}
