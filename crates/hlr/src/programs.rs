//! A library of sample RAUL workloads.
//!
//! These stand in for the "representative programs" whose statistics the
//! paper says would be needed for a quantitative evaluation (its Section 7
//! laments "the lack of suitable statistics"). The set deliberately spans
//! the behaviours that matter to a dynamic translation buffer:
//!
//! * tight loops with small working sets (`sieve`, `matmul`, `bubble_sort`)
//!   — the DTB's best case, hit ratio near 1;
//! * recursion (`fib_rec`, `ackermann`, `queens`) — deeper control locality;
//! * straight-line, low-reuse code (`straightline`) — the DTB's worst case;
//! * mixed integer kernels (`gcd_chain`, `collatz`, `primes`, `binsearch`).

use crate::hir;
use crate::{compile, Result};

/// A named sample workload.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// Short identifier used in benchmark output.
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// RAUL source text.
    pub source: &'static str,
}

impl Sample {
    /// Compiles this sample to its resolved form.
    ///
    /// # Errors
    ///
    /// Never fails for the built-in samples (the test suite compiles every
    /// one); the `Result` guards against future edits.
    pub fn compile(&self) -> Result<hir::Program> {
        compile(self.source)
    }
}

/// Sieve of Eratosthenes counting primes below 100.
pub const SIEVE: Sample = Sample {
    name: "sieve",
    description: "sieve of Eratosthenes, primes below 100",
    source: r#"
        int flags[100];
        proc main() begin
            int i; int j; int count := 0;
            for i := 2 to 99 do flags[i] := 1;
            for i := 2 to 99 do begin
                if flags[i] = 1 then begin
                    j := i + i;
                    while j < 100 do begin
                        flags[j] := 0;
                        j := j + i;
                    end
                end
            end
            for i := 2 to 99 do begin
                if flags[i] = 1 then count := count + 1;
            end
            write count;
        end
    "#,
};

/// 8x8 integer matrix multiply; writes a checksum.
pub const MATMUL: Sample = Sample {
    name: "matmul",
    description: "8x8 integer matrix multiply with checksum",
    source: r#"
        int a[64]; int b[64]; int c[64];
        proc main() begin
            int i; int j; int k; int acc; int sum := 0;
            for i := 0 to 63 do begin
                a[i] := i % 7 + 1;
                b[i] := i % 5 + 1;
            end
            for i := 0 to 7 do begin
                for j := 0 to 7 do begin
                    acc := 0;
                    for k := 0 to 7 do begin
                        acc := acc + a[i * 8 + k] * b[k * 8 + j];
                    end
                    c[i * 8 + j] := acc;
                end
            end
            for i := 0 to 63 do sum := sum + c[i];
            write sum;
        end
    "#,
};

/// Iterative Fibonacci of 30.
pub const FIB_ITER: Sample = Sample {
    name: "fib_iter",
    description: "iterative Fibonacci(30)",
    source: r#"
        proc main() begin
            int a := 0; int b := 1; int i; int t;
            for i := 1 to 30 do begin
                t := a + b;
                a := b;
                b := t;
            end
            write a;
        end
    "#,
};

/// Recursive Fibonacci of 15.
pub const FIB_REC: Sample = Sample {
    name: "fib_rec",
    description: "recursive Fibonacci(15)",
    source: r#"
        proc fib(int n) -> int begin
            if n < 2 then return n;
            return fib(n - 1) + fib(n - 2);
        end
        proc main() begin
            write fib(15);
        end
    "#,
};

/// Bubble sort of a 24-element pseudo-random array; writes min, median, max.
pub const BUBBLE_SORT: Sample = Sample {
    name: "bubble_sort",
    description: "bubble sort of 24 pseudo-random values",
    source: r#"
        int a[24];
        proc main() begin
            int i; int j; int t; int seed := 12345;
            for i := 0 to 23 do begin
                seed := (seed * 1103515245 + 12345) % 2147483648;
                if seed < 0 then seed := -seed;
                a[i] := seed % 1000;
            end
            for i := 0 to 22 do begin
                for j := 0 to 22 - i do begin
                    if a[j] > a[j + 1] then begin
                        t := a[j];
                        a[j] := a[j + 1];
                        a[j + 1] := t;
                    end
                end
            end
            write a[0];
            write a[12];
            write a[23];
        end
    "#,
};

/// Ackermann(2, 3) by the textbook recursion.
pub const ACKERMANN: Sample = Sample {
    name: "ackermann",
    description: "Ackermann(2, 3)",
    source: r#"
        proc ack(int m, int n) -> int begin
            if m = 0 then return n + 1;
            if n = 0 then return ack(m - 1, 1);
            return ack(m - 1, ack(m, n - 1));
        end
        proc main() begin
            write ack(2, 3);
        end
    "#,
};

/// Sum of gcd(i, 36) for i in 1..=60 by Euclid's algorithm.
pub const GCD_CHAIN: Sample = Sample {
    name: "gcd_chain",
    description: "sum of gcd(i, 36) for i in 1..=60",
    source: r#"
        proc gcd(int a, int b) -> int begin
            int t;
            while b <> 0 do begin
                t := a % b;
                a := b;
                b := t;
            end
            return a;
        end
        proc main() begin
            int i; int s := 0;
            for i := 1 to 60 do s := s + gcd(i, 36);
            write s;
        end
    "#,
};

/// Longest Collatz chain length for starting points below 200.
pub const COLLATZ: Sample = Sample {
    name: "collatz",
    description: "longest Collatz chain below 200",
    source: r#"
        proc chain(int n) -> int begin
            int len := 1;
            while n <> 1 do begin
                if n % 2 = 0 then n := n / 2;
                else n := 3 * n + 1;
                len := len + 1;
            end
            return len;
        end
        proc main() begin
            int i; int best := 0; int len;
            for i := 1 to 199 do begin
                len := chain(i);
                if len > best then best := len;
            end
            write best;
        end
    "#,
};

/// Count of primes below 500 by trial division.
pub const PRIMES: Sample = Sample {
    name: "primes",
    description: "count primes below 500 by trial division",
    source: r#"
        proc is_prime(int n) -> bool begin
            int d := 2;
            if n < 2 then return false;
            while d * d <= n do begin
                if n % d = 0 then return false;
                d := d + 1;
            end
            return true;
        end
        proc main() begin
            int i; int count := 0;
            for i := 2 to 499 do begin
                if is_prime(i) then count := count + 1;
            end
            write count;
        end
    "#,
};

/// Binary search over a sorted 32-element array; writes found positions.
pub const BINSEARCH: Sample = Sample {
    name: "binsearch",
    description: "binary search over 32 sorted values",
    source: r#"
        int a[32];
        proc search(int key) -> int begin
            int lo := 0; int hi := 31; int mid;
            while lo <= hi do begin
                mid := (lo + hi) / 2;
                if a[mid] = key then return mid;
                if a[mid] < key then lo := mid + 1;
                else hi := mid - 1;
            end
            return -1;
        end
        proc main() begin
            int i; int hits := 0;
            for i := 0 to 31 do a[i] := i * 3;
            for i := 0 to 95 do begin
                if search(i) >= 0 then hits := hits + 1;
            end
            write hits;
        end
    "#,
};

/// N-queens solution count for N = 6 (recursive backtracking).
pub const QUEENS: Sample = Sample {
    name: "queens",
    description: "6-queens solution count",
    source: r#"
        int col[6];
        int solutions := 0;
        proc safe(int row) -> bool begin
            int r := 0;
            while r < row do begin
                if col[r] = col[row] then return false;
                if col[r] - col[row] = row - r then return false;
                if col[row] - col[r] = row - r then return false;
                r := r + 1;
            end
            return true;
        end
        proc place(int row) begin
            int c;
            if row = 6 then begin
                solutions := solutions + 1;
                return;
            end
            for c := 0 to 5 do begin
                col[row] := c;
                if safe(row) then call place(row + 1);
            end
        end
        proc main() begin
            call place(0);
            write solutions;
        end
    "#,
};

/// A long straight-line computation with almost no reuse: the DTB's
/// adversarial case (every instruction is translated, then never reused).
pub const STRAIGHTLINE: Sample = Sample {
    name: "straightline",
    description: "straight-line low-reuse arithmetic (DTB adversarial case)",
    source: r#"
        proc main() begin
            int x := 1;
            x := x * 3 + 1; x := x * 7 - 2; x := x % 1000 + 17; x := x * 11 - 5;
            x := x % 917 + 13; x := x * 5 + 3; x := x * 13 - 7; x := x % 811 + 29;
            x := x * 17 + 1; x := x * 3 - 11; x := x % 701 + 31; x := x * 7 + 9;
            x := x % 613 + 37; x := x * 19 - 3; x := x * 3 + 21; x := x % 503 + 41;
            x := x * 23 + 5; x := x * 5 - 13; x := x % 419 + 43; x := x * 29 + 7;
            x := x % 311 + 47; x := x * 31 - 17; x := x * 7 + 33; x := x % 211 + 53;
            x := x * 37 + 11; x := x * 3 - 19; x := x % 109 + 59; x := x * 41 + 13;
            write x;
        end
    "#,
};

/// A mixed workload: per-iteration branching over three small kernels.
pub const MIXED: Sample = Sample {
    name: "mixed",
    description: "phase-changing mix of three kernels",
    source: r#"
        int acc := 0;
        proc phase_a(int n) begin
            int i;
            for i := 0 to n do acc := acc + i * i;
        end
        proc phase_b(int n) begin
            int i := n;
            while i > 0 do begin
                acc := acc + i % 3;
                i := i - 1;
            end
        end
        proc phase_c(int n) -> int begin
            if n <= 1 then return 1;
            return n * phase_c(n - 2);
        end
        proc main() begin
            int round;
            for round := 0 to 9 do begin
                call phase_a(20);
                call phase_b(30);
                acc := acc + phase_c(9) % 97;
            end
            write acc;
        end
    "#,
};

/// Towers of Hanoi: counts moves for 10 discs (deep homogeneous
/// recursion; the canonical high-reuse call pattern).
pub const HANOI: Sample = Sample {
    name: "hanoi",
    description: "towers of Hanoi move count, 10 discs",
    source: r#"
        int moves := 0;
        proc hanoi(int n, int src, int dst, int via) begin
            if n = 0 then return;
            call hanoi(n - 1, src, via, dst);
            moves := moves + 1;
            call hanoi(n - 1, via, dst, src);
        end
        proc main() begin
            call hanoi(10, 1, 3, 2);
            write moves;
        end
    "#,
};

/// Permutation counting by Heap's algorithm over a 6-element array
/// (recursion with array mutation and backtracking).
pub const PERM: Sample = Sample {
    name: "perm",
    description: "Heap's algorithm permutation count, n = 6",
    source: r#"
        int a[6];
        int count := 0;
        proc swap(int i, int j) begin
            int t;
            t := a[i];
            a[i] := a[j];
            a[j] := t;
        end
        proc permute(int k) begin
            int i;
            if k = 1 then begin
                count := count + 1;
                return;
            end
            for i := 0 to k - 1 do begin
                call permute(k - 1);
                if k % 2 = 0 then call swap(i, k - 1);
                else call swap(0, k - 1);
            end
        end
        proc main() begin
            int i;
            for i := 0 to 5 do a[i] := i;
            call permute(6);
            write count;
        end
    "#,
};

/// Strided dot products over two 48-element vectors (regular array
/// traffic with three stride patterns).
pub const DOT: Sample = Sample {
    name: "dot",
    description: "strided dot products over 48-element vectors",
    source: r#"
        int u[48];
        int v[48];
        proc dot_stride(int stride) -> int begin
            int i := 0;
            int acc := 0;
            while i < 48 do begin
                acc := acc + u[i] * v[i];
                i := i + stride;
            end
            return acc;
        end
        proc main() begin
            int i;
            for i := 0 to 47 do begin
                u[i] := i % 9 - 4;
                v[i] := i % 7 - 3;
            end
            write dot_stride(1);
            write dot_stride(2);
            write dot_stride(3);
        end
    "#,
};

/// Fisher-Yates-style shuffle driven by an LCG, then a checksum walk
/// (data-dependent array indexing).
pub const SHUFFLE: Sample = Sample {
    name: "shuffle",
    description: "LCG-driven shuffle of 32 elements with checksum",
    source: r#"
        int a[32];
        int seed := 99991;
        proc next_rand(int bound) -> int begin
            seed := (seed * 1103515245 + 12345) % 2147483648;
            if seed < 0 then seed := -seed;
            return seed % bound;
        end
        proc main() begin
            int i; int j; int t; int sum := 0;
            for i := 0 to 31 do a[i] := i;
            i := 31;
            while i > 0 do begin
                j := next_rand(i + 1);
                t := a[i];
                a[i] := a[j];
                a[j] := t;
                i := i - 1;
            end
            for i := 0 to 31 do sum := sum + a[i] * i;
            write sum;
        end
    "#,
};

/// All built-in samples, in a stable order.
pub const ALL: &[Sample] = &[
    SIEVE,
    MATMUL,
    FIB_ITER,
    FIB_REC,
    BUBBLE_SORT,
    ACKERMANN,
    GCD_CHAIN,
    COLLATZ,
    PRIMES,
    BINSEARCH,
    QUEENS,
    STRAIGHTLINE,
    MIXED,
    HANOI,
    PERM,
    DOT,
    SHUFFLE,
];

/// Looks up a sample by name.
pub fn by_name(name: &str) -> Option<Sample> {
    ALL.iter().copied().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval;

    #[test]
    fn all_samples_compile() {
        for s in ALL {
            s.compile().unwrap_or_else(|e| panic!("{}: {e}", s.name));
        }
    }

    #[test]
    fn all_samples_run_under_reference_evaluator() {
        for s in ALL {
            let p = s.compile().unwrap();
            let out = eval::run(&p).unwrap_or_else(|e| panic!("{}: {e}", s.name));
            assert!(!out.is_empty(), "{} produced no output", s.name);
        }
    }

    #[test]
    fn known_outputs() {
        let cases: &[(&Sample, &[i64])] = &[
            (&SIEVE, &[25]),
            (&FIB_ITER, &[832040]),
            (&FIB_REC, &[610]),
            (&ACKERMANN, &[9]),
            (&QUEENS, &[4]),
            (&PRIMES, &[95]),
            (&BINSEARCH, &[32]),
            (&COLLATZ, &[125]),
            (&HANOI, &[1023]),
            (&PERM, &[720]),
        ];
        for (s, want) in cases {
            let p = s.compile().unwrap();
            let got = eval::run(&p).unwrap();
            assert_eq!(&got, want, "{}", s.name);
        }
    }

    #[test]
    fn by_name_finds_each_sample() {
        for s in ALL {
            assert_eq!(by_name(s.name).unwrap().name, s.name);
        }
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = ALL.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ALL.len());
    }
}
