//! Fault-plane integration tests: the zero-rate differential guarantee
//! (an attached-but-inert injector is byte-for-byte invisible), recovery
//! of injected DTB corruption across the sample corpus, graceful
//! degradation to pure interpretation, and the no-panic guarantee under
//! aggressive injection of every fault class.

use dir::encode::SchemeKind;
use telemetry::{FaultKind, RingSink};
use uhm::{CostModel, DtbConfig, FaultConfig, FaultStats, Limits, Machine, Mode, RetryPolicy};

fn sample_programs() -> Vec<(&'static str, dir::Program)> {
    hlr::programs::ALL
        .iter()
        .map(|s| {
            (
                s.name,
                dir::compiler::compile(&s.compile().expect("samples compile")),
            )
        })
        .collect()
}

fn bounded(program: &dir::Program, scheme: SchemeKind) -> Machine {
    // Corrupted control flow can loop: bound every faulty run.
    let limits = Limits {
        max_steps: 2_000_000,
        ..Limits::default()
    };
    Machine::with(program, scheme, CostModel::default(), limits)
}

/// All execution levels agree at zero fault rate: HLR evaluation, DIR
/// execution, and the DTB machine with an inert fault plane attached
/// produce identical output.
#[test]
fn levels_agree_with_an_inert_fault_plane() {
    for s in hlr::programs::ALL {
        let hir = s.compile().unwrap();
        let program = dir::compiler::compile(&hir);
        let reference = hlr::eval::run(&hir).expect("samples are trap-free");
        assert_eq!(dir::exec::run(&program).unwrap(), reference, "{}", s.name);
        let mut m = Machine::new(&program, SchemeKind::Huffman);
        m.set_faults(Some(FaultConfig::inert(7)));
        let r = m.run(&Mode::Dtb(DtbConfig::with_capacity(64))).unwrap();
        assert_eq!(r.output, reference, "{}", s.name);
    }
}

/// A zero-rate injector is byte-for-byte inert: output and every metric
/// of the run match a machine with no fault plane at all.
#[test]
fn zero_rate_injection_is_invisible() {
    for (name, program) in sample_programs() {
        for mode in [
            Mode::Dtb(DtbConfig::with_capacity(64)),
            Mode::TwoLevelDtb {
                l1: DtbConfig::with_capacity(8),
                l2: DtbConfig::with_capacity(256),
            },
        ] {
            let clean = Machine::new(&program, SchemeKind::Huffman)
                .run(&mode)
                .unwrap();
            let mut m = Machine::new(&program, SchemeKind::Huffman);
            m.set_faults(Some(FaultConfig::inert(0xDEAD)));
            let inert = m.run(&mode).unwrap();
            assert_eq!(inert.output, clean.output, "{name} {mode:?}");
            let mut metrics = inert.metrics;
            assert_eq!(
                metrics.faults.take(),
                Some(FaultStats::default()),
                "{name} {mode:?}"
            );
            assert_eq!(metrics, clean.metrics, "{name} {mode:?}");
        }
    }
}

/// DTB corruption (buffer words and poisoned tags) is always detected
/// and recovered: every sample completes with the reference output, and
/// the corpus as a whole exercises the recovery path.
#[test]
fn dtb_corruption_recovers_across_the_corpus() {
    let mut total_recoveries = 0;
    for (name, program) in sample_programs() {
        let want = dir::exec::run(&program).unwrap();
        for kind in [FaultKind::DtbWord, FaultKind::DtbTag] {
            let mut m = bounded(&program, SchemeKind::Huffman);
            m.set_faults(Some(FaultConfig::only(0xFA14, kind, 1e-3)));
            let r = m
                .run(&Mode::Dtb(DtbConfig::with_capacity(64)))
                .unwrap_or_else(|t| panic!("{name} under {kind:?}: {t}"));
            assert_eq!(r.output, want, "{name} under {kind:?}");
            total_recoveries += r.metrics.recoveries;
        }
    }
    assert!(
        total_recoveries > 0,
        "the corpus never exercised the recovery path"
    );
}

/// Machine recovery counters are corroborated by telemetry: the event
/// totals from an attached sink agree with the metrics.
#[test]
fn telemetry_corroborates_recovery_counts() {
    let program = dir::compiler::compile(&hlr::programs::SIEVE.compile().unwrap());
    let mut m = bounded(&program, SchemeKind::Huffman);
    m.set_faults(Some(FaultConfig::only(0xFA14, FaultKind::DtbWord, 1e-2)));
    let mut ring = RingSink::new(8192);
    let r = m
        .run_with(&Mode::Dtb(DtbConfig::with_capacity(64)), &mut ring)
        .unwrap();
    let counts = ring.counts();
    let faults = r.metrics.faults.unwrap();
    assert!(faults.dtb_words_corrupted > 0, "nothing was injected");
    assert_eq!(counts.faults_injected, faults.total());
    assert_eq!(counts.recovery_misses, r.metrics.recoveries);
    assert!(r.metrics.recoveries > 0);
}

/// Constant corruption with a tight retry policy degrades hot addresses
/// to pure interpretation — and the output is still correct.
#[test]
fn degradation_preserves_semantics() {
    let program = dir::compiler::compile(&hlr::programs::FIB_ITER.compile().unwrap());
    let want = dir::exec::run(&program).unwrap();
    let mut m = bounded(&program, SchemeKind::Packed);
    m.set_faults(Some(FaultConfig::only(3, FaultKind::DtbWord, 1.0)));
    m.set_retry(RetryPolicy {
        degrade_after: 1,
        max_fetch_retries: 8,
    });
    let r = m.run(&Mode::Dtb(DtbConfig::with_capacity(64))).unwrap();
    assert_eq!(r.output, want);
    assert!(r.metrics.degraded_instructions > 0);
    assert!(r.metrics.recoveries > 0);
}

/// Aggressive injection of every class at once: runs either complete or
/// end in a typed trap — never a panic. DIR corruption is terminal by
/// design, so traps are expected outcomes here.
#[test]
fn aggressive_injection_never_panics() {
    for (name, program) in sample_programs() {
        for seed in 0..4u64 {
            let config = FaultConfig {
                dir_bit_rate: 0.05,
                dtb_word_rate: 0.05,
                dtb_tag_rate: 0.05,
                drop_fetch_rate: 0.2,
                ..FaultConfig::inert(seed)
            };
            let limits = Limits {
                max_steps: 500_000,
                ..Limits::default()
            };
            let mut m = Machine::with(&program, SchemeKind::Huffman, CostModel::default(), limits);
            m.set_faults(Some(config));
            match m.run(&Mode::Dtb(DtbConfig::with_capacity(64))) {
                Ok(_) => {}
                Err(trap) => {
                    // Any typed trap is acceptable; reaching here at all
                    // means no panic escaped the machine.
                    let _ = format!("{name} seed {seed}: {trap}");
                }
            }
        }
    }
}

/// Dropped fetches past the retry budget surface as the typed
/// `FetchFailed` trap rather than spinning forever.
#[test]
fn exhausted_fetch_retries_trap() {
    let program = dir::compiler::compile(&hlr::programs::FIB_ITER.compile().unwrap());
    let mut m = bounded(&program, SchemeKind::Huffman);
    m.set_faults(Some(FaultConfig::only(1, FaultKind::FetchDrop, 1.0)));
    m.set_retry(RetryPolicy {
        degrade_after: 3,
        max_fetch_retries: 2,
    });
    let err = m.run(&Mode::Dtb(DtbConfig::with_capacity(64))).unwrap_err();
    assert!(
        matches!(err, dir::exec::Trap::FetchFailed { .. }),
        "got {err}"
    );
}
