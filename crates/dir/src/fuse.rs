//! Peephole fusion: raises the semantic level of a DIR program.
//!
//! Section 3.2 of the paper observes that the level of a DIR can be raised
//! by "increasing the complexity and variety of the opcodes, addressing
//! modes and branch instructions". This pass performs exactly that move:
//! frequent stack-instruction sequences are coalesced into single two- and
//! three-address instructions (the fused tier of [`crate::isa`]), producing
//! a representation that is both *smaller* (fewer instructions) and *faster
//! to steer* (fewer dispatches) — the upward direction of Figure 1.
//!
//! Fusion windows never span a branch target, a procedure boundary or a
//! call, so control transfers always land on instruction heads; branch
//! targets are renumbered afterwards.

use std::collections::HashSet;

use crate::isa::{AluOp, Inst};
use crate::program::{ProcInfo, Program};

/// Statistics from a fusion run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FuseStats {
    /// Instructions before fusion.
    pub before: usize,
    /// Instructions after fusion.
    pub after: usize,
    /// Fused instructions emitted.
    pub fused: usize,
}

impl FuseStats {
    /// Fraction of instructions eliminated, in [0, 1).
    pub fn reduction(&self) -> f64 {
        if self.before == 0 {
            0.0
        } else {
            1.0 - self.after as f64 / self.before as f64
        }
    }
}

/// Applies the fusion pass, returning the higher-level program and
/// statistics.
///
/// The result is semantically identical to the input (the test suite
/// verifies this differentially) and passes [`Program::validate`].
///
/// # Example
///
/// ```
/// let hir = hlr::compile("proc main() begin int i := 0; while i < 9 do i := i + 1; end")?;
/// let base = dir::compiler::compile(&hir);
/// let (fused, stats) = dir::fuse::fuse(&base);
/// assert!(stats.after < stats.before);
/// assert_eq!(dir::exec::run(&fused).unwrap(), dir::exec::run(&base).unwrap());
/// # Ok::<(), hlr::Error>(())
/// ```
pub fn fuse(program: &Program) -> (Program, FuseStats) {
    // Instruction heads that control can reach non-sequentially: branch
    // targets and procedure entries. Fusion windows must not cover one
    // except as their first instruction.
    let mut heads: HashSet<u32> = program.code.iter().filter_map(|i| i.target()).collect();
    for p in &program.procs {
        heads.insert(p.entry);
    }

    let mut new_code: Vec<Inst> = Vec::with_capacity(program.code.len());
    // Map from old instruction index to new index, for target rewriting.
    // Mid-window indices keep `u32::MAX`; no branch may point at them.
    let mut index_map = vec![u32::MAX; program.code.len() + 1];
    let mut fused_count = 0usize;

    // Region boundaries: prelude plus each procedure, in address order.
    let mut boundaries: Vec<(u32, u32)> = Vec::new();
    let prelude_end = program
        .procs
        .iter()
        .map(|p| p.entry)
        .min()
        .unwrap_or(program.code.len() as u32);
    boundaries.push((0, prelude_end));
    let mut procs_sorted: Vec<&ProcInfo> = program.procs.iter().collect();
    procs_sorted.sort_by_key(|p| p.entry);
    for p in &procs_sorted {
        boundaries.push((p.entry, p.end));
    }

    let mut proc_entries = vec![(0u32, 0u32); program.procs.len()];

    for &(start, end) in &boundaries {
        let mut i = start as usize;
        while i < end as usize {
            let window_ok = |len: usize| -> bool {
                i + len <= end as usize && (1..len).all(|k| !heads.contains(&((i + k) as u32)))
            };
            let fused = try_fuse(&program.code[i..end as usize], &window_ok);
            index_map[i] = new_code.len() as u32;
            match fused {
                Some((inst, len)) => {
                    new_code.push(inst);
                    fused_count += 1;
                    i += len;
                }
                None => {
                    new_code.push(program.code[i]);
                    i += 1;
                }
            }
        }
        index_map[end as usize] = new_code.len() as u32;
    }

    // Record new procedure ranges (procs are contiguous regions).
    for (pi, p) in program.procs.iter().enumerate() {
        proc_entries[pi] = (index_map[p.entry as usize], index_map[p.end as usize]);
    }

    // Rewrite branch targets through the map.
    let remapped: Vec<Inst> = new_code
        .into_iter()
        .map(|inst| {
            inst.map_target(|t| {
                let n = index_map[t as usize];
                debug_assert_ne!(n, u32::MAX, "branch into fused window interior");
                n
            })
        })
        .collect();

    let procs = program
        .procs
        .iter()
        .zip(&proc_entries)
        .map(|(p, &(entry, end))| ProcInfo {
            name: p.name.clone(),
            entry,
            end,
            n_args: p.n_args,
            frame_size: p.frame_size,
            returns_value: p.returns_value,
        })
        .collect();

    let stats = FuseStats {
        before: program.code.len(),
        after: remapped.len(),
        fused: fused_count,
    };
    (
        Program {
            code: remapped,
            procs,
            entry_proc: program.entry_proc,
            globals_size: program.globals_size,
        },
        stats,
    )
}

/// Attempts to match a fusion pattern at the start of `code`, returning the
/// fused instruction and the window length.
fn try_fuse(code: &[Inst], window_ok: &dyn Fn(usize) -> bool) -> Option<(Inst, usize)> {
    // Length-4 patterns first (most savings).
    if window_ok(4) && code.len() >= 4 {
        match (code[0], code[1], code[2], code[3]) {
            // local := local op local
            (Inst::PushLocal(a), Inst::PushLocal(b), Inst::Bin(op), Inst::StoreLocal(dst)) => {
                return Some((Inst::BinLocals { op, a, b, dst }, 4));
            }
            // slot := slot +/- k  (increment form)
            (Inst::PushLocal(s), Inst::PushConst(k), Inst::Bin(op), Inst::StoreLocal(dst))
                if s == dst && matches!(op, AluOp::Add | AluOp::Sub) =>
            {
                let imm = if op == AluOp::Add {
                    k
                } else {
                    k.wrapping_neg()
                };
                return Some((Inst::IncLocal { slot: s, imm }, 4));
            }
            // if !(local op k) goto t
            (Inst::PushLocal(slot), Inst::PushConst(imm), Inst::Bin(op), Inst::JumpIfFalse(t)) => {
                return Some((
                    Inst::CmpConstBr {
                        op,
                        slot,
                        imm,
                        target: t,
                    },
                    4,
                ));
            }
            // if !(local op local) goto t
            (Inst::PushLocal(a), Inst::PushLocal(b), Inst::Bin(op), Inst::JumpIfFalse(t)) => {
                return Some((
                    Inst::CmpLocalsBr {
                        op,
                        a,
                        b,
                        target: t,
                    },
                    4,
                ));
            }
            _ => {}
        }
    }
    // Length-2 pattern.
    if window_ok(2) && code.len() >= 2 {
        if let (Inst::PushConst(imm), Inst::StoreLocal(slot)) = (code[0], code[1]) {
            return Some((Inst::SetLocalConst { slot, imm }, 2));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::compile;
    use crate::exec;

    fn both(src: &str) -> (Program, Program, FuseStats) {
        let hir = hlr::compile(src).unwrap();
        let base = compile(&hir);
        let (fused, stats) = fuse(&base);
        (base, fused, stats)
    }

    #[test]
    fn fused_programs_validate_and_agree_on_samples() {
        for s in hlr::programs::ALL {
            let base = compile(&s.compile().unwrap());
            let (fused, stats) = fuse(&base);
            fused
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", s.name));
            assert!(stats.after <= stats.before, "{}", s.name);
            assert_eq!(
                exec::run(&fused).unwrap(),
                exec::run(&base).unwrap(),
                "{}",
                s.name
            );
        }
    }

    #[test]
    fn fused_programs_agree_on_generated_programs() {
        for seed in 0..40 {
            let ast = hlr::generate::program(seed, &hlr::generate::Config::default());
            let hir = hlr::sema::analyze(&ast).unwrap();
            let base = compile(&hir);
            let (fused, _) = fuse(&base);
            fused
                .validate()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(
                exec::run(&fused).unwrap(),
                exec::run(&base).unwrap(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn loop_increment_is_fused() {
        let (_, fused, stats) =
            both("proc main() begin int i := 0; while i < 10 do i := i + 1; end");
        assert!(stats.fused >= 2, "expected inc + cmp fusion, got {stats:?}");
        assert!(fused
            .code
            .iter()
            .any(|i| matches!(i, Inst::IncLocal { imm: 1, .. })));
        assert!(fused
            .code
            .iter()
            .any(|i| matches!(i, Inst::CmpConstBr { .. })));
    }

    #[test]
    fn subtraction_increment_negates() {
        let (_, fused, _) = both("proc main() begin int i := 10; while i > 0 do i := i - 1; end");
        assert!(fused
            .code
            .iter()
            .any(|i| matches!(i, Inst::IncLocal { imm: -1, .. })));
    }

    #[test]
    fn three_address_fusion() {
        let (_, fused, _) =
            both("proc main() begin int a := 1; int b := 2; int c; c := a * b; write c; end");
        assert!(fused
            .code
            .iter()
            .any(|i| matches!(i, Inst::BinLocals { op: AluOp::Mul, .. })));
        assert!(fused
            .code
            .iter()
            .any(|i| matches!(i, Inst::SetLocalConst { .. })));
    }

    #[test]
    fn fusion_respects_branch_targets() {
        // The `while` head is a branch target between PushLocal and the
        // comparison; fusion must not swallow it.
        let (base, fused, _) = both(
            "proc main() begin
                int i := 0;
                int s := 0;
                while i < 100 do begin
                    s := s + i;
                    i := i + 1;
                end
                write s;
             end",
        );
        assert_eq!(exec::run(&fused).unwrap(), exec::run(&base).unwrap());
        assert_eq!(exec::run(&fused).unwrap(), vec![4950]);
    }

    #[test]
    fn reduction_is_substantial_on_loopy_code() {
        let (_, _, stats) = both(
            "proc main() begin
                int i; int s := 0;
                for i := 0 to 99 do s := s + i;
                write s;
             end",
        );
        assert!(
            stats.reduction() > 0.25,
            "expected >25% reduction, got {:.2}",
            stats.reduction()
        );
    }

    #[test]
    fn idempotent_on_already_fused_code() {
        let (_, fused, _) = both("proc main() begin int i := 0; i := i + 1; write i; end");
        let (again, stats2) = fuse(&fused);
        assert_eq!(again.code, fused.code);
        assert_eq!(stats2.fused, 0);
    }

    #[test]
    fn globals_are_not_fused() {
        let (_, fused, _) = both("int g; proc main() begin g := g + 1; write g; end");
        // Global increments stay as stack sequences (fused tier is
        // frame-addressed only).
        assert!(!fused
            .code
            .iter()
            .any(|i| matches!(i, Inst::IncLocal { .. })));
    }
}
