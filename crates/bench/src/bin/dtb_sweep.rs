//! **E7 — the locality claim (§4):** DTB hit ratio and interpretation time
//! versus DTB capacity, plus Denning working-set measurements of the DIR
//! instruction traces that explain them.
//!
//! Run with `cargo run -p uhm-bench --bin dtb_sweep --release`.

use dir::encode::SchemeKind;
use memsim::workset;
use uhm::sweep::capacity_sweep;
use uhm::{Machine, Mode};
use uhm_bench::workloads;

fn main() {
    let capacities = [4usize, 8, 16, 32, 64, 128, 256];
    println!("DTB capacity sweep (PairHuffman static DIR, degree-4 sets)\n");
    println!(
        "{:>14} {:>7} | {}",
        "workload",
        "",
        capacities
            .iter()
            .map(|c| format!("{c:>7}"))
            .collect::<Vec<_>>()
            .join(" ")
    );
    println!("{}", "-".repeat(26 + 8 * capacities.len()));
    for w in workloads() {
        let points = capacity_sweep(&w.base, SchemeKind::PairHuffman, &capacities);
        let hit_rows: Vec<String> = points
            .iter()
            .map(|p| format!("{:>7.3}", p.stats.hit_ratio()))
            .collect();
        let t_rows: Vec<String> = points
            .iter()
            .map(|p| format!("{:>7.2}", p.time_per_instruction))
            .collect();
        println!("{:>14} {:>7} | {}", w.name, "h_D", hit_rows.join(" "));
        println!("{:>14} {:>7} | {}", "", "T2", t_rows.join(" "));
    }

    println!("\nWorking-set evidence (Denning window over the DIR trace)\n");
    println!(
        "{:>14} {:>10} {:>8} {:>8} {:>8} {:>8}",
        "workload", "refs", "unique", "ws(100)", "ws(1000)", "lru64"
    );
    for w in workloads() {
        let mut machine = Machine::new(&w.base, SchemeKind::Packed);
        machine.set_trace(true);
        let r = machine.run(&Mode::Interpreter).expect("samples are trap-free");
        let trace: Vec<u64> = r
            .metrics
            .trace
            .unwrap()
            .into_iter()
            .map(u64::from)
            .collect();
        let rep = workset::LocalityReport::measure(&trace);
        println!(
            "{:>14} {:>10} {:>8} {:>8.1} {:>8.1} {:>8.3}",
            w.name, rep.references, rep.unique, rep.ws100, rep.ws1000, rep.lru64
        );
    }
    println!("\nThe small working sets relative to static program size are exactly the");
    println!("locality the paper's §4 invokes: a modest DTB captures almost all");
    println!("executed instructions, except on the adversarial straight-line workload.");
}
