//! # uhm — the universal host machine with dynamic translation
//!
//! The primary contribution of Rau (1978): a universal host machine whose
//! working set of DIR instructions is kept, dynamically translated into a
//! directly executable PSDER form, in a **dynamic translation buffer**.
//!
//! * [`dtb`] — the DTB's four arrays (associative tags, address array,
//!   replacement array, buffer array) with fixed or overflow allocation;
//! * [`machine`] — the three Section-7 machine configurations (pure
//!   interpreter, DTB, instruction cache) with full cycle accounting over
//!   the same execution engine, so all modes are semantically identical;
//! * [`model`] — the Section-7 analytic model, the paper's published
//!   Tables 2/3, and parameter extraction from measured runs;
//! * [`config`], [`metrics`] — cost knobs and the measured Section-7
//!   parameters (`d`, `g`, `x`, `s1`, `s2`, `h_D`, `h_c`);
//! * [`fault`] — the fault plane: seeded corruption injection, DTB guard
//!   checksums, and the recovery/degradation machinery that exploits the
//!   DTB's redundancy (the static DIR stays the ground truth);
//! * [`pool`] — the multi-tenant plane: a [`MachinePool`]
//!   runs independent tenant programs across a work-stealing worker set,
//!   sharing read-only decode artifacts while keeping every tenant's
//!   results bit-identical to a sequential run;
//! * [`resilience`] — the supervision policies around the pool: execution
//!   budgets ([`Budget`]), seeded retry/backoff, per-image circuit
//!   breakers, pressure-bound admission control, load shedding, and the
//!   pool-level chaos plane;
//! * [`service`] — the request-serving plane over the pool: open-loop
//!   arrivals on the modeled clock, static admission, per-tenant fair
//!   queues with quotas and watermark backpressure, and the
//!   deterministic latency-under-load trajectory ([`ServiceRun`]).
//!
//! # Example
//!
//! ```
//! use dir::encode::SchemeKind;
//! use uhm::{DtbConfig, Machine, Mode};
//!
//! let hir = hlr::compile(
//!     "proc main() begin int i := 0; while i < 50 do i := i + 1; write i; end",
//! )?;
//! let prog = dir::compiler::compile(&hir);
//! let machine = Machine::new(&prog, SchemeKind::Huffman);
//!
//! let interp = machine.run(&Mode::Interpreter).unwrap();
//! let dtb = machine.run(&Mode::Dtb(DtbConfig::with_capacity(64))).unwrap();
//! assert_eq!(interp.output, dtb.output);
//! // Dynamic translation pays off once the loop re-executes instructions.
//! assert!(dtb.metrics.time_per_instruction() < interp.metrics.time_per_instruction());
//! # Ok::<(), hlr::Error>(())
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod dtb;
pub mod fault;
pub mod machine;
pub mod metrics;
pub mod model;
pub mod pool;
pub mod report;
pub mod resilience;
pub mod service;
pub mod sweep;
pub mod window;

pub use config::{Budget, CostModel, Limits, RetryPolicy, BUDGET_CHECK_INTERVAL};
pub use dtb::{Allocation, ConfigError, Dtb, DtbConfig, DtbStats, Replacement};
pub use fault::{FaultConfig, FaultInjector, FaultStats};
pub use machine::{Machine, Mode, RunOptions, SharedArtifacts};
pub use metrics::{CycleBreakdown, Metrics, Report};
pub use model::Params;
pub use pool::{MachinePool, PoolRun, PoolTenant, TenantOutcome, TenantResult};
pub use resilience::{
    AdmissionPolicy, BackoffPolicy, Breaker, BreakerPolicy, BreakerState, ChaosConfig, Supervisor,
};
pub use service::{
    Request, RequestOutcome, RequestResult, Service, ServiceConfig, ServiceRun, StepRun,
};
pub use window::WindowSample;

// Re-exported so downstream crates can drive `Machine::run_with` without
// naming the telemetry crate themselves.
pub use telemetry;
