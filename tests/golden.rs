//! Golden-file regression tests: the compiler's DIR output, the fusion
//! pass and the semantic-routine library are pinned against checked-in
//! listings. Any intentional change to code generation must update the
//! fixtures under `tests/golden/` (regenerate with the snippets in each
//! test's failure message).

use std::fs;
use std::path::Path;

fn golden(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("missing fixture {path:?}: {e}"))
}

fn assert_golden(actual: &str, fixture: &str) {
    let expected = golden(fixture);
    assert_eq!(
        actual, expected,
        "\n== output differs from tests/golden/{fixture} ==\n\
         If the change is intentional, overwrite the fixture with the new\n\
         output (the full actual text is in the assertion above).",
    );
}

#[test]
fn compiler_output_is_stable() {
    for name in ["fib_rec", "gcd_chain"] {
        let sample = hlr::programs::by_name(name).expect("sample exists");
        let program = dir::compiler::compile(&sample.compile().expect("compiles"));
        assert_golden(&dir::asm::disassemble(&program), &format!("{name}.dir.asm"));
    }
}

#[test]
fn fusion_output_is_stable() {
    for name in ["fib_rec", "gcd_chain"] {
        let sample = hlr::programs::by_name(name).expect("sample exists");
        let base = dir::compiler::compile(&sample.compile().expect("compiles"));
        let (fused, _) = dir::fuse::fuse(&base);
        assert_golden(&dir::asm::disassemble(&fused), &format!("{name}.fused.asm"));
    }
}

#[test]
fn routine_library_is_stable() {
    let lib = psder::RoutineLib::new();
    assert_golden(&psder::listing::routine_listing(&lib), "routines.masm");
}

#[test]
fn table_decoded_huffman_images_match_golden() {
    // Golden coverage through the fast plane: encode each pinned program
    // under the Huffman scheme, decode it with the table decoder, and the
    // disassembly must still match the checked-in listing bit for bit.
    for name in ["fib_rec", "gcd_chain"] {
        let sample = hlr::programs::by_name(name).expect("sample exists");
        let program = dir::compiler::compile(&sample.compile().expect("compiles"));
        let mut image = dir::encode::SchemeKind::Huffman.encode(&program);
        image.set_decode_mode(dir::encode::DecodeMode::Table);
        let decoded = dir::Program {
            code: image.decode_all().expect("clean image decodes"),
            ..program.clone()
        };
        assert_golden(&dir::asm::disassemble(&decoded), &format!("{name}.dir.asm"));
    }
}

#[test]
fn golden_programs_reassemble_and_run() {
    // The fixtures are not just text: they assemble back into programs
    // that validate and produce the reference outputs.
    for (name, want) in [("fib_rec", vec![610i64]), ("gcd_chain", vec![266])] {
        for suffix in ["dir", "fused"] {
            let program = dir::asm::assemble(&golden(&format!("{name}.{suffix}.asm")))
                .expect("fixtures assemble");
            program.validate().expect("fixtures validate");
            assert_eq!(
                dir::exec::run(&program).expect("fixtures run"),
                want,
                "{name}.{suffix}"
            );
        }
    }
}
