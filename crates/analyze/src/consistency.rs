//! Pass 3b: cross-level consistency between DIR and PSDER.
//!
//! Two independent models exist for every opcode's stack behaviour: the
//! analyzer's abstract `(pops, pushes)` table (pass 2) and the PSDER
//! level's translation templates plus semantic-routine library. This pass
//! pins them together over the *instructions the program actually
//! contains* — the generalization of `psder::verify::check_all` from a
//! one-representative-per-opcode test gate into a whole-image load pass.
//!
//! Two diagnostics can come out: [`DiagCode::TemplateImbalance`] when a
//! translation sequence's net stack effect disagrees with the DIR
//! semantics, and [`DiagCode::ModelMismatch`] when the analyzer's own
//! table disagrees with the PSDER expectation — a drift guard that keeps
//! the two levels from being "verified" against different contracts.

use dir::isa::{Inst, Opcode};
use dir::program::Program;
use psder::routines::RoutineLib;

use crate::absint::basic_effect;
use crate::diag::{DiagCode, Diagnostic};

/// Rechecks every distinct instruction of `program` against the PSDER
/// translation templates and the analyzer's stack model.
pub(crate) fn check(program: &Program, diags: &mut Vec<Diagnostic>) {
    let lib = RoutineLib::new();
    if let Err(errors) = psder::verify::check_program(&lib, &program.code) {
        for e in errors {
            diags.push(Diagnostic::global(
                DiagCode::TemplateImbalance,
                e.to_string(),
            ));
        }
    }

    // The analyzer's abstract model vs the PSDER expected-effect table.
    // `Call` and `Return` are excluded by both sides: their effects are
    // frame-mediated (argument consumption, result delivery) and modelled
    // with procedure metadata in pass 2.
    let mut seen: Vec<Inst> = Vec::new();
    for &inst in &program.code {
        if matches!(inst.opcode(), Opcode::Call | Opcode::Return) || seen.contains(&inst) {
            continue;
        }
        seen.push(inst);
        let (pops, pushes) = basic_effect(&inst).expect("call/return excluded");
        let model_net = pushes as i32 - pops as i32;
        let psder_net = psder::verify::expected_effect(inst);
        if model_net != psder_net {
            diags.push(Diagnostic::global(
                DiagCode::ModelMismatch,
                format!(
                    "abstract model nets {model_net} for {:?}, PSDER expects {psder_net}",
                    inst.opcode()
                ),
            ));
        }
    }
}
