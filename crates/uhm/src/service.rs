//! The service plane: an open-loop request front-end over
//! [`MachinePool`].
//!
//! The paper's UHM is a *host* machine — its point is serving resident
//! guest programs, not running one batch job. This module turns the
//! parallel pool into a system under traffic: a [`Service`] accepts
//! guest-program [`Request`]s, applies **admission control** from the
//! analyze plane's static DTB pressure bounds (reject or right-size
//! *before* execution), enqueues admitted requests into **per-tenant
//! fair queues** with optional quotas and a **queue-watermark
//! backpressure** gate, and dispatches onto workers — producing a
//! latency-under-load trajectory across stepped arrival rates.
//!
//! # Two clocks, one invariant
//!
//! The repository's core discipline (DESIGN.md §6) is that modeled
//! numbers are deterministic while host wall-clock is observational.
//! The service plane keeps both books:
//!
//! * **The modeled clock** drives everything user-visible. Arrivals are
//!   a seeded open-loop schedule in *modeled cycles* (the rate unit is
//!   requests per [`MCYCLE`]); each request's service time is its run's
//!   modeled cycle total (deterministic per image × mode); queueing,
//!   fair dispatch across `workers` servers, watermark shedding and
//!   per-request latency (completion − arrival) are computed by a
//!   discrete-event simulation on that clock. The entire latency
//!   trajectory — p50/p95/p99/p99.9 per load step — is therefore a pure
//!   function of `(requests, policy, seed)` and is committed as an
//!   exact baseline by the `service_load` bench. This is the
//!   simulation-first methodology of *Employing Simulation to
//!   Facilitate the Design of Dynamic Code Generators* (PAPERS.md):
//!   queue depths and admission thresholds are chosen by driving
//!   simulated load, not by guessing.
//! * **The host clock** stays observational. The requests the simulator
//!   serves are then *actually executed* on a [`MachinePool`] (schedule
//!   seed pinned to the service seed), so every served request's output
//!   and modeled metrics are bit-identical to a direct pool run of the
//!   same mix — the service layer adds policy, never semantics. The
//!   pool's wall-clock and host latencies ride along in
//!   [`StepRun::pool`] for throughput context.
//!
//! # Request lifecycle
//!
//! ```text
//! submit ─► admission (static pressure bound) ─► rejected("admission:")
//!    │            │ admit / right-size
//!    │            ▼
//!    │      per-tenant fair queue ──► shed("quota:") | shed("backpressure:")
//!    │            │ round-robin across tenants
//!    │            ▼
//!    │      dispatch on first free worker (modeled clock)
//!    │            │ real execution on MachinePool (host clock)
//!    │            ▼
//!    └──► completed | trapped | panicked
//! ```
//!
//! Full accounting holds by construction: every submitted request ends
//! in exactly one of the five outcome states, so
//! [`StepRun::lost`] is always zero.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use uhm::service::{Service, ServiceConfig};
//! use uhm::{Machine, Mode};
//!
//! let hir = hlr::compile("proc main() begin write 6 * 7; end")?;
//! let prog = dir::compiler::compile(&hir);
//! let machine = Arc::new(Machine::new(&prog, dir::encode::SchemeKind::Packed));
//!
//! let mut service = Service::new(ServiceConfig::default());
//! for i in 0..6 {
//!     let tenant = format!("tenant-{}", i % 2);
//!     service.submit(tenant, format!("req-{i}"), Arc::clone(&machine), Mode::Interpreter);
//! }
//! let step = service.run_at(4); // 4 requests per million modeled cycles
//! assert_eq!(step.outcome_count("completed"), 6);
//! assert_eq!(step.lost(), 0);
//! for r in &step.results {
//!     assert_eq!(r.outcome.report().unwrap().output, vec![42]);
//! }
//! # Ok::<(), hlr::Error>(())
//! ```

use std::collections::VecDeque;
use std::sync::Arc;

use dir::exec::Trap;
use telemetry::Percentiles;

use crate::machine::{Machine, Mode};
use crate::metrics::Report;
use crate::pool::{MachinePool, PoolRun, TenantOutcome};
use crate::resilience::AdmissionPolicy;

/// The arrival-rate unit: one million modeled cycles. A load step at
/// rate `r` schedules on average `r` request arrivals per `MCYCLE`
/// cycles of the modeled clock.
pub const MCYCLE: u64 = 1_000_000;

/// Modeled service cycles charged to a request whose program traps.
/// A trapping run consumes host work but reports no cycle total, so the
/// simulator charges this flat trap-handling cost instead; it is part of
/// the deterministic contract and committed baselines depend on it.
pub const TRAP_SERVICE_CYCLES: u64 = 1_000;

/// One guest-program request: a tenant identity (the fair-queue key), a
/// display name, and the program to run (a shared [`Machine`] plus
/// fetch-path [`Mode`]). Many requests may share one machine `Arc` —
/// that is the resident-program case the paper's host machine serves.
#[derive(Debug, Clone)]
pub struct Request {
    /// The owning tenant; requests of one tenant share a queue lane.
    pub tenant: String,
    /// Display name, e.g. the workload name.
    pub name: String,
    /// The shared, immutable host machine.
    pub machine: Arc<Machine>,
    /// The requested fetch-path configuration (admission may right-size
    /// a DTB mode before dispatch).
    pub mode: Mode,
}

/// The service's policy knobs: dispatch width, admission, queueing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceConfig {
    /// Dispatch width: the number of simulated servers on the modeled
    /// clock *and* the worker count of the host-side [`MachinePool`]
    /// (clamped to at least 1).
    pub workers: usize,
    /// Admission control from static DTB pressure bounds, applied per
    /// request before it enters any queue (see
    /// [`AdmissionPolicy`]).
    pub admission: AdmissionPolicy,
    /// Backpressure watermark: an arriving request is shed
    /// (`"backpressure:"`) when the total backlog across all tenant
    /// lanes has reached this depth. `None` = unbounded queue.
    pub queue_watermark: Option<usize>,
    /// Per-tenant quota: an arriving request is shed (`"quota:"`) when
    /// its tenant's own lane has reached this depth. `None` = no quota.
    pub tenant_quota: Option<usize>,
    /// Seed of the arrival-jitter stream; also pins the host pool's
    /// schedule seed so served-request placement replays.
    pub seed: u64,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            workers: 4,
            admission: AdmissionPolicy::default(),
            queue_watermark: None,
            tenant_quota: None,
            seed: 0,
        }
    }
}

/// How one request ended: the five-state request taxonomy.
///
/// `Rejected` and `Shed` both refuse work before execution, but at
/// different stages — rejection is *static* (the admission bound, known
/// before any traffic) while shedding is *dynamic* (queue state at the
/// arrival instant). The reason string's prefix (`"admission:"`,
/// `"quota:"`, `"backpressure:"`) names the policy that fired.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestOutcome {
    /// Served and ran to completion; output and modeled metrics inside.
    Completed(Box<Report>),
    /// Served, but the program trapped (guest-level failure).
    Trapped(Trap),
    /// Served, but the host-side run panicked; the payload is the panic
    /// message.
    Panicked(String),
    /// Refused statically by admission control (`"admission:"` reason).
    Rejected(String),
    /// Refused dynamically at arrival — tenant quota (`"quota:"`) or
    /// queue watermark (`"backpressure:"`).
    Shed(String),
}

impl RequestOutcome {
    /// `"completed"`, `"trapped"`, `"panicked"`, `"rejected"` or
    /// `"shed"` — the status string used by the JSON report.
    pub fn status(&self) -> &'static str {
        match self {
            RequestOutcome::Completed(_) => "completed",
            RequestOutcome::Trapped(_) => "trapped",
            RequestOutcome::Panicked(_) => "panicked",
            RequestOutcome::Rejected(_) => "rejected",
            RequestOutcome::Shed(_) => "shed",
        }
    }

    /// The completed report, if any.
    pub fn report(&self) -> Option<&Report> {
        match self {
            RequestOutcome::Completed(r) => Some(r.as_ref()),
            _ => None,
        }
    }

    /// Whether the request was dispatched to a worker at all
    /// (completed, trapped or panicked — as opposed to refused).
    pub fn served(&self) -> bool {
        matches!(
            self,
            RequestOutcome::Completed(_) | RequestOutcome::Trapped(_) | RequestOutcome::Panicked(_)
        )
    }
}

/// The result of one request within a load step, in submission order.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestResult {
    /// Index of the request in submission order.
    pub request: usize,
    /// The owning tenant.
    pub tenant: String,
    /// The request's display name.
    pub name: String,
    /// Arrival time on the modeled clock, in cycles.
    pub arrival_cycle: u64,
    /// Dispatch time on the modeled clock (0 for refused requests).
    pub start_cycle: u64,
    /// Modeled service time charged by the simulator (0 for refused
    /// requests; [`TRAP_SERVICE_CYCLES`] for trapping programs).
    pub service_cycles: u64,
    /// User-visible latency on the modeled clock: completion − arrival,
    /// i.e. queueing delay plus service time (0 for refused requests).
    pub latency_cycles: u64,
    /// The simulated server that served the request (0 for refused
    /// requests). Deterministic, unlike the host pool's worker indices.
    pub worker: usize,
    /// How the request ended.
    pub outcome: RequestOutcome,
}

/// One load step: every request of the mix driven through the service
/// at one open-loop arrival rate.
#[derive(Debug, Clone, PartialEq)]
pub struct StepRun {
    /// The step's arrival rate, in requests per [`MCYCLE`].
    pub rate_per_mcycle: u64,
    /// Per-request results, in submission order.
    pub results: Vec<RequestResult>,
    /// Peak total backlog across all tenant lanes during the step.
    pub queue_peak: usize,
    /// The host-side execution of the served requests: a real
    /// [`MachinePool`] run (schedule seed pinned), whose outputs are
    /// bit-identical to direct pool execution of the same mix. Host
    /// wall-clock and latencies in here are observational only.
    pub pool: PoolRun,
}

impl StepRun {
    /// Number of requests whose outcome carries the given
    /// [`RequestOutcome::status`] string. The full-accounting
    /// invariant: the five counts always sum to `results.len()`.
    pub fn outcome_count(&self, status: &str) -> usize {
        self.results
            .iter()
            .filter(|r| r.outcome.status() == status)
            .count()
    }

    /// Number of requests dispatched to a worker (completed + trapped +
    /// panicked).
    pub fn served(&self) -> usize {
        self.results.iter().filter(|r| r.outcome.served()).count()
    }

    /// Requests with no recorded outcome — always 0; the accounting
    /// invariant the bench and tests assert.
    pub fn lost(&self) -> usize {
        let statuses = ["completed", "trapped", "panicked", "rejected", "shed"];
        self.results.len()
            - statuses
                .iter()
                .map(|s| self.outcome_count(s))
                .sum::<usize>()
    }

    /// Modeled latencies of the served requests, in cycles.
    pub fn latencies_cycles(&self) -> Vec<f64> {
        self.results
            .iter()
            .filter(|r| r.outcome.served())
            .map(|r| r.latency_cycles as f64)
            .collect()
    }

    /// p50/p95/p99/p99.9 of the served requests' modeled latencies (in
    /// cycles) — one point of the latency-under-load trajectory.
    /// Deterministic, so the `service_load` baseline commits it exactly.
    pub fn latency_percentiles(&self) -> Percentiles {
        Percentiles::of(&self.latencies_cycles())
    }

    /// The step's makespan on the modeled clock: the last completion
    /// cycle across served requests (0 when nothing was served).
    pub fn makespan_cycles(&self) -> u64 {
        self.results
            .iter()
            .filter(|r| r.outcome.served())
            .map(|r| r.arrival_cycle + r.latency_cycles)
            .max()
            .unwrap_or(0)
    }
}

/// The trajectory of a stepped load sweep: one [`StepRun`] per arrival
/// rate, in sweep order.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceRun {
    /// The dispatch width the sweep ran with.
    pub workers: usize,
    /// The seed of the arrival streams and the pinned pool schedule.
    pub seed: u64,
    /// Per-rate step results, in sweep order.
    pub steps: Vec<StepRun>,
}

impl ServiceRun {
    /// Total requests driven across all steps.
    pub fn total_requests(&self) -> usize {
        self.steps.iter().map(|s| s.results.len()).sum()
    }

    /// Sum of one outcome's count across all steps.
    pub fn outcome_count(&self, status: &str) -> usize {
        self.steps.iter().map(|s| s.outcome_count(status)).sum()
    }

    /// Lost requests across all steps — always 0 (see
    /// [`StepRun::lost`]).
    pub fn lost(&self) -> usize {
        self.steps.iter().map(StepRun::lost).sum()
    }
}

/// How admission disposed of one request before queueing.
enum Gate {
    /// Admitted, with the effective (possibly right-sized) mode.
    Admit(Mode),
    /// Statically refused, with the `"admission:"` reason.
    Reject(String),
}

/// Per-tenant FIFO lanes with a persistent round-robin cursor — the
/// fair-queue discipline: each dispatch serves the next non-empty lane
/// after the previously served one, so a tenant flooding its own lane
/// cannot starve the others.
#[derive(Default)]
struct FairQueue {
    lanes: Vec<(String, VecDeque<usize>)>,
    cursor: usize,
    queued: usize,
}

impl FairQueue {
    fn lane_len(&self, tenant: &str) -> usize {
        self.lanes
            .iter()
            .find(|(t, _)| t == tenant)
            .map_or(0, |(_, q)| q.len())
    }

    fn push(&mut self, tenant: &str, request: usize) {
        match self.lanes.iter_mut().find(|(t, _)| t == tenant) {
            Some((_, q)) => q.push_back(request),
            None => {
                let mut q = VecDeque::new();
                q.push_back(request);
                self.lanes.push((tenant.to_string(), q));
            }
        }
        self.queued += 1;
    }

    /// Pops the head of the next non-empty lane at or after the cursor,
    /// then parks the cursor just past it.
    fn pop_next(&mut self) -> Option<usize> {
        let n = self.lanes.len();
        for k in 0..n {
            let idx = (self.cursor + k) % n;
            if let Some(request) = self.lanes[idx].1.pop_front() {
                self.cursor = (idx + 1) % n;
                self.queued -= 1;
                return Some(request);
            }
        }
        None
    }
}

/// The request front-end: a policy plus a submitted request mix, run at
/// one or more open-loop arrival rates (see the [module docs](self) for
/// the lifecycle and the two-clock contract).
#[derive(Debug, Clone, Default)]
pub struct Service {
    config: ServiceConfig,
    requests: Vec<Request>,
}

impl Service {
    /// Creates an empty service under the given policy.
    pub fn new(config: ServiceConfig) -> Service {
        Service {
            config,
            requests: Vec::new(),
        }
    }

    /// Submits a request; returns `self` for chaining. Submission order
    /// is arrival order within a step.
    pub fn submit(
        &mut self,
        tenant: impl Into<String>,
        name: impl Into<String>,
        machine: Arc<Machine>,
        mode: Mode,
    ) -> &mut Self {
        self.requests.push(Request {
            tenant: tenant.into(),
            name: name.into(),
            machine,
            mode,
        });
        self
    }

    /// The submitted request mix, in submission order.
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// The service's policy.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// A [`MachinePool`] loaded with the same request mix in submission
    /// order (requested modes, no service policy) — the direct-execution
    /// reference the service path must match bit-for-bit on outputs.
    pub fn direct_pool(&self) -> MachinePool {
        let mut pool = MachinePool::new(self.config.workers);
        for r in &self.requests {
            pool.push(r.name.clone(), Arc::clone(&r.machine), r.mode.clone());
        }
        pool
    }

    /// Seeded open-loop arrival schedule for one rate: request `i`
    /// arrives after the `i`-th jittered inter-arrival gap (uniform in
    /// `[mean/2, 3·mean/2]` where `mean = MCYCLE / rate`). Open loop:
    /// arrivals never wait for completions, which is what lets load
    /// exceed capacity and the queue actually build.
    fn arrivals(&self, rate: u64) -> Vec<u64> {
        let mean = (MCYCLE / rate.max(1)).max(1);
        let mut rng =
            hlr::rng::Rng::new(self.config.seed ^ rate.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut t = 0u64;
        self.requests
            .iter()
            .map(|_| {
                t += rng.range_u64(mean / 2 + 1, mean + mean / 2 + 2);
                t
            })
            .collect()
    }

    /// Static admission per request, memoized per image: the pressure
    /// bound is a property of the program, not of traffic, so it is
    /// computed once per distinct machine and reused across requests.
    fn gates(&self) -> Vec<Gate> {
        let policy = &self.config.admission;
        let mut bounds: Vec<(usize, analyze::PressureReport)> = Vec::new();
        self.requests
            .iter()
            .map(|r| {
                if policy.max_pressure_words.is_none() && !policy.right_size {
                    return Gate::Admit(r.mode.clone());
                }
                let key = Arc::as_ptr(&r.machine) as usize;
                let bound = match bounds.iter().find(|(k, _)| *k == key) {
                    Some((_, b)) => b.clone(),
                    None => {
                        let b = analyze::bound(r.machine.program());
                        bounds.push((key, b.clone()));
                        b
                    }
                };
                if let Some(max_words) = policy.max_pressure_words {
                    if u64::from(bound.total_words) > max_words {
                        return Gate::Reject(format!(
                            "admission: program needs {} translation words, bound is {max_words}",
                            bound.total_words
                        ));
                    }
                }
                let mut mode = r.mode.clone();
                if policy.right_size {
                    if let (Mode::Dtb(cfg), Some(hot)) = (&mode, &bound.hot) {
                        if hot.insts as usize > cfg.geometry.capacity() {
                            mode = Mode::Dtb(crate::dtb::DtbConfig::with_capacity(
                                bound.recommended.capacity(),
                            ));
                        }
                    }
                }
                Gate::Admit(mode)
            })
            .collect()
    }

    /// Modeled service time of one request, memoized per
    /// `(image, effective mode)`: modeled cycles are deterministic per
    /// image × mode, so one reference run prices every request that
    /// shares the pair. Trapping programs are charged
    /// [`TRAP_SERVICE_CYCLES`].
    fn service_cycles(
        probes: &mut Vec<((usize, Mode), u64)>,
        machine: &Arc<Machine>,
        mode: &Mode,
    ) -> u64 {
        let key = (Arc::as_ptr(machine) as usize, mode.clone());
        if let Some((_, cycles)) = probes.iter().find(|(k, _)| *k == key) {
            return *cycles;
        }
        let cycles = match machine.run(mode) {
            Ok(report) => report.metrics.cycles.total().max(1),
            Err(_) => TRAP_SERVICE_CYCLES,
        };
        probes.push((key, cycles));
        cycles
    }

    /// Drives the whole request mix through the service at one open-loop
    /// arrival rate (requests per [`MCYCLE`]); see the
    /// [module docs](self) for the lifecycle.
    ///
    /// Everything in the returned step except the host-side
    /// [`StepRun::pool`] observables is a pure function of
    /// `(requests, config, rate)`.
    pub fn run_at(&self, rate_per_mcycle: u64) -> StepRun {
        let rate = rate_per_mcycle.max(1);
        let arrivals = self.arrivals(rate);
        let gates = self.gates();
        let mut probes: Vec<((usize, Mode), u64)> = Vec::new();

        /// One request's disposition while the simulation runs.
        enum Slot {
            Refused(RequestOutcome),
            /// Dispatched: (start, service, worker, index into the
            /// dispatch-order pool).
            Served(u64, u64, usize, usize),
        }
        let mut slots: Vec<Option<Slot>> = (0..self.requests.len()).map(|_| None).collect();
        let mut queue = FairQueue::default();
        let mut queue_peak = 0usize;
        // effective (right-sized) mode per queued request, by index.
        let mut effective: Vec<Option<Mode>> = vec![None; self.requests.len()];
        let mut servers = vec![0u64; self.config.workers.max(1)];
        let mut dispatch_order: Vec<usize> = Vec::new();

        let mut next = 0usize; // next arrival to process
        loop {
            // The earliest instant some server could take new work.
            let (free_server, free_at) = servers
                .iter()
                .copied()
                .enumerate()
                .min_by_key(|&(i, t)| (t, i))
                .expect("at least one server");

            // Dispatch first whenever the next dispatch instant does not
            // come after the next arrival; otherwise admit the arrival.
            if queue.queued > 0 && (next >= arrivals.len() || free_at <= arrivals[next]) {
                let i = queue.pop_next().expect("queued > 0");
                let mode = effective[i].take().expect("queued requests were admitted");
                let service = Self::service_cycles(&mut probes, &self.requests[i].machine, &mode);
                let start = free_at.max(arrivals[i]);
                servers[free_server] = start + service;
                slots[i] = Some(Slot::Served(
                    start,
                    service,
                    free_server,
                    dispatch_order.len(),
                ));
                dispatch_order.push(i);
                effective[i] = Some(mode);
            } else if next < arrivals.len() {
                let i = next;
                next += 1;
                let tenant = &self.requests[i].tenant;
                match &gates[i] {
                    Gate::Reject(reason) => {
                        slots[i] = Some(Slot::Refused(RequestOutcome::Rejected(reason.clone())));
                    }
                    Gate::Admit(mode) => {
                        if let Some(quota) = self.config.tenant_quota {
                            if queue.lane_len(tenant) >= quota {
                                slots[i] = Some(Slot::Refused(RequestOutcome::Shed(format!(
                                    "quota: tenant '{tenant}' backlog {} at quota {quota}",
                                    queue.lane_len(tenant)
                                ))));
                                continue;
                            }
                        }
                        if let Some(watermark) = self.config.queue_watermark {
                            if queue.queued >= watermark {
                                slots[i] = Some(Slot::Refused(RequestOutcome::Shed(format!(
                                    "backpressure: queue depth {} at watermark {watermark}",
                                    queue.queued
                                ))));
                                continue;
                            }
                        }
                        effective[i] = Some(mode.clone());
                        queue.push(tenant, i);
                        queue_peak = queue_peak.max(queue.queued);
                    }
                }
            } else {
                break;
            }
        }

        // Host side: really execute the served requests, in dispatch
        // order, on a pool with the schedule pinned to the service seed.
        let mut pool = MachinePool::new(self.config.workers);
        for &i in &dispatch_order {
            let r = &self.requests[i];
            let mode = effective[i].clone().expect("served requests have a mode");
            pool.push(r.name.clone(), Arc::clone(&r.machine), mode);
        }
        pool.set_schedule_seed(Some(self.config.seed));
        let pool_run = pool.run();

        let results = slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                let r = &self.requests[i];
                let base = |outcome| RequestResult {
                    request: i,
                    tenant: r.tenant.clone(),
                    name: r.name.clone(),
                    arrival_cycle: arrivals[i],
                    start_cycle: 0,
                    service_cycles: 0,
                    latency_cycles: 0,
                    worker: 0,
                    outcome,
                };
                match slot.expect("every request is disposed") {
                    Slot::Refused(outcome) => base(outcome),
                    Slot::Served(start, service, worker, pool_index) => {
                        let outcome = match &pool_run.results[pool_index].outcome {
                            TenantOutcome::Completed(report) => {
                                RequestOutcome::Completed(report.clone())
                            }
                            TenantOutcome::Trapped(trap) => RequestOutcome::Trapped(trap.clone()),
                            TenantOutcome::Panicked(msg) => RequestOutcome::Panicked(msg.clone()),
                            // Without a supervisor the pool never sheds,
                            // quarantines or times tenants out.
                            other => RequestOutcome::Panicked(format!(
                                "unexpected pool outcome {:?}",
                                other.status()
                            )),
                        };
                        RequestResult {
                            start_cycle: start,
                            service_cycles: service,
                            latency_cycles: start + service - arrivals[i],
                            worker,
                            ..base(outcome)
                        }
                    }
                }
            })
            .collect();

        StepRun {
            rate_per_mcycle: rate,
            results,
            queue_peak,
            pool: pool_run,
        }
    }

    /// Runs the stepped sweep: the whole request mix replayed at each
    /// arrival rate, producing the latency-under-load trajectory.
    pub fn run_load(&self, rates_per_mcycle: &[u64]) -> ServiceRun {
        ServiceRun {
            workers: self.config.workers.max(1),
            seed: self.config.seed,
            steps: rates_per_mcycle
                .iter()
                .map(|&rate| self.run_at(rate))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dir::encode::SchemeKind;

    fn machine_for(src: &str) -> Arc<Machine> {
        let hir = hlr::compile(src).expect("test sources compile");
        let mut m = Machine::new(&dir::compiler::compile(&hir), SchemeKind::Packed);
        m.freeze_translations();
        Arc::new(m)
    }

    fn looping(iters: u32) -> String {
        format!(
            "proc main() begin int i := 0; \
             while i < {iters} do begin write i; i := i + 1; end end"
        )
    }

    fn sample_service(watermark: Option<usize>, quota: Option<usize>) -> Service {
        let m = machine_for(&looping(40));
        let mut s = Service::new(ServiceConfig {
            workers: 2,
            queue_watermark: watermark,
            tenant_quota: quota,
            seed: 7,
            ..ServiceConfig::default()
        });
        for i in 0..12 {
            s.submit(
                format!("tenant-{}", i % 3),
                format!("req-{i}"),
                Arc::clone(&m),
                Mode::Interpreter,
            );
        }
        s
    }

    #[test]
    fn every_request_is_accounted_at_any_rate() {
        let s = sample_service(Some(3), Some(2));
        for rate in [1, 10, 1000, 100_000] {
            let step = s.run_at(rate);
            assert_eq!(step.results.len(), 12);
            assert_eq!(step.lost(), 0, "rate {rate}");
        }
    }

    #[test]
    fn generous_rate_serves_everything() {
        let s = sample_service(Some(4), None);
        // One request per 1M cycles: each finishes long before the next
        // arrives, so the queue never builds and nothing is shed.
        let step = s.run_at(1);
        assert_eq!(step.outcome_count("completed"), 12);
        assert_eq!(step.outcome_count("shed"), 0);
        assert!(step.queue_peak <= 1);
    }

    #[test]
    fn steps_are_deterministic() {
        let s = sample_service(Some(3), Some(2));
        let a = s.run_at(500);
        let b = s.run_at(500);
        // Host-side pool observables differ; the modeled step does not.
        assert_eq!(a.results.len(), b.results.len());
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(x.arrival_cycle, y.arrival_cycle);
            assert_eq!(x.latency_cycles, y.latency_cycles);
            assert_eq!(x.outcome.status(), y.outcome.status());
        }
        assert_eq!(a.queue_peak, b.queue_peak);
    }

    #[test]
    fn watermark_sheds_with_backpressure_reason() {
        let s = sample_service(Some(2), None);
        // Everything arrives nearly at once; the two-deep queue sheds.
        let step = s.run_at(100_000);
        let shed = step.outcome_count("shed");
        assert!(shed > 0, "saturating load must shed");
        assert_eq!(
            step.outcome_count("completed") + shed,
            12,
            "shed + completed account for all requests"
        );
        for r in &step.results {
            if let RequestOutcome::Shed(reason) = &r.outcome {
                assert!(reason.starts_with("backpressure:"), "{reason}");
            }
        }
    }

    #[test]
    fn tenant_quota_sheds_only_the_flooding_tenant() {
        let m = machine_for(&looping(40));
        let mut s = Service::new(ServiceConfig {
            workers: 1,
            tenant_quota: Some(1),
            seed: 11,
            ..ServiceConfig::default()
        });
        // One tenant floods; one submits a single request last.
        for i in 0..8 {
            s.submit("flood", format!("f{i}"), Arc::clone(&m), Mode::Interpreter);
        }
        s.submit("light", "l0", Arc::clone(&m), Mode::Interpreter);
        let step = s.run_at(100_000);
        let flood_shed = step
            .results
            .iter()
            .filter(|r| r.tenant == "flood" && r.outcome.status() == "shed")
            .count();
        assert!(flood_shed > 0, "the flooding tenant trips its quota");
        let light = step.results.iter().find(|r| r.tenant == "light").unwrap();
        assert_eq!(light.outcome.status(), "completed");
        if let RequestOutcome::Shed(reason) = &step
            .results
            .iter()
            .find(|r| r.outcome.status() == "shed")
            .unwrap()
            .outcome
        {
            assert!(reason.starts_with("quota:"), "{reason}");
        }
    }

    #[test]
    fn admission_rejects_oversized_programs_statically() {
        let m = machine_for(&looping(40));
        let mut s = Service::new(ServiceConfig {
            admission: AdmissionPolicy {
                max_pressure_words: Some(1),
                right_size: false,
            },
            ..ServiceConfig::default()
        });
        s.submit("t", "r0", Arc::clone(&m), Mode::Interpreter);
        let step = s.run_at(10);
        assert_eq!(step.outcome_count("rejected"), 1);
        if let RequestOutcome::Rejected(reason) = &step.results[0].outcome {
            assert!(reason.starts_with("admission:"), "{reason}");
        }
        assert_eq!(step.served(), 0);
    }

    #[test]
    fn fair_queue_round_robins_across_lanes() {
        let mut q = FairQueue::default();
        q.push("a", 0);
        q.push("a", 1);
        q.push("a", 2);
        q.push("b", 3);
        q.push("c", 4);
        let order: Vec<usize> = std::iter::from_fn(|| q.pop_next()).collect();
        assert_eq!(order, vec![0, 3, 4, 1, 2]);
    }

    #[test]
    fn trajectory_degrades_monotonically_under_load() {
        let s = sample_service(None, None);
        let run = s.run_load(&[1, 2000, 200_000]);
        assert_eq!(run.steps.len(), 3);
        assert_eq!(run.lost(), 0);
        let p99: Vec<f64> = run
            .steps
            .iter()
            .map(|s| s.latency_percentiles().p99)
            .collect();
        // With no shedding, queueing delay strictly grows with rate.
        assert!(p99[0] < p99[1] && p99[1] < p99[2], "{p99:?}");
    }
}
