//! Tests of the INTERP instruction's control flow — the paper's Figure 4 —
//! exercising the DTB's hit, miss, translation, replacement and overflow
//! paths through the full machine.

use dir::encode::SchemeKind;
use memsim::Geometry;
use psder::MAX_TRANSLATION_WORDS;
use uhm::{Allocation, DtbConfig, Machine, Mode};

fn compile(src: &str) -> dir::Program {
    dir::compiler::compile(&hlr::compile(src).expect("compiles"))
}

/// A straight-line program visits each instruction once: every INTERP
/// misses, and the translator runs once per static instruction.
#[test]
fn straight_line_code_misses_once_per_instruction() {
    let program = compile("proc main() begin write 1; write 2; write 3; end");
    let machine = Machine::new(&program, SchemeKind::Packed);
    let report = machine
        .run(&Mode::Dtb(DtbConfig::with_capacity(64)))
        .expect("runs");
    let dtb = report.metrics.dtb.expect("dtb stats");
    assert_eq!(dtb.hits, 0, "nothing re-executes");
    assert_eq!(dtb.misses, report.metrics.instructions);
    assert_eq!(report.metrics.decoded, dtb.misses);
}

/// A tight loop achieves the paper's "hit ratio of unity while the DIR
/// program is in a tight loop": only the first traversal misses.
#[test]
fn tight_loop_hits_after_first_iteration() {
    let program = compile(
        "proc main() begin
            int i := 0;
            while i < 1000 do i := i + 1;
            write i;
        end",
    );
    let machine = Machine::new(&program, SchemeKind::Packed);
    let report = machine
        .run(&Mode::Dtb(DtbConfig::with_capacity(64)))
        .expect("runs");
    let dtb = report.metrics.dtb.expect("dtb stats");
    // Misses bounded by the static program size; everything else hits.
    assert!(dtb.misses <= program.len() as u64);
    assert!(dtb.hit_ratio() > 0.99, "hit ratio {}", dtb.hit_ratio());
}

/// With a DTB smaller than the loop, the LRU replacement path cycles
/// translations; correctness is unaffected and evictions are observed.
#[test]
fn undersized_dtb_replaces_but_stays_correct() {
    let program = compile(
        "proc main() begin
            int i := 0; int s := 0;
            while i < 200 do begin
                s := s + i * 2 - 1;
                i := i + 1;
            end
            write s;
        end",
    );
    let machine = Machine::new(&program, SchemeKind::Packed);
    let big = machine
        .run(&Mode::Dtb(DtbConfig::with_capacity(256)))
        .expect("runs");
    let tiny_cfg = DtbConfig {
        geometry: Geometry::new(2, 2),
        unit_words: MAX_TRANSLATION_WORDS,
        allocation: Allocation::Fixed,
        replacement: uhm::Replacement::Lru,
    };
    let tiny = machine.run(&Mode::Dtb(tiny_cfg)).expect("runs");
    assert_eq!(tiny.output, big.output);
    let stats = tiny.metrics.dtb.expect("dtb stats");
    assert!(stats.evictions > 0, "4-entry DTB must evict in a long loop");
    assert!(stats.hit_ratio() < big.metrics.dtb.unwrap().hit_ratio());
}

/// The two INTERP flavours: sequential/unconditional successors use the
/// immediate form (no stack traffic), computed successors (branch, call,
/// return) use the stack form. Both are exercised and agree with the
/// reference.
#[test]
fn both_interp_flavours_execute() {
    let program = compile(
        "proc choose(int n) -> int begin
            if n % 2 = 0 then return n / 2;
            return 3 * n + 1;
        end
        proc main() begin
            int v := 27;
            while v <> 1 do v := choose(v);
            write v;
        end",
    );
    // Statically verify both flavours appear in the translations.
    let mut has_imm = false;
    let mut has_stack = false;
    for (i, &inst) in program.code.iter().enumerate() {
        for short in psder::translate(inst, i as u32 + 1) {
            match short {
                psder::ShortInstr::Interp(psder::InterpMode::Imm(_)) => has_imm = true,
                psder::ShortInstr::Interp(psder::InterpMode::Stack) => has_stack = true,
                _ => {}
            }
        }
    }
    assert!(has_imm && has_stack);
    let machine = Machine::new(&program, SchemeKind::Contextual);
    let report = machine
        .run(&Mode::Dtb(DtbConfig::with_capacity(128)))
        .expect("runs");
    assert_eq!(report.output, vec![1]);
}

/// The return-address stack nests correctly through deep recursion under
/// the DTB (DIR-level CALL/RETURN via the DirCall/DirRet routines).
#[test]
fn recursion_through_the_dtb() {
    let program = compile(
        "proc sum(int n) -> int begin
            if n = 0 then return 0;
            return n + sum(n - 1);
        end
        proc main() begin write sum(100); end",
    );
    let machine = Machine::new(&program, SchemeKind::Huffman);
    let report = machine
        .run(&Mode::Dtb(DtbConfig::with_capacity(64)))
        .expect("runs");
    assert_eq!(report.output, vec![5050]);
    assert!(report.metrics.dtb.unwrap().hit_ratio() > 0.9);
}

/// Overflow allocation under pressure falls back to uncached execution
/// without corrupting results, and the overflow peak is bounded by the
/// configured block count.
#[test]
fn overflow_pressure_is_graceful() {
    let program = compile(
        "proc main() begin
            int i; int j; int acc := 0;
            for i := 0 to 20 do begin
                for j := 0 to 20 do begin
                    if (i + j) % 3 = 0 then acc := acc + i * j;
                    else acc := acc - 1;
                end
            end
            write acc;
        end",
    );
    let reference = dir::exec::run(&program).expect("runs");
    let machine = Machine::new(&program, SchemeKind::Packed);
    // A small overflow area still runs correctly under heavy replacement.
    let cfg = DtbConfig {
        geometry: Geometry::new(4, 2),
        unit_words: 2,
        allocation: Allocation::Overflow { blocks: 1 },
        replacement: uhm::Replacement::Lru,
    };
    let report = machine.run(&Mode::Dtb(cfg)).expect("runs");
    assert_eq!(report.output, reference);
    assert!(report.metrics.dtb.expect("dtb stats").overflow_peak <= 1);

    // With no overflow blocks at all, every 4-word translation must take
    // the uncacheable path — and the result is still exact.
    let cfg = DtbConfig {
        geometry: Geometry::new(4, 2),
        unit_words: 2,
        allocation: Allocation::Overflow { blocks: 0 },
        replacement: uhm::Replacement::Lru,
    };
    let report = machine.run(&Mode::Dtb(cfg)).expect("runs");
    assert_eq!(report.output, reference);
    let stats = report.metrics.dtb.expect("dtb stats");
    assert!(
        stats.uncached > 0,
        "zero blocks cannot hold any long translation"
    );
    assert_eq!(stats.overflow_peak, 0);
}

/// The lookup cost is charged exactly once per executed DIR instruction
/// (one associative probe per INTERP).
#[test]
fn one_lookup_per_interp() {
    let program = compile("proc main() begin int i; for i := 0 to 9 do write i; end");
    let machine = Machine::new(&program, SchemeKind::Packed);
    let report = machine
        .run(&Mode::Dtb(DtbConfig::with_capacity(32)))
        .expect("runs");
    let costs = uhm::CostModel::default();
    assert_eq!(
        report.metrics.cycles.lookup,
        report.metrics.instructions * costs.mem.tau_d
    );
}
