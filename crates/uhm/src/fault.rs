//! The fault plane: seeded injection of corruption into the machine.
//!
//! Rau's architecture makes the DTB a *redundant* copy of the working
//! set — the static DIR in level-2 memory is always the ground truth.
//! That redundancy is what the fault plane exercises: corruption of the
//! buffer or tag arrays is recoverable (invalidate and retranslate),
//! while corruption of the static DIR stream itself is terminal and
//! surfaces as a typed [`Trap::CorruptDir`](dir::exec::Trap).
//!
//! Four fault classes, each with its own per-opportunity probability:
//!
//! * **DIR bit flips** — one bit of the fetched instruction's encoded
//!   span flips in the machine's level-2 copy. Persistent: the flipped
//!   bit stays flipped for the rest of the run.
//! * **DTB word corruption** — one word of a random resident line is
//!   overwritten, leaving the line's guard checksum stale.
//! * **Tag poisoning** — one bit of a random tag/address-array entry
//!   flips.
//! * **Dropped L2 fetches** — a level-2 instruction fetch returns
//!   nothing and must be retried (transient).
//!
//! The injector is a splitmix64 stream (same generator as the seeded
//! program generator), so a `(seed, config)` pair replays exactly. All
//! rates at zero make the injector inert: it draws no random numbers and
//! perturbs nothing.

use hlr::rng::Rng;
use telemetry::FaultKind;

/// Fault-injection configuration: per-opportunity probabilities plus an
/// activity window in dynamic instructions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed of the injector's splitmix64 stream.
    pub seed: u64,
    /// Probability per DIR fetch of flipping one bit in the fetched
    /// instruction's encoded span (persistent level-2 corruption).
    pub dir_bit_rate: f64,
    /// Probability per executed DIR instruction of corrupting one word
    /// of a random resident DTB line.
    pub dtb_word_rate: f64,
    /// Probability per executed DIR instruction of poisoning a random
    /// tag/address-array entry.
    pub dtb_tag_rate: f64,
    /// Probability per level-2 fetch of the fetch being dropped.
    pub drop_fetch_rate: f64,
    /// First dynamic instruction at which injection activates.
    pub from_step: u64,
    /// Last dynamic instruction of the injection window (`None` = until
    /// the run ends). Together with `from_step` this targets faults at
    /// specific cycles instead of rates.
    pub until_step: Option<u64>,
}

impl FaultConfig {
    /// A configuration with every rate at zero: attached but inert.
    pub fn inert(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            dir_bit_rate: 0.0,
            dtb_word_rate: 0.0,
            dtb_tag_rate: 0.0,
            drop_fetch_rate: 0.0,
            from_step: 0,
            until_step: None,
        }
    }

    /// A configuration injecting only one fault class at `rate`.
    pub fn only(seed: u64, kind: FaultKind, rate: f64) -> FaultConfig {
        let mut cfg = FaultConfig::inert(seed);
        match kind {
            FaultKind::DirBit => cfg.dir_bit_rate = rate,
            FaultKind::DtbWord => cfg.dtb_word_rate = rate,
            FaultKind::DtbTag => cfg.dtb_tag_rate = rate,
            FaultKind::FetchDrop => cfg.drop_fetch_rate = rate,
        }
        cfg
    }

    /// `true` when every rate is zero (nothing will ever be injected).
    pub fn is_inert(&self) -> bool {
        self.dir_bit_rate <= 0.0
            && self.dtb_word_rate <= 0.0
            && self.dtb_tag_rate <= 0.0
            && self.drop_fetch_rate <= 0.0
    }

    fn rate(&self, kind: FaultKind) -> f64 {
        match kind {
            FaultKind::DirBit => self.dir_bit_rate,
            FaultKind::DtbWord => self.dtb_word_rate,
            FaultKind::DtbTag => self.dtb_tag_rate,
            FaultKind::FetchDrop => self.drop_fetch_rate,
        }
    }
}

/// Injection totals of one run, one counter per fault class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Bits flipped in the level-2 DIR stream.
    pub dir_bits_flipped: u64,
    /// Buffer-array words overwritten.
    pub dtb_words_corrupted: u64,
    /// Tag/address-array entries poisoned.
    pub dtb_tags_poisoned: u64,
    /// Level-2 fetches dropped.
    pub fetches_dropped: u64,
}

impl FaultStats {
    /// Total injections across all classes.
    pub fn total(&self) -> u64 {
        self.dir_bits_flipped
            + self.dtb_words_corrupted
            + self.dtb_tags_poisoned
            + self.fetches_dropped
    }
}

/// The seeded fault injector the machine consults at each opportunity.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    config: FaultConfig,
    rng: Rng,
    stats: FaultStats,
}

impl FaultInjector {
    /// Creates an injector for `config`.
    pub fn new(config: FaultConfig) -> FaultInjector {
        FaultInjector {
            config,
            rng: Rng::new(config.seed),
            stats: FaultStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Injection totals so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Decides whether a fault of `kind` fires at dynamic instruction
    /// `step`. Zero-rate classes (and steps outside the activity window)
    /// never fire and never advance the random stream, so an inert
    /// injector is byte-for-byte invisible.
    pub fn roll(&mut self, kind: FaultKind, step: u64) -> bool {
        let rate = self.config.rate(kind);
        if rate <= 0.0
            || step < self.config.from_step
            || self.config.until_step.is_some_and(|until| step > until)
        {
            return false;
        }
        self.rng.bool_with(rate)
    }

    /// Records that a fault of `kind` was actually applied. Kept separate
    /// from [`FaultInjector::roll`] because some injections find no
    /// target (e.g. a word corruption landing on an empty way).
    pub fn note(&mut self, kind: FaultKind) {
        match kind {
            FaultKind::DirBit => self.stats.dir_bits_flipped += 1,
            FaultKind::DtbWord => self.stats.dtb_words_corrupted += 1,
            FaultKind::DtbTag => self.stats.dtb_tags_poisoned += 1,
            FaultKind::FetchDrop => self.stats.fetches_dropped += 1,
        }
    }

    /// Uniform value in `[0, n)` (for picking a way, bit or word).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn pick(&mut self, n: u64) -> u64 {
        self.rng.range_u64(0, n)
    }

    /// Flips one bit of a short word's payload (or its variant, for
    /// payload-free words) — the single-bit corruption model for the
    /// buffer array.
    pub fn corrupt_word(&mut self, w: psder::ShortInstr) -> psder::ShortInstr {
        use psder::{InterpMode, PopMode, PushMode, ShortInstr};
        match w {
            ShortInstr::Push(PushMode::Imm(v)) => {
                ShortInstr::Push(PushMode::Imm(v ^ (1i64 << self.pick(64))))
            }
            ShortInstr::Push(PushMode::Local(s)) => {
                ShortInstr::Push(PushMode::Local(s ^ (1 << self.pick(16))))
            }
            ShortInstr::Push(PushMode::Global(s)) => {
                ShortInstr::Push(PushMode::Global(s ^ (1 << self.pick(16))))
            }
            ShortInstr::Pop(PopMode::Local(s)) => {
                ShortInstr::Pop(PopMode::Local(s ^ (1 << self.pick(16))))
            }
            ShortInstr::Pop(PopMode::Global(s)) => {
                ShortInstr::Pop(PopMode::Global(s ^ (1 << self.pick(16))))
            }
            ShortInstr::Interp(InterpMode::Imm(a)) => {
                ShortInstr::Interp(InterpMode::Imm(a ^ (1 << self.pick(16))))
            }
            // Payload-free variants: corrupt by flipping the variant.
            ShortInstr::Pop(PopMode::Discard) => ShortInstr::Interp(InterpMode::Stack),
            ShortInstr::Interp(InterpMode::Stack) => ShortInstr::Pop(PopMode::Discard),
            ShortInstr::Call(_) => ShortInstr::Push(PushMode::Imm(self.rng.next_u64() as i64)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_injector_never_fires_or_advances() {
        let mut inj = FaultInjector::new(FaultConfig::inert(7));
        for step in 0..1000 {
            for kind in [
                FaultKind::DirBit,
                FaultKind::DtbWord,
                FaultKind::DtbTag,
                FaultKind::FetchDrop,
            ] {
                assert!(!inj.roll(kind, step));
            }
        }
        assert_eq!(inj.stats(), FaultStats::default());
        // The random stream was never advanced: the next draw equals a
        // fresh generator's first draw.
        assert_eq!(inj.rng.next_u64(), Rng::new(7).next_u64());
    }

    #[test]
    fn rates_are_roughly_respected() {
        let mut inj = FaultInjector::new(FaultConfig::only(11, FaultKind::DtbWord, 0.25));
        let fired = (0..10_000)
            .filter(|&s| inj.roll(FaultKind::DtbWord, s))
            .count();
        assert!((2_000..3_000).contains(&fired), "fired {fired}");
    }

    #[test]
    fn activity_window_gates_injection() {
        let cfg = FaultConfig {
            from_step: 100,
            until_step: Some(200),
            ..FaultConfig::only(3, FaultKind::DirBit, 1.0)
        };
        let mut inj = FaultInjector::new(cfg);
        assert!(!inj.roll(FaultKind::DirBit, 99));
        assert!(inj.roll(FaultKind::DirBit, 100));
        assert!(inj.roll(FaultKind::DirBit, 200));
        assert!(!inj.roll(FaultKind::DirBit, 201));
    }

    #[test]
    fn corrupt_word_always_changes_the_word() {
        use psder::{InterpMode, PopMode, PushMode, ShortInstr};
        let mut inj = FaultInjector::new(FaultConfig::inert(5));
        let samples = [
            ShortInstr::Push(PushMode::Imm(0)),
            ShortInstr::Push(PushMode::Local(7)),
            ShortInstr::Push(PushMode::Global(7)),
            ShortInstr::Pop(PopMode::Discard),
            ShortInstr::Pop(PopMode::Local(1)),
            ShortInstr::Pop(PopMode::Global(1)),
            ShortInstr::Call(psder::RoutineId::HaltR),
            ShortInstr::Interp(InterpMode::Imm(12)),
            ShortInstr::Interp(InterpMode::Stack),
        ];
        for w in samples {
            for _ in 0..32 {
                assert_ne!(inj.corrupt_word(w), w, "{w:?} unchanged");
            }
        }
    }

    #[test]
    fn replay_is_deterministic_per_seed() {
        let cfg = FaultConfig::only(42, FaultKind::DtbTag, 0.5);
        let mut a = FaultInjector::new(cfg);
        let mut b = FaultInjector::new(cfg);
        for step in 0..500 {
            assert_eq!(
                a.roll(FaultKind::DtbTag, step),
                b.roll(FaultKind::DtbTag, step)
            );
        }
    }
}
