//! **E20 — the generative conformance sweep:** push hundreds of seeded
//! random RAUL programs through the full cross-engine oracle — reference
//! evaluator × DIR executor (base and fused) × PSDER interpreter ×
//! machine interpreter/DTB/I-cache modes × tree/table decoders ×
//! trusted verified-image mode × profiled and miss-classified runs —
//! and assert bit-identical outputs, identical traps and the metric
//! identities the planes promise. A pool stage re-runs a batch of
//! generated programs as multi-tenant workloads and compares every
//! tenant against its reference.
//!
//! Programs are generated under a rotating set of *feature profiles*
//! (scalar-only, call-free, flat, division-free, I/O-heavy, trapping,
//! ...) and the sweep accounts what was actually exercised: opcodes
//! (static and dynamic), static opcode pairs, encoding schemes, DTB
//! tiers, miss classes and trap classes.
//!
//! On any divergence the delta-debugging shrinker reduces the program
//! to a minimal reproducing source file, written under
//! `tests/golden/regressions/` for triage and permanent regression
//! coverage.
//!
//! Run with `cargo run -p uhm-bench --release --bin conformance_sweep`.
//! `--programs N` overrides the program count (default 240).
//! With `--json`, emits a versioned RunReport whose output section
//! carries the full coverage sets (the CI artifact).
//! With `--smoke`, exits non-zero if any divergence survives shrinking
//! or any coverage dimension regresses below the committed floor
//! (`baselines/conformance_sweep.json`).

use std::process::ExitCode;
use std::sync::Arc;

use conformance::{run_case, shrink, CaseConfig, Coverage, Injection};
use dir::encode::SchemeKind;
use hlr::generate::Config;
use telemetry::Json;
use uhm::{DtbConfig, Machine, MachinePool, Mode};
use uhm_bench::{bench_report, json_flag};

/// Committed coverage floors; `--smoke` fails when any dimension of the
/// measured coverage falls below its floor.
const BASELINE: &str = include_str!("../../baselines/conformance_sweep.json");

/// Base seed of the sweep (stable so CI coverage is reproducible).
const SEED: u64 = 0xC0_4F0C;

/// Default number of generated programs (the issue floor is 200).
const DEFAULT_PROGRAMS: usize = 240;

/// DTB capacities the sweep cycles through: tight enough for capacity
/// and conflict misses, large enough for a hit-dominated tier-2 run.
const CAPACITIES: [usize; 3] = [8, 64, 256];

/// Tenants per pool batch in the multi-tenant stage.
const POOL_BATCH: usize = 24;

/// Shrinker budget per divergence, in oracle invocations.
const SHRINK_TESTS: usize = 2_000;

/// One named generator feature profile.
struct Profile {
    name: &'static str,
    config: Config,
}

/// The rotating feature profiles. Together they cover every toggle of
/// the generator: each axis is exercised both on and off.
fn profiles() -> Vec<Profile> {
    let base = Config::default();
    vec![
        Profile {
            name: "everything",
            config: base,
        },
        Profile {
            name: "scalar-only",
            config: Config {
                arrays: false,
                ..base
            },
        },
        Profile {
            name: "call-free",
            config: Config {
                calls: false,
                ..base
            },
        },
        Profile {
            name: "flat",
            config: Config {
                max_loop_nesting: 1,
                ..base
            },
        },
        Profile {
            name: "division-free",
            config: Config {
                div_mod: false,
                ..base
            },
        },
        Profile {
            name: "io-heavy",
            config: Config {
                extra_writes: 12,
                ..base
            },
        },
        Profile {
            name: "trapping",
            config: Config {
                trapping: true,
                ..base
            },
        },
        Profile {
            name: "trapping-deep",
            config: Config {
                trapping: true,
                max_expr_depth: 4,
                stmts_per_proc: 10,
                ..base
            },
        },
    ]
}

/// A divergence the sweep found, with its shrunk reproducer.
struct Failure {
    seed: u64,
    profile: &'static str,
    scheme: SchemeKind,
    divergences: Vec<String>,
    repro_path: Option<String>,
    repro_lines: usize,
}

/// Where shrunk reproducers are committed.
fn regressions_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/regressions")
}

/// Shrinks a diverging program and writes the minimal source under
/// `tests/golden/regressions/`. Returns `(path, line_count)`.
fn shrink_and_write(
    seed: u64,
    ast: &hlr::ast::Program,
    cfg: &CaseConfig,
) -> (Option<String>, usize) {
    let (small, stats) = shrink(ast, SHRINK_TESTS, |candidate| {
        run_case(candidate, cfg, Injection::None)
            .map(|r| !r.conforms())
            .unwrap_or(false)
    });
    let source = hlr::pretty::print(&small);
    let lines = source.lines().count();
    eprintln!(
        "conformance: seed {seed} diverged; shrunk to {lines} lines \
         in {} tests ({} reductions)",
        stats.tests, stats.accepted
    );
    let dir = regressions_dir();
    let path = dir.join(format!("sweep_seed_{seed:x}.raul"));
    let header = format!(
        "// Shrunk reproducer: conformance_sweep seed {seed:#x}, scheme {}.\n\
         // Every engine must agree on this program; see tests/conformance_plane.rs.\n",
        cfg.scheme.label()
    );
    match std::fs::create_dir_all(&dir)
        .and_then(|()| std::fs::write(&path, format!("{header}{source}")))
    {
        Ok(()) => (Some(path.display().to_string()), lines),
        Err(e) => {
            eprintln!("conformance: could not write reproducer: {e}");
            (None, lines)
        }
    }
}

/// The multi-tenant stage: run `batch` generated programs as pool
/// tenants (DTB mode, shared worker threads) and compare each tenant's
/// output against its single-machine reference. Returns divergence
/// descriptions.
fn pool_stage(batch: &[(u64, dir::Program, Vec<i64>)]) -> Vec<String> {
    if batch.is_empty() {
        return Vec::new();
    }
    let mut pool = MachinePool::new(4);
    for (seed, program, _) in batch {
        let machine = Machine::new(program, SchemeKind::PairHuffman);
        pool.push(
            format!("gen_{seed:x}"),
            Arc::new(machine),
            Mode::Dtb(DtbConfig::with_capacity(64)),
        );
    }
    let run = pool.run();
    let mut diverged = Vec::new();
    for (result, (seed, _, want)) in run.results.iter().zip(batch) {
        match result.outcome.report() {
            Some(report) if &report.output == want => {}
            Some(_) => diverged.push(format!("pool tenant gen_{seed:x}: output mismatch")),
            None => diverged.push(format!(
                "pool tenant gen_{seed:x}: unexpected outcome {:?}",
                result.outcome
            )),
        }
    }
    diverged
}

fn parse_programs_flag() -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--programs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_PROGRAMS)
}

fn main() -> ExitCode {
    let json = json_flag();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n_programs = parse_programs_flag();
    let profiles = profiles();
    let schemes = SchemeKind::all();

    let mut coverage = Coverage::new();
    let mut failures: Vec<Failure> = Vec::new();
    let mut pool_batch: Vec<(u64, dir::Program, Vec<i64>)> = Vec::new();

    for i in 0..n_programs {
        let seed = SEED + i as u64;
        let profile = &profiles[i % profiles.len()];
        let cfg = CaseConfig {
            scheme: schemes[i % schemes.len()],
            dtb_capacity: CAPACITIES[i % CAPACITIES.len()],
        };
        let ast = hlr::generate::program(seed, &profile.config);
        let report = match run_case(&ast, &cfg, Injection::None) {
            Ok(r) => r,
            Err(e) => {
                // The generator promises valid programs; an invalid one
                // is itself a conformance failure.
                failures.push(Failure {
                    seed,
                    profile: profile.name,
                    scheme: cfg.scheme,
                    divergences: vec![format!("generator produced invalid program: {e}")],
                    repro_path: None,
                    repro_lines: 0,
                });
                continue;
            }
        };
        coverage.merge(&report.coverage);
        if !report.conforms() {
            let (repro_path, repro_lines) = shrink_and_write(seed, &ast, &cfg);
            failures.push(Failure {
                seed,
                profile: profile.name,
                scheme: cfg.scheme,
                divergences: report.divergences.iter().map(ToString::to_string).collect(),
                repro_path,
                repro_lines,
            });
        } else if let Ok(output) = &report.reference {
            // Feed trap-free programs to the multi-tenant stage.
            if pool_batch.len() < POOL_BATCH {
                if let Ok(hir) = hlr::sema::analyze(&ast) {
                    pool_batch.push((seed, dir::compiler::compile(&hir), output.clone()));
                }
            }
        }
    }

    let pool_diverged = pool_stage(&pool_batch);
    let baseline = Json::parse(BASELINE.trim()).expect("committed baseline parses");
    let floor = baseline
        .get("coverage")
        .expect("baseline has a coverage floor");
    let violations = coverage.check_floor(floor);
    let pass = failures.is_empty() && pool_diverged.is_empty() && violations.is_empty();

    if json {
        let failure_rows: Vec<Json> = failures
            .iter()
            .map(|f| {
                Json::obj(vec![
                    ("seed", format!("{:#x}", f.seed).into()),
                    ("profile", f.profile.into()),
                    ("scheme", f.scheme.label().into()),
                    (
                        "divergences",
                        Json::Arr(f.divergences.iter().map(|d| d.as_str().into()).collect()),
                    ),
                    (
                        "repro",
                        f.repro_path.as_deref().map_or(Json::Null, Json::from),
                    ),
                    ("repro_lines", (f.repro_lines as u64).into()),
                ])
            })
            .collect();
        let rows = vec![Json::obj(vec![
            ("coverage", coverage.to_json()),
            ("failures", Json::Arr(failure_rows)),
            (
                "pool_divergences",
                Json::Arr(pool_diverged.iter().map(|d| d.as_str().into()).collect()),
            ),
            (
                "baseline_violations",
                Json::Arr(violations.iter().map(|v| v.as_str().into()).collect()),
            ),
            ("pass", pass.into()),
        ])];
        let config = Json::obj(vec![
            ("programs", (n_programs as u64).into()),
            ("profiles", (profiles.len() as u64).into()),
            ("schemes", (schemes.len() as u64).into()),
            ("capacities", (CAPACITIES.len() as u64).into()),
            ("pool_batch", (pool_batch.len() as u64).into()),
            ("seed", format!("{SEED:#x}").into()),
        ]);
        println!(
            "{}",
            bench_report("conformance_sweep", config, rows).render()
        );
    } else {
        println!(
            "conformance sweep: {n_programs} generated programs x {} profiles x {} schemes",
            profiles.len(),
            schemes.len()
        );
        println!(
            "  coverage: {} static opcodes, {} dynamic, {} opcode pairs, \
             {} schemes, {} tiers, {} miss classes, {} trap classes",
            coverage.static_opcodes.len(),
            coverage.dynamic_opcodes.len(),
            coverage.opcode_pairs.len(),
            coverage.schemes.len(),
            coverage.tiers.len(),
            coverage.miss_classes.len(),
            coverage.trap_classes.len()
        );
        println!(
            "  dynamic instructions: {} across {} cases; pool stage: {} tenants",
            coverage.dyn_instructions,
            coverage.cases,
            pool_batch.len()
        );
        for f in &failures {
            println!(
                "  FAIL seed {:#x} ({} / {}): {}",
                f.seed,
                f.profile,
                f.scheme.label(),
                f.divergences.join("; ")
            );
            if let Some(p) = &f.repro_path {
                println!("       reproducer ({} lines): {p}", f.repro_lines);
            }
        }
        for d in &pool_diverged {
            println!("  FAIL {d}");
        }
        for v in &violations {
            println!("  FAIL {v}");
        }
        if pass {
            println!("  all engines agree on every program");
        }
    }

    if smoke {
        if !pass {
            eprintln!(
                "conformance smoke FAIL: {} divergent programs, {} pool divergences, \
                 {} coverage regressions",
                failures.len(),
                pool_diverged.len(),
                violations.len()
            );
            return ExitCode::FAILURE;
        }
        println!(
            "conformance smoke PASS: {n_programs} programs, {} cases, zero divergences, \
             coverage at or above baseline",
            coverage.cases
        );
    }
    ExitCode::SUCCESS
}
