//! **Multi-level dynamic translation (§4):** the paper notes that "when
//! the dissimilarities between the representations ... are great, it is
//! possible that a number of levels of dynamic translation will be
//! required". This experiment adds a second, larger translation store
//! behind a small first-level DTB and measures when the extra level pays:
//! first-level misses that hit the second level are *promoted* (copied)
//! instead of re-decoded and re-translated.
//!
//! Run with `cargo run -p uhm-bench --bin two_level --release`.
//! With `--json`, emits a versioned RunReport instead of the text table.

use dir::encode::SchemeKind;
use telemetry::Json;
use uhm::{DtbConfig, Machine, Mode};
use uhm_bench::{bench_report, json_flag, workloads};

fn main() {
    let json = json_flag();
    let l1_caps = [4usize, 8, 16, 32];
    if !json {
        println!("Two-level dynamic translation (L2 store: 512 entries at tau_dtb2 = 5)\n");
        println!(
            "{:>14} | {}",
            "workload",
            l1_caps
                .iter()
                .map(|c| format!("{:>10} {:>10}", format!("1L@{c}"), format!("2L@{c}")))
                .collect::<Vec<_>>()
                .join(" | ")
        );
        println!("{}", "-".repeat(17 + 24 * l1_caps.len()));
    }
    let mut rows = Vec::new();
    for w in workloads() {
        let machine = Machine::new(&w.base, SchemeKind::PairHuffman);
        let mut cells = Vec::new();
        let mut points = Vec::new();
        for &cap in &l1_caps {
            let single = machine
                .run(&Mode::Dtb(DtbConfig::with_capacity(cap)))
                .expect("samples are trap-free");
            let two = machine
                .run(&Mode::TwoLevelDtb {
                    l1: DtbConfig::with_capacity(cap),
                    l2: DtbConfig::with_capacity(512),
                })
                .expect("samples are trap-free");
            let (t1l, t2l) = (
                single.metrics.time_per_instruction(),
                two.metrics.time_per_instruction(),
            );
            cells.push(format!("{t1l:>10.2} {t2l:>10.2}"));
            points.push(Json::obj(vec![
                ("l1_entries", (cap as u64).into()),
                ("single_level_time", t1l.into()),
                ("two_level_time", t2l.into()),
                ("promote_cycles", two.metrics.cycles.promote.into()),
            ]));
        }
        if json {
            rows.push(Json::obj(vec![
                ("workload", w.name.into()),
                ("points", Json::Arr(points)),
            ]));
        } else {
            println!("{:>14} | {}", w.name, cells.join(" | "));
        }
    }
    if json {
        let config = Json::obj(vec![
            ("l2_entries", 512u64.into()),
            (
                "l1_capacities",
                Json::Arr(l1_caps.iter().map(|&c| (c as u64).into()).collect()),
            ),
        ]);
        println!("{}", bench_report("two_level", config, rows).render());
        return;
    }
    println!("\nReading: cycles per DIR instruction, single-level (1L) vs two-level");
    println!("(2L) at each L1 capacity. The second level pays exactly where the");
    println!("working set overflows L1 (small capacities, recursive workloads):");
    println!("promotion at tau_dtb2 per word replaces a full fetch-decode-translate.");
    println!("Once L1 holds the working set the two probes tie, as §4 predicts for");
    println!("representations that are not 'greatly dissimilar'.");
}
