//! Canonical Huffman coding over small symbol alphabets.
//!
//! Implements the "sophisticated encoding of the Huffman type" from the
//! paper's Section 3.2: symbols that occur often in the *static* program
//! representation get short codes. Code *lengths* come from Huffman's
//! algorithm; the bit patterns are then reassigned in canonical order
//! (sorted by length, then symbol), which leaves every modeled quantity —
//! program bits, decode cost, table size — untouched while making the
//! codebook amenable to table-driven decoding.
//!
//! Two decode paths share one cursor discipline:
//! [`Tree::decode`] walks the binary decode tree bit by bit — the
//! reference oracle whose cost profile matches the paper's "two
//! instructions per level of decoding" — while [`Tree::decode_table`]
//! peeks a [`LUT_BITS`]-bit window, resolves short codes in one lookup,
//! and falls back to the tree walk for codes longer than the window.
//! Both report the same `(symbol, bits_consumed)` on the same streams and
//! fail on the same truncated streams, so the modeled decode-cost
//! accounting is identical whichever path runs.

use crate::bitstream::{BitReader, BitWriter, BitsExhausted};

/// Window width of the decode lookup table. Codes at most this long
/// resolve in a single peek; longer codes (rare by construction — they
/// belong to low-frequency symbols) take the tree-walk slow path.
pub const LUT_BITS: u32 = 10;

/// One lookup-table slot: the symbol whose code is a prefix of the
/// window, and that code's length. `len == 0` marks a window whose code
/// is longer than the table is wide (slow path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct LutEntry {
    sym: u32,
    len: u32,
}

/// A Huffman codebook for symbols `0..n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tree {
    /// `codes[s]` is the (code, width) for symbol `s`; zero-frequency
    /// symbols still receive a code so that any program can be encoded.
    /// Bit patterns are canonical: sorted by (width, symbol).
    codes: Vec<(u64, u32)>,
    /// Flattened decode tree: nodes of `(left, right)`, negative values are
    /// `-(symbol + 1)` leaves, non-negative are node indices. Node 0 is the
    /// root.
    nodes: Vec<(i32, i32)>,
    /// `1 << lut_bits` slots indexed by the next `lut_bits` bits of the
    /// stream. Host-side acceleration only: deliberately *not* part of
    /// [`Tree::table_bits`], which models the interpreter the paper costs.
    lut: Vec<LutEntry>,
    /// Window width actually used: `min(LUT_BITS, longest code)`.
    lut_bits: u32,
}

impl Tree {
    /// Builds a codebook from symbol frequencies.
    ///
    /// Zero frequencies are bumped to one so every symbol remains
    /// encodable (the paper's encodings must handle any legal program, not
    /// just those seen when gathering statistics).
    ///
    /// # Panics
    ///
    /// Panics if `freqs` is empty.
    pub fn from_frequencies(freqs: &[u64]) -> Tree {
        assert!(!freqs.is_empty(), "alphabet must be non-empty");
        let n = freqs.len();
        if n == 1 {
            // Degenerate alphabet: one symbol, one-bit code. Both window
            // halves resolve to it — mirroring the tree, whose single
            // node leads to symbol 0 on either bit.
            return Tree {
                codes: vec![(0, 1)],
                nodes: vec![(-1, -1)],
                lut: vec![LutEntry { sym: 0, len: 1 }; 2],
                lut_bits: 1,
            };
        }
        // Huffman's algorithm with a simple sorted work list (alphabets here
        // are tiny, so O(n^2) is irrelevant).
        #[derive(Debug)]
        enum Node {
            Leaf(usize),
            Internal(Box<Node>, Box<Node>),
        }
        let mut work: Vec<(u64, u64, Node)> = freqs
            .iter()
            .enumerate()
            .map(|(i, &f)| (f.max(1), i as u64, Node::Leaf(i)))
            .collect();
        let mut tiebreak = n as u64;
        while work.len() > 1 {
            // Stable selection: lowest frequency, then lowest tiebreak, so
            // the tree is deterministic.
            work.sort_by_key(|&(f, t, _)| (f, t));
            let (f1, _, n1) = work.remove(0);
            let (f2, _, n2) = work.remove(0);
            work.push((
                f1 + f2,
                tiebreak,
                Node::Internal(Box::new(n1), Box::new(n2)),
            ));
            tiebreak += 1;
        }
        let root = work.pop().expect("work list non-empty").2;

        // Only the code *lengths* come from the tree shape; bit patterns
        // are reassigned canonically below. Lengths alone determine every
        // modeled quantity (program bits, decode levels, Kraft sum).
        let mut lengths = vec![0u32; n];
        fn depths(node: &Node, depth: u32, lengths: &mut [u32]) {
            match node {
                Node::Leaf(sym) => lengths[*sym] = depth.max(1),
                Node::Internal(l, r) => {
                    depths(l, depth + 1, lengths);
                    depths(r, depth + 1, lengths);
                }
            }
        }
        depths(&root, 0, &mut lengths);

        // Canonical assignment: symbols sorted by (length, symbol) receive
        // consecutive codes, left-shifted at each length increase. Kraft
        // equality of Huffman lengths guarantees no overflow.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&s| (lengths[s], s));
        let mut codes = vec![(0u64, 0u32); n];
        let mut code = 0u64;
        let mut prev_len = 0u32;
        for &s in &order {
            let len = lengths[s];
            code <<= len - prev_len;
            codes[s] = (code, len);
            code += 1;
            prev_len = len;
        }

        let nodes = decode_nodes(&codes);
        let (lut, lut_bits) = decode_lut(&codes);
        Tree {
            codes,
            nodes,
            lut,
            lut_bits,
        }
    }

    /// Number of symbols in the alphabet.
    pub fn alphabet_len(&self) -> usize {
        self.codes.len()
    }

    /// The code width in bits for `symbol`.
    ///
    /// # Panics
    ///
    /// Panics if `symbol` is out of range.
    pub fn width(&self, symbol: usize) -> u32 {
        self.codes[symbol].1
    }

    /// Writes the code for `symbol`.
    ///
    /// # Panics
    ///
    /// Panics if `symbol` is out of range.
    pub fn encode(&self, symbol: usize, out: &mut BitWriter) {
        let (code, width) = self.codes[symbol];
        out.write(code, width);
    }

    /// Reads one symbol, returning `(symbol, bits_consumed)`.
    ///
    /// # Errors
    ///
    /// Returns [`BitsExhausted`] if the stream ends mid-code.
    pub fn decode(&self, input: &mut BitReader<'_>) -> Result<(usize, u32), BitsExhausted> {
        // Degenerate single-symbol alphabet still consumes its 1-bit code.
        if self.codes.len() == 1 {
            input.read_bitwise(1)?;
            return Ok((0, 1));
        }
        let mut node = 0i32;
        let mut bits = 0u32;
        loop {
            let bit = input.read_bit()?;
            bits += 1;
            let (l, r) = self.nodes[node as usize];
            let next = if bit { r } else { l };
            if next < 0 {
                return Ok(((-next - 1) as usize, bits));
            }
            node = next;
        }
    }

    /// Reads one symbol through the lookup table: one peek resolves any
    /// code at most [`LUT_BITS`] long; longer codes fall back to the tree
    /// walk. Returns exactly what [`Tree::decode`] returns on the same
    /// stream — same symbol, same consumed bits, same `BitsExhausted` on
    /// truncation — only the host cost differs.
    ///
    /// Why truncation parity holds: the table is filled so that every
    /// window sharing a code prefix maps to that code's entry. If the
    /// entry's length fits in the remaining bits, those bits *are* the
    /// code (zero padding past the end never reaches them). If it does
    /// not fit, prefix-freeness means no shorter code fits either, so the
    /// oracle exhausts the stream just as `consume` does here.
    ///
    /// # Errors
    ///
    /// Returns [`BitsExhausted`] if the stream ends mid-code.
    #[inline]
    pub fn decode_table(&self, input: &mut BitReader<'_>) -> Result<(usize, u32), BitsExhausted> {
        if self.codes.len() == 1 {
            input.consume(1)?;
            return Ok((0, 1));
        }
        let window = input.peek(self.lut_bits);
        let entry = self.lut[window as usize];
        if entry.len != 0 {
            input.consume(entry.len)?;
            return Ok((entry.sym as usize, entry.len));
        }
        self.decode(input)
    }

    /// Resolves a symbol from an already-peeked 57-bit window (value in
    /// the low 57 bits, stream order from the top). Returns the symbol
    /// and its code length on a LUT hit, or `None` when the code is
    /// longer than the table window (caller falls back to
    /// [`Tree::decode_table`]). Nothing is consumed; the caller owns the
    /// cursor. The degenerate single-symbol codebook reports its 1-bit
    /// code, matching [`Tree::decode_table`].
    #[inline]
    pub(crate) fn lut_hit(&self, window57: u64) -> Option<(usize, u32)> {
        if self.codes.len() == 1 {
            return Some((0, 1));
        }
        let idx = (window57 >> (57 - self.lut_bits)) as usize;
        let entry = self.lut[idx];
        if entry.len != 0 {
            Some((entry.sym as usize, entry.len))
        } else {
            None
        }
    }

    /// Approximate size in bits of the decode structure, charged to the
    /// interpreter under the encoding-size accounting (two 16-bit links per
    /// node).
    pub fn table_bits(&self) -> u64 {
        self.nodes.len() as u64 * 32
    }

    /// Statically validates the codebook: every code width must be
    /// representable, no code may prefix another, and the code space must
    /// be exactly full (Kraft equality), so that every bit sequence decodes
    /// to exactly one symbol. Trees built by [`Tree::from_frequencies`]
    /// always pass; a tree whose side tables were damaged in storage does
    /// not, and the load-time verifier turns that into a typed diagnostic
    /// instead of a mid-run decode trap.
    ///
    /// # Errors
    ///
    /// Returns the first [`CodebookIssue`] found.
    pub fn check(&self) -> Result<(), CodebookIssue> {
        check_codes(&self.codes)
    }

    /// The raw `(code, width)` codebook, indexed by symbol.
    pub(crate) fn codes(&self) -> &[(u64, u32)] {
        &self.codes
    }

    /// Rebuilds this tree with a replacement codebook while keeping the
    /// decode structures. The result is deliberately inconsistent: it
    /// exists solely so the analyze plane's negative fixtures can model a
    /// codebook damaged in storage without constructing an undecodable
    /// trie. Never constructed outside [`crate::encode::fixtures`].
    pub(crate) fn with_codes(&self, codes: Vec<(u64, u32)>) -> Tree {
        Tree {
            codes,
            nodes: self.nodes.clone(),
            lut: self.lut.clone(),
            lut_bits: self.lut_bits,
        }
    }

    /// Expected code width in bits under the given frequency distribution.
    pub fn expected_width(&self, freqs: &[u64]) -> f64 {
        let total: u64 = freqs.iter().map(|&f| f.max(1)).sum();
        self.codes
            .iter()
            .zip(freqs)
            .map(|(&(_, w), &f)| w as f64 * f.max(1) as f64)
            .sum::<f64>()
            / total as f64
    }
}

/// Rebuilds the flattened decode tree from a canonical codebook by trie
/// insertion. Huffman lengths satisfy Kraft equality, so the trie is a
/// full binary tree with the same `n - 1` internal nodes the frequency
/// tree had — [`Tree::table_bits`] is unchanged by canonicalization.
fn decode_nodes(codes: &[(u64, u32)]) -> Vec<(i32, i32)> {
    // i32::MIN marks a slot not yet claimed by any code.
    const UNSET: i32 = i32::MIN;
    let mut nodes: Vec<(i32, i32)> = vec![(UNSET, UNSET)];
    for (sym, &(code, len)) in codes.iter().enumerate() {
        let mut node = 0usize;
        for i in (0..len).rev() {
            let bit = (code >> i) & 1;
            let slot = if bit == 0 {
                nodes[node].0
            } else {
                nodes[node].1
            };
            let next = if i == 0 {
                debug_assert_eq!(slot, UNSET, "codes are not prefix-free");
                -((sym as i32) + 1)
            } else if slot == UNSET {
                nodes.push((UNSET, UNSET));
                (nodes.len() - 1) as i32
            } else {
                slot
            };
            if bit == 0 {
                nodes[node].0 = next;
            } else {
                nodes[node].1 = next;
            }
            if i > 0 {
                node = next as usize;
            }
        }
    }
    debug_assert!(
        nodes.iter().all(|&(l, r)| l != UNSET && r != UNSET),
        "Kraft equality must fill the decode tree"
    );
    nodes
}

/// Builds the peek lookup table: every window whose leading bits are a
/// code of length `<= lut_bits` maps to that code's entry; windows whose
/// code is longer keep the default `len == 0` slow-path marker.
fn decode_lut(codes: &[(u64, u32)]) -> (Vec<LutEntry>, u32) {
    let max_len = codes.iter().map(|&(_, l)| l).max().unwrap_or(1);
    let lut_bits = max_len.clamp(1, LUT_BITS);
    let mut lut = vec![LutEntry::default(); 1usize << lut_bits];
    for (sym, &(code, len)) in codes.iter().enumerate() {
        if len <= lut_bits {
            let lo = (code << (lut_bits - len)) as usize;
            let hi = ((code + 1) << (lut_bits - len)) as usize;
            let entry = LutEntry {
                sym: sym as u32,
                len,
            };
            lut[lo..hi].fill(entry);
        }
    }
    (lut, lut_bits)
}

/// A defect in a Huffman codebook found by [`Tree::check`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodebookIssue {
    /// A code is wider than 64 bits (or zero bits in a multi-symbol
    /// alphabet), so it cannot be read from the stream.
    BadWidth {
        /// The symbol with the malformed width.
        symbol: usize,
        /// Its claimed width in bits.
        width: u32,
    },
    /// One symbol's code is a prefix of another's: decoding is ambiguous.
    PrefixConflict {
        /// The symbol whose code is the prefix.
        prefix: usize,
        /// The symbol whose code extends it.
        extended: usize,
    },
    /// The Kraft sum is below one: some bit sequences decode to no
    /// symbol, so a stream can fail mid-decode (truncated codebook).
    Incomplete,
    /// The Kraft sum exceeds one: the code space is oversubscribed.
    Oversubscribed,
}

impl std::fmt::Display for CodebookIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodebookIssue::BadWidth { symbol, width } => {
                write!(f, "symbol {symbol} has unusable code width {width}")
            }
            CodebookIssue::PrefixConflict { prefix, extended } => {
                write!(
                    f,
                    "code for symbol {prefix} is a prefix of the code for symbol {extended}"
                )
            }
            CodebookIssue::Incomplete => {
                write!(f, "codebook is incomplete (Kraft sum below one)")
            }
            CodebookIssue::Oversubscribed => {
                write!(
                    f,
                    "codebook oversubscribes the code space (Kraft sum above one)"
                )
            }
        }
    }
}

impl std::error::Error for CodebookIssue {}

/// Validates an explicit `(code, width)` codebook: width sanity,
/// prefix-freeness, and Kraft equality. See [`Tree::check`].
///
/// A single-symbol alphabet is exempt from the completeness requirement:
/// its degenerate 1-bit code intentionally leaves half the code space
/// unused (both window halves decode to the one symbol).
///
/// # Errors
///
/// Returns the first [`CodebookIssue`] found.
pub fn check_codes(codes: &[(u64, u32)]) -> Result<(), CodebookIssue> {
    for (symbol, &(_, width)) in codes.iter().enumerate() {
        if width > 64 || (width == 0 && codes.len() > 1) {
            return Err(CodebookIssue::BadWidth { symbol, width });
        }
    }
    for a in 0..codes.len() {
        for b in (a + 1)..codes.len() {
            let (short, long) = if codes[a].1 <= codes[b].1 {
                (a, b)
            } else {
                (b, a)
            };
            let (cs, ws) = codes[short];
            let (cl, wl) = codes[long];
            if ws == 0 || wl == 0 {
                continue; // BadWidth already screened multi-symbol zeros.
            }
            if cl >> (wl - ws) == cs {
                return Err(CodebookIssue::PrefixConflict {
                    prefix: short,
                    extended: long,
                });
            }
        }
    }
    if codes.len() > 1 {
        // Kraft sum in units of 2^-64: sum of 2^(64 - w) must be 2^64.
        let mut sum: u128 = 0;
        for &(_, w) in codes {
            sum += 1u128 << (64 - w);
        }
        match sum.cmp(&(1u128 << 64)) {
            std::cmp::Ordering::Less => return Err(CodebookIssue::Incomplete),
            std::cmp::Ordering::Greater => return Err(CodebookIssue::Oversubscribed),
            std::cmp::Ordering::Equal => {}
        }
    }
    Ok(())
}

/// Shannon entropy (bits/symbol) of a frequency distribution, the lower
/// bound on any prefix code's expected width.
pub fn entropy(freqs: &[u64]) -> f64 {
    let total: u64 = freqs.iter().sum();
    if total == 0 {
        return 0.0;
    }
    freqs
        .iter()
        .filter(|&&f| f > 0)
        .map(|&f| {
            let p = f as f64 / total as f64;
            -p * p.log2()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(freqs: &[u64], symbols: &[usize]) {
        let tree = Tree::from_frequencies(freqs);
        let mut w = BitWriter::new();
        for &s in symbols {
            tree.encode(s, &mut w);
        }
        let (buf, len) = w.finish();
        let mut r = BitReader::new(&buf, len);
        for &s in symbols {
            let (got, bits) = tree.decode(&mut r).unwrap();
            assert_eq!(got, s);
            assert_eq!(bits, tree.width(s));
        }
        assert_eq!(r.position(), len);
    }

    #[test]
    fn skewed_distribution_round_trips() {
        round_trip(&[100, 10, 5, 1], &[0, 1, 2, 3, 0, 0, 1, 3, 2, 0]);
    }

    #[test]
    fn frequent_symbols_get_short_codes() {
        let tree = Tree::from_frequencies(&[1000, 10, 10, 10]);
        assert!(tree.width(0) < tree.width(1));
        assert_eq!(tree.width(0), 1);
    }

    #[test]
    fn uniform_distribution_is_balanced() {
        let tree = Tree::from_frequencies(&[5, 5, 5, 5]);
        for s in 0..4 {
            assert_eq!(tree.width(s), 2);
        }
    }

    #[test]
    fn zero_frequency_symbols_remain_encodable() {
        round_trip(&[100, 0, 0, 50], &[1, 2, 0, 3]);
    }

    #[test]
    fn single_symbol_alphabet() {
        round_trip(&[7], &[0, 0, 0]);
    }

    #[test]
    fn two_symbol_alphabet() {
        let tree = Tree::from_frequencies(&[1, 1]);
        assert_eq!(tree.width(0), 1);
        assert_eq!(tree.width(1), 1);
        round_trip(&[1, 1], &[0, 1, 1, 0]);
    }

    #[test]
    fn expected_width_at_least_entropy() {
        let freqs = [50u64, 30, 12, 5, 2, 1];
        let tree = Tree::from_frequencies(&freqs);
        let h = entropy(&freqs);
        let w = tree.expected_width(&freqs);
        assert!(w >= h - 1e-9, "expected width {w} below entropy {h}");
        assert!(w <= h + 1.0, "Huffman is within 1 bit of entropy");
    }

    #[test]
    fn kraft_inequality_holds() {
        let freqs = [13u64, 7, 7, 3, 2, 1, 1, 1];
        let tree = Tree::from_frequencies(&freqs);
        let kraft: f64 = (0..freqs.len())
            .map(|s| 2f64.powi(-(tree.width(s) as i32)))
            .sum();
        assert!(kraft <= 1.0 + 1e-9, "kraft sum {kraft}");
    }

    #[test]
    fn codes_are_prefix_free() {
        let freqs = [40u64, 20, 10, 8, 4, 2, 1];
        let tree = Tree::from_frequencies(&freqs);
        let codes: Vec<(u64, u32)> = (0..freqs.len())
            .map(|s| (tree.codes[s].0, tree.width(s)))
            .collect();
        for (i, &(ca, wa)) in codes.iter().enumerate() {
            for (j, &(cb, wb)) in codes.iter().enumerate() {
                if i == j {
                    continue;
                }
                if wa <= wb {
                    assert_ne!(cb >> (wb - wa), ca, "code {i} is a prefix of {j}");
                }
            }
        }
    }

    #[test]
    fn decode_mid_stream_error() {
        let tree = Tree::from_frequencies(&[1, 1, 1, 1, 1]);
        let buf = [0u8];
        // Claim only 1 bit available; deep codes need more.
        let mut r = BitReader::new(&buf, 1);
        // Either decodes a 1-bit symbol or errors; must not panic. With 5
        // uniform symbols no code is 1 bit, so this errors.
        assert!(tree.decode(&mut r).is_err());
    }

    #[test]
    fn deterministic_construction() {
        let a = Tree::from_frequencies(&[3, 3, 2, 2, 1]);
        let b = Tree::from_frequencies(&[3, 3, 2, 2, 1]);
        assert_eq!(a, b);
    }

    #[test]
    fn table_bits_positive() {
        let tree = Tree::from_frequencies(&[1, 2, 3]);
        assert!(tree.table_bits() > 0);
    }

    #[test]
    fn codes_are_canonical() {
        // Canonical property: sorted by (length, symbol), codes are
        // strictly increasing when left-aligned to a common width.
        let freqs = [40u64, 20, 10, 8, 4, 2, 1, 1];
        let tree = Tree::from_frequencies(&freqs);
        let mut order: Vec<usize> = (0..freqs.len()).collect();
        order.sort_by_key(|&s| (tree.width(s), s));
        let max = order.iter().map(|&s| tree.width(s)).max().unwrap();
        let aligned: Vec<u64> = order
            .iter()
            .map(|&s| tree.codes[s].0 << (max - tree.width(s)))
            .collect();
        for pair in aligned.windows(2) {
            assert!(pair[0] < pair[1], "canonical codes must increase");
        }
    }

    #[test]
    fn table_decode_matches_tree_decode() {
        let freqs = [500u64, 120, 40, 9, 3, 1, 1, 1, 1, 1, 1];
        let tree = Tree::from_frequencies(&freqs);
        let mut rng = 0x1234_5678_9ABC_DEF0u64;
        let mut w = BitWriter::new();
        let mut symbols = Vec::new();
        for _ in 0..2000 {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let s = (rng >> 33) as usize % freqs.len();
            tree.encode(s, &mut w);
            symbols.push(s);
        }
        let (buf, len) = w.finish();
        let mut tree_r = BitReader::new(&buf, len);
        let mut table_r = BitReader::new(&buf, len);
        for &s in &symbols {
            let a = tree.decode(&mut tree_r).unwrap();
            let b = tree.decode_table(&mut table_r).unwrap();
            assert_eq!(a, b);
            assert_eq!(a.0, s);
            assert_eq!(tree_r.position(), table_r.position());
        }
    }

    #[test]
    fn table_decode_error_parity_on_truncation() {
        let freqs = [500u64, 120, 40, 9, 3, 1, 1, 1, 1, 1, 1];
        let tree = Tree::from_frequencies(&freqs);
        let mut w = BitWriter::new();
        for s in 0..freqs.len() {
            tree.encode(s, &mut w);
        }
        let (buf, len) = w.finish();
        // Every truncation point: decode until the tree path errors, and
        // demand the table path error at the same symbol.
        for cut in 0..len {
            let mut tree_r = BitReader::new(&buf, cut);
            let mut table_r = BitReader::new(&buf, cut);
            loop {
                let a = tree.decode(&mut tree_r);
                let b = tree.decode_table(&mut table_r);
                assert_eq!(a, b, "divergence at cut {cut}");
                if a.is_err() {
                    break;
                }
                assert_eq!(tree_r.position(), table_r.position());
            }
        }
    }

    #[test]
    fn long_codes_take_the_slow_path_correctly() {
        // Fibonacci-ish frequencies force a deep, skewed tree with codes
        // longer than LUT_BITS, exercising the fallback.
        let freqs: Vec<u64> = {
            let (mut a, mut b) = (1u64, 1u64);
            (0..20)
                .map(|_| {
                    let f = a;
                    (a, b) = (b, a + b);
                    f
                })
                .collect()
        };
        let tree = Tree::from_frequencies(&freqs);
        let deepest = (0..freqs.len()).max_by_key(|&s| tree.width(s)).unwrap();
        assert!(
            tree.width(deepest) > LUT_BITS,
            "distribution failed to produce a long code"
        );
        let mut w = BitWriter::new();
        for s in (0..freqs.len()).chain([deepest, 0, deepest]) {
            tree.encode(s, &mut w);
        }
        let (buf, len) = w.finish();
        let mut tree_r = BitReader::new(&buf, len);
        let mut table_r = BitReader::new(&buf, len);
        while tree_r.position() < len {
            let a = tree.decode(&mut tree_r).unwrap();
            let b = tree.decode_table(&mut table_r).unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn constructed_trees_pass_their_own_check() {
        for freqs in [
            vec![1u64],
            vec![1, 1],
            vec![100, 10, 5, 1],
            vec![13, 7, 7, 3, 2, 1, 1, 1],
            (1..=20u64).collect::<Vec<_>>(),
        ] {
            Tree::from_frequencies(&freqs).check().unwrap();
        }
    }

    #[test]
    fn check_codes_rejects_each_defect_class() {
        // Prefix conflict: 0 is a prefix of 01.
        assert_eq!(
            check_codes(&[(0, 1), (0b01, 2)]),
            Err(CodebookIssue::PrefixConflict {
                prefix: 0,
                extended: 1
            })
        );
        // Truncated: {0} alone leaves the 1-branch undecodable.
        assert_eq!(
            check_codes(&[(0, 1), (0b10, 2)]),
            Err(CodebookIssue::Incomplete)
        );
        // Oversubscribed: three 1-bit codes cannot coexist (and two of
        // them collide, which is detected first as a prefix conflict).
        assert!(check_codes(&[(0, 1), (1, 1), (0, 1)]).is_err());
        // Width zero in a multi-symbol alphabet is unusable.
        assert_eq!(
            check_codes(&[(0, 0), (1, 1)]),
            Err(CodebookIssue::BadWidth {
                symbol: 0,
                width: 0
            })
        );
        // The valid two-symbol book passes.
        check_codes(&[(0, 1), (1, 1)]).unwrap();
        // Degenerate single-symbol book is exempt from completeness.
        check_codes(&[(0, 1)]).unwrap();
    }

    #[test]
    fn degenerate_alphabet_table_decode() {
        let tree = Tree::from_frequencies(&[7]);
        let buf = [0b1010_0000u8];
        let mut r = BitReader::new(&buf, 3);
        for _ in 0..3 {
            assert_eq!(tree.decode_table(&mut r).unwrap(), (0, 1));
        }
        assert!(tree.decode_table(&mut r).is_err());
    }
}
