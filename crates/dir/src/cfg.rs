//! Control-flow analysis over DIR programs: instruction-level successor
//! computation, basic blocks, reachability, and a dead-code elimination
//! pass.
//!
//! DCE matters to the representation studies: unreachable code inflates
//! the static program (hurting every encoding equally) without ever
//! entering the DTB, so eliminating it isolates the *dynamic* effects the
//! paper's model is about.

use std::collections::HashMap;

use crate::isa::Inst;
use crate::program::{ProcInfo, Program};

/// The successor set of one DIR instruction: at most two instruction
/// indices (a branch target and a fall-through), held inline.
///
/// Successor computation runs once per instruction in every reachability,
/// DCE and abstract-interpretation pass, so this is a `Copy` fixed-size
/// value rather than a per-call heap `Vec`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Successors {
    targets: [u32; 2],
    len: u8,
}

impl Successors {
    /// No successors (`Return`, `Halt`).
    pub const fn none() -> Successors {
        Successors {
            targets: [0; 2],
            len: 0,
        }
    }

    /// A single successor.
    pub const fn one(a: u32) -> Successors {
        Successors {
            targets: [a, 0],
            len: 1,
        }
    }

    /// Two successors (taken target first, fall-through second).
    pub const fn two(a: u32, b: u32) -> Successors {
        Successors {
            targets: [a, b],
            len: 2,
        }
    }

    /// The successors as a slice.
    pub fn as_slice(&self) -> &[u32] {
        &self.targets[..self.len as usize]
    }

    /// Number of successors (0, 1 or 2).
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// `true` when the instruction ends control flow.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over the successor indices.
    pub fn iter(&self) -> std::iter::Copied<std::slice::Iter<'_, u32>> {
        self.as_slice().iter().copied()
    }
}

impl IntoIterator for Successors {
    type Item = u32;
    type IntoIter = std::iter::Take<std::array::IntoIter<u32, 2>>;

    fn into_iter(self) -> Self::IntoIter {
        self.targets.into_iter().take(self.len as usize)
    }
}

impl<'a> IntoIterator for &'a Successors {
    type Item = u32;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, u32>>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Successor instruction indices of the instruction at `index`.
///
/// `Call` contributes both the callee entry and the fall-through (the
/// return continuation); `Return` and `Halt` have no successors.
pub fn successors(program: &Program, index: u32) -> Successors {
    let inst = program.code[index as usize];
    let next = index + 1;
    match inst {
        Inst::Jump(t) => Successors::one(t),
        Inst::JumpIfFalse(t) | Inst::JumpIfTrue(t) => Successors::two(t, next),
        Inst::CmpConstBr { target, .. } | Inst::CmpLocalsBr { target, .. } => {
            Successors::two(target, next)
        }
        Inst::Call(p) => Successors::two(program.procs[p as usize].entry, next),
        Inst::Return | Inst::Halt => Successors::none(),
        _ => Successors::one(next),
    }
}

/// A basic block: a maximal straight-line run of instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// First instruction index.
    pub start: u32,
    /// One past the last instruction.
    pub end: u32,
    /// Indices into [`Cfg::blocks`] of successor blocks (intra-procedural;
    /// calls are treated as fall-through).
    pub succs: Vec<usize>,
}

/// The basic-block graph of a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cfg {
    /// Blocks in address order.
    pub blocks: Vec<Block>,
}

impl Cfg {
    /// Builds the basic-block graph. Block leaders are: instruction 0,
    /// procedure entries, branch targets, and the instructions following
    /// branches and returns.
    pub fn build(program: &Program) -> Cfg {
        let n = program.code.len();
        let mut leader = vec![false; n + 1];
        leader[0] = true;
        for p in &program.procs {
            leader[p.entry as usize] = true;
        }
        for (i, inst) in program.code.iter().enumerate() {
            if let Some(t) = inst.target() {
                leader[t as usize] = true;
            }
            match inst.opcode() {
                crate::isa::Opcode::Jump
                | crate::isa::Opcode::JumpIfFalse
                | crate::isa::Opcode::JumpIfTrue
                | crate::isa::Opcode::CmpConstBr
                | crate::isa::Opcode::CmpLocalsBr
                | crate::isa::Opcode::Return
                | crate::isa::Opcode::Halt
                    if i + 1 < n =>
                {
                    leader[i + 1] = true;
                }
                _ => {}
            }
        }
        let starts: Vec<u32> = (0..n as u32).filter(|&i| leader[i as usize]).collect();
        let block_of: HashMap<u32, usize> =
            starts.iter().enumerate().map(|(b, &s)| (s, b)).collect();
        let blocks = starts
            .iter()
            .enumerate()
            .map(|(b, &start)| {
                let end = starts.get(b + 1).copied().unwrap_or(n as u32);
                let last = program.code[end as usize - 1];
                // Intra-procedural edges: calls fall through, returns end.
                let mut succs = Vec::new();
                match last {
                    Inst::Jump(t) => succs.push(block_of[&t]),
                    Inst::JumpIfFalse(t) | Inst::JumpIfTrue(t) => {
                        succs.push(block_of[&t]);
                        if (end as usize) < n {
                            succs.push(block_of[&end]);
                        }
                    }
                    Inst::CmpConstBr { target, .. } | Inst::CmpLocalsBr { target, .. } => {
                        succs.push(block_of[&target]);
                        if (end as usize) < n {
                            succs.push(block_of[&end]);
                        }
                    }
                    Inst::Return | Inst::Halt => {}
                    _ => {
                        if (end as usize) < n {
                            succs.push(block_of[&end]);
                        }
                    }
                }
                Block { start, end, succs }
            })
            .collect();
        Cfg { blocks }
    }

    /// The block containing instruction `index`, if any.
    pub fn block_of(&self, index: u32) -> Option<&Block> {
        self.blocks
            .iter()
            .find(|b| b.start <= index && index < b.end)
    }
}

/// Computes instruction-level reachability from the prelude (instruction
/// 0), following branches and calls.
pub fn reachable(program: &Program) -> Vec<bool> {
    let mut seen = vec![false; program.code.len()];
    if program.code.is_empty() {
        return seen;
    }
    let mut work = vec![0u32];
    while let Some(i) = work.pop() {
        if std::mem::replace(&mut seen[i as usize], true) {
            continue;
        }
        for s in successors(program, i) {
            if !seen[s as usize] {
                work.push(s);
            }
        }
    }
    seen
}

/// Statistics from a dead-code elimination run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DceStats {
    /// Instructions before.
    pub before: usize,
    /// Instructions after.
    pub after: usize,
    /// Whole procedures removed (never called).
    pub procs_removed: usize,
}

/// Removes unreachable instructions and uncalled procedures, renumbering
/// branch targets and callee indices.
///
/// The result passes [`Program::validate`] and is semantically identical
/// to the input (unreachable code cannot execute).
pub fn dce(program: &Program) -> (Program, DceStats) {
    let live = reachable(program);
    // A procedure is kept iff its entry is reachable.
    let mut proc_map: HashMap<u32, u32> = HashMap::new();
    let mut kept_procs: Vec<&ProcInfo> = Vec::new();
    for (i, p) in program.procs.iter().enumerate() {
        if live[p.entry as usize] {
            proc_map.insert(i as u32, kept_procs.len() as u32);
            kept_procs.push(p);
        }
    }

    // Renumber instructions.
    let mut index_map = vec![u32::MAX; program.code.len() + 1];
    let mut new_code: Vec<Inst> = Vec::new();
    for (i, &inst) in program.code.iter().enumerate() {
        index_map[i] = new_code.len() as u32;
        if live[i] {
            new_code.push(inst);
        }
    }
    index_map[program.code.len()] = new_code.len() as u32;

    let remapped: Vec<Inst> = new_code
        .into_iter()
        .map(|inst| {
            let inst = inst.map_target(|t| index_map[t as usize]);
            match inst {
                Inst::Call(p) => Inst::Call(proc_map[&p]),
                other => other,
            }
        })
        .collect();

    let procs: Vec<ProcInfo> = kept_procs
        .iter()
        .map(|p| ProcInfo {
            name: p.name.clone(),
            entry: index_map[p.entry as usize],
            end: index_map[p.end as usize],
            n_args: p.n_args,
            frame_size: p.frame_size,
            returns_value: p.returns_value,
        })
        .collect();

    let stats = DceStats {
        before: program.code.len(),
        after: remapped.len(),
        procs_removed: program.procs.len() - procs.len(),
    };
    let entry_proc = proc_map[&program.entry_proc];
    (
        Program {
            code: remapped,
            procs,
            entry_proc,
            globals_size: program.globals_size,
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::compile;
    use crate::exec;

    fn compile_src(src: &str) -> Program {
        compile(&hlr::compile(src).unwrap())
    }

    #[test]
    fn successor_sets_are_inline_and_bounded() {
        for s in hlr::programs::ALL {
            let p = compile(&s.compile().unwrap());
            for i in 0..p.code.len() as u32 {
                let succ = successors(&p, i);
                assert!(succ.len() <= 2, "{}: >2 successors at {i}", s.name);
                assert_eq!(succ.len(), succ.as_slice().len());
                assert_eq!(succ.is_empty(), succ.is_empty());
                // By-value and by-ref iteration agree with the slice.
                let by_val: Vec<u32> = succ.into_iter().collect();
                let by_ref: Vec<u32> = (&succ).into_iter().collect();
                assert_eq!(by_val, succ.as_slice());
                assert_eq!(by_ref, succ.as_slice());
            }
        }
        let p = compile_src("proc main() begin write 1; end");
        let last = p.code.len() as u32 - 1;
        assert_eq!(successors(&p, last), Successors::none());
    }

    #[test]
    fn cfg_blocks_partition_the_program() {
        for s in hlr::programs::ALL {
            let p = compile(&s.compile().unwrap());
            let cfg = Cfg::build(&p);
            let mut at = 0u32;
            for b in &cfg.blocks {
                assert_eq!(b.start, at, "{}", s.name);
                assert!(b.end > b.start);
                at = b.end;
            }
            assert_eq!(at as usize, p.code.len());
        }
    }

    #[test]
    fn block_lookup_finds_owner() {
        let p = compile_src("proc main() begin if true then write 1; else write 2; end");
        let cfg = Cfg::build(&p);
        for i in 0..p.code.len() as u32 {
            let b = cfg.block_of(i).unwrap();
            assert!(b.start <= i && i < b.end);
        }
        assert!(cfg.block_of(p.code.len() as u32).is_none());
    }

    #[test]
    fn loop_cfg_has_a_back_edge() {
        let p = compile_src("proc main() begin int i := 0; while i < 3 do i := i + 1; end");
        let cfg = Cfg::build(&p);
        let has_back_edge = cfg
            .blocks
            .iter()
            .enumerate()
            .any(|(b, block)| block.succs.iter().any(|&s| s <= b));
        assert!(has_back_edge);
    }

    #[test]
    fn everything_reachable_in_clean_programs() {
        let p = compile_src("proc main() begin write 1; end");
        assert!(reachable(&p).iter().all(|&r| r));
    }

    #[test]
    fn code_after_return_is_unreachable_and_removed() {
        let p = compile_src(
            "proc f() -> int begin return 1; write 99; end
             proc main() begin write f(); end",
        );
        let live = reachable(&p);
        assert!(live.iter().any(|&r| !r), "the dead write must be detected");
        let (clean, stats) = dce(&p);
        clean.validate().unwrap();
        assert!(stats.after < stats.before);
        assert_eq!(exec::run(&clean).unwrap(), exec::run(&p).unwrap());
    }

    #[test]
    fn uncalled_procedures_are_removed() {
        let p = compile_src(
            "proc unused(int z) -> int begin return z * z; end
             proc main() begin write 5; end",
        );
        let (clean, stats) = dce(&p);
        clean.validate().unwrap();
        assert_eq!(stats.procs_removed, 1);
        assert_eq!(clean.procs.len(), 1);
        assert_eq!(clean.procs[0].name, "main");
        assert_eq!(exec::run(&clean).unwrap(), vec![5]);
    }

    #[test]
    fn call_indices_renumber_after_removal() {
        let p = compile_src(
            "proc dead() begin skip; end
             proc live() -> int begin return 7; end
             proc main() begin write live(); end",
        );
        let (clean, _) = dce(&p);
        clean.validate().unwrap();
        assert_eq!(exec::run(&clean).unwrap(), vec![7]);
        // entry_proc renumbered from 2 to 1.
        assert_eq!(clean.entry_proc, 1);
    }

    #[test]
    fn dce_preserves_semantics_on_all_samples() {
        for s in hlr::programs::ALL {
            let p = compile(&s.compile().unwrap());
            let (clean, _) = dce(&p);
            clean
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", s.name));
            assert_eq!(
                exec::run(&clean).unwrap(),
                exec::run(&p).unwrap(),
                "{}",
                s.name
            );
        }
    }

    #[test]
    fn dce_composes_with_fusion() {
        let p = compile_src(
            "proc dead() begin write 0; end
             proc main() begin
                int i := 0;
                while i < 10 do i := i + 1;
                write i;
             end",
        );
        let (clean, _) = dce(&p);
        let (fused, _) = crate::fuse::fuse(&clean);
        fused.validate().unwrap();
        assert_eq!(exec::run(&fused).unwrap(), vec![10]);
    }

    #[test]
    fn dce_is_idempotent() {
        let p = compile_src("proc dead() begin skip; end proc main() begin write 3; end");
        let (once, _) = dce(&p);
        let (twice, stats) = dce(&once);
        assert_eq!(once, twice);
        assert_eq!(stats.procs_removed, 0);
        assert_eq!(stats.before, stats.after);
    }
}
