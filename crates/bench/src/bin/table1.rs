//! Regenerates **Table 1**: equivalence of a PSDER call sequence to more
//! compact, encoded machine formats (PDP-11 two-operand and System/360 RX
//! without the index field).
//!
//! Run with `cargo run -p uhm-bench --bin table1`.

fn main() {
    println!("Table 1 — Equivalence of a PSDER sequence to more compact, encoded formats");
    println!("Statement: R3 := R3 + base[disp]\n");
    for row in dir::formats::table1() {
        println!("{} ({} bits total)", row.representation, row.total_bits);
        for item in &row.items {
            println!("    {item}");
        }
        println!();
    }
    println!("The paper's point: the same semantics shrink monotonically as the");
    println!("representation moves from explicit procedure calls (PSDER) to ever");
    println!("more heavily encoded instruction formats — at the price of decoding.");
}
