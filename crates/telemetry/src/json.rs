//! A dependency-free JSON value model with serializer and parser.
//!
//! The workspace must build without a crates.io mirror, so the report
//! pipeline cannot use `serde`. This module implements the subset of JSON
//! the telemetry surfaces need: objects (insertion-ordered), arrays,
//! strings with full escape handling, integers, floats, booleans and
//! null. Serialization and parsing round-trip (`parse(render(v)) == v`)
//! for every value the workspace produces — integers stay integers, which
//! matters for cycle counts that must diff exactly across PRs.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (serialized without a decimal point).
    Int(i64),
    /// A float (non-finite values serialize as `null`).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on render.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        // Cycle counters fit i64 by construction (they would overflow the
        // simulated machine first); saturate defensively anyway.
        Json::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Int(v as i64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<I: IntoIterator<Item = (&'static str, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an integer (floats are not coerced).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a float (integers are coerced).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Float(v) => Some(*v),
            Json::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serializes to a compact single-line string.
    pub fn render(&self) -> String {
        self.to_string()
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a message with a byte offset on malformed input or
    /// trailing garbage.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn escape_into(s: &str, out: &mut fmt::Formatter<'_>) -> fmt::Result {
    out.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => write!(out, "{c}")?,
        }
    }
    out.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(v) => write!(f, "{v}"),
            Json::Float(v) if !v.is_finite() => f.write_str("null"),
            // Keep a decimal point so floats parse back as floats.
            Json::Float(v) if v.fract() == 0.0 && v.abs() < 1e15 => write!(f, "{v:.1}"),
            Json::Float(v) => write!(f, "{v}"),
            Json::Str(s) => escape_into(s, f),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    escape_into(k, f)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Maximum container nesting the parser accepts. Recursive descent uses
/// the call stack, so unbounded nesting in hostile input would overflow
/// it; no report the workspace emits nests deeper than a dozen levels.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.nested(Parser::array),
            Some(b'{') => self.nested(Parser::object),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    /// Runs one container parse with the depth limit enforced, so deeply
    /// nested input errors out instead of exhausting the call stack.
    fn nested(&mut self, f: fn(&mut Self) -> Result<Json, String>) -> Result<Json, String> {
        if self.depth >= MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} at byte {}",
                self.pos
            ));
        }
        self.depth += 1;
        let v = f(self);
        self.depth -= 1;
        v
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or(format!("bad \\u escape at byte {}", self.pos))?;
                            // Surrogate pairs are not produced by our
                            // serializer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|e| format!("bad number `{text}`: {e}"))
        } else {
            // Integers wider than i64 (e.g. Rust's dot-free rendering of
            // large floats) fall back to f64.
            text.parse::<i64>().map(Json::Int).or_else(|_| {
                text.parse::<f64>()
                    .map(Json::Float)
                    .map_err(|e| format!("bad number `{text}`: {e}"))
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Json) {
        let text = v.render();
        let back = Json::parse(&text).unwrap_or_else(|e| panic!("{e}: {text}"));
        assert_eq!(&back, v, "{text}");
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Int(0),
            Json::Int(-42),
            Json::Int(i64::MAX),
            Json::Int(i64::MIN),
            Json::Float(1.5),
            Json::Float(-0.25),
            Json::Float(1e300),
            Json::Str("hello".into()),
            Json::Str("esc \" \\ \n \t \u{1} π".into()),
        ] {
            round_trip(&v);
        }
    }

    #[test]
    fn integral_floats_stay_floats() {
        let v = Json::Float(3.0);
        assert_eq!(v.render(), "3.0");
        round_trip(&v);
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Json::obj([
            (
                "a",
                Json::Arr(vec![Json::Int(1), Json::Null, Json::Bool(false)]),
            ),
            ("b", Json::obj([("nested", Json::Str("x:y,z".into()))])),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        round_trip(&v);
    }

    #[test]
    fn parser_accepts_whitespace_and_preserves_order() {
        let v = Json::parse(" { \"b\" : 1 ,\n\t\"a\" : [ 2.5 , \"s\" ] } ").unwrap();
        assert_eq!(v.get("b").and_then(Json::as_i64), Some(1));
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].as_f64(), Some(2.5));
        if let Json::Obj(pairs) = &v {
            assert_eq!(pairs[0].0, "b", "order preserved");
        }
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "1 2",
            "\"unterminated",
            "{'a':1}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn accessors_do_not_coerce_strings() {
        let v = Json::parse("{\"n\": 3, \"s\": \"3\"}").unwrap();
        assert_eq!(v.get("n").and_then(Json::as_i64), Some(3));
        assert_eq!(v.get("s").and_then(Json::as_i64), None);
        assert_eq!(v.get("n").and_then(Json::as_f64), Some(3.0));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn unicode_escapes_parse() {
        let v = Json::parse("\"a\\u0041\\u00e9\"").unwrap();
        assert_eq!(v.as_str(), Some("aAé"));
    }

    #[test]
    fn escape_edge_cases() {
        // Every simple escape, plus a lone surrogate mapping to U+FFFD.
        let v = Json::parse("\"\\\"\\\\\\/\\n\\r\\t\\b\\f\\ud800\"").unwrap();
        assert_eq!(v.as_str(), Some("\"\\/\n\r\t\u{8}\u{c}\u{FFFD}"));
        // Truncated and malformed \u escapes are errors, not panics.
        for bad in ["\"\\u12", "\"\\u12\"", "\"\\uzzzz\"", "\"\\q\"", "\"\\"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn truncated_input_errors_instead_of_panicking() {
        for bad in [
            "{",
            "[1",
            "\"abc",
            "{\"a\":",
            "{\"a\"",
            "[",
            "-",
            "[{\"x\":[",
            "nul",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn as_bool_does_not_coerce() {
        let v = Json::parse("{\"t\": true, \"n\": 1, \"s\": \"true\", \"z\": null}").unwrap();
        assert_eq!(v.get("t").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("n").and_then(Json::as_bool), None);
        assert_eq!(v.get("s").and_then(Json::as_bool), None);
        assert_eq!(v.get("z").and_then(Json::as_bool), None);
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        // Within the limit: parses fine (64 levels of arrays).
        let ok = format!("{}0{}", "[".repeat(64), "]".repeat(64));
        assert!(Json::parse(&ok).is_ok());
        // Past the limit: a clean error even for input deep enough to
        // blow the call stack on an unguarded recursive parser.
        let deep = format!("{}0{}", "[".repeat(100_000), "]".repeat(100_000));
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.contains("nesting"), "{err}");
        let deep_obj = "{\"a\":".repeat(100_000);
        assert!(Json::parse(&deep_obj).is_err());
    }
}
