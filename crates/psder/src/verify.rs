//! Static verification of the PSDER level: stack-effect balance.
//!
//! Every semantic routine and every translation template has a *net
//! operand-stack effect* that must compose correctly: when a DIR
//! instruction's PSDER sequence finishes, the operand stack must hold
//! exactly what the DIR instruction's own stack semantics dictate.
//! Mismatches here are the classic interpreter bug class (an operand left
//! behind corrupts every later computation); this module proves the
//! invariant statically for the whole routine library and all translation
//! templates, and the test suite runs it as a gate.

use dir::isa::{Inst, Opcode};

use crate::micro::MicroOp;
use crate::routines::RoutineLib;
use crate::short::{InterpMode, RoutineId, ShortInstr};
use crate::translator::translate;

/// Net operand-stack effect (pushes − pops) of one micro-op, ignoring
/// machine-state side channels.
fn micro_effect(op: &MicroOp) -> i32 {
    match op {
        MicroOp::Pop(_) => -1,
        MicroOp::Push(_) => 1,
        // NewFrame pops the callee's arguments; its effect is
        // argument-dependent and handled by the caller of `routine_effect`.
        MicroOp::NewFrame { .. } => 0,
        _ => 0,
    }
}

/// Net operand-stack effect of a routine, excluding argument consumption
/// by `NewFrame` (reported separately as `pops_args`).
pub fn routine_effect(lib: &RoutineLib, id: RoutineId) -> RoutineEffect {
    let mut net = 0i32;
    let mut pops_args = false;
    for word in lib.words(id) {
        for op in word.ops() {
            net += micro_effect(op);
            if matches!(op, MicroOp::NewFrame { .. }) {
                pops_args = true;
            }
        }
    }
    RoutineEffect { net, pops_args }
}

/// The statically computed stack effect of a routine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoutineEffect {
    /// Pushes minus pops, excluding `NewFrame` argument consumption.
    pub net: i32,
    /// Whether the routine builds a frame (popping `n_args` operands).
    pub pops_args: bool,
}

/// The expected net stack effect of executing one DIR instruction's whole
/// PSDER sequence (relative to the stack *before* the sequence, with the
/// instruction's own inputs already on the stack), excluding call-argument
/// consumption and excluding the value produced by a `Call` (pushed by the
/// callee's `Return`, not by this sequence).
///
/// This is the PSDER side of the cross-level contract the whole-image
/// verifier checks: the analyze crate compares each opcode's *abstract DIR
/// stack model* against this template effect, so it is public.
pub fn expected_effect(inst: Inst) -> i32 {
    match inst.opcode() {
        // Consume their stack inputs, push one result.
        Opcode::Bin => -1,                                    // pops 2, pushes 1
        Opcode::Neg | Opcode::Not => 0,                       // pops 1, pushes 1
        Opcode::LoadArrLocal | Opcode::LoadArrGlobal => 0,    // pops index, pushes elem
        Opcode::StoreArrLocal | Opcode::StoreArrGlobal => -2, // pops index+value
        Opcode::PushConst | Opcode::PushLocal | Opcode::PushGlobal => 1,
        Opcode::StoreLocal | Opcode::StoreGlobal | Opcode::Pop => -1,
        Opcode::Write => -1,
        Opcode::Jump | Opcode::Halt => 0,
        Opcode::JumpIfFalse | Opcode::JumpIfTrue => -1, // pops the condition
        // Call: args are popped by NewFrame (excluded); nothing else left.
        Opcode::Call => 0,
        // Return: pushes the saved DIR address, consumed by INTERP-stack.
        Opcode::Return => 0,
        Opcode::BinLocals | Opcode::IncLocal | Opcode::SetLocalConst => 0,
        Opcode::CmpConstBr | Opcode::CmpLocalsBr => 0,
    }
}

/// A stack-balance violation found by [`check_all`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BalanceError {
    /// The offending instruction shape.
    pub inst: Inst,
    /// Expected net effect.
    pub expected: i32,
    /// Computed net effect.
    pub got: i32,
}

impl std::fmt::Display for BalanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "stack imbalance for {:?}: expected net {}, got {}",
            self.inst, self.expected, self.got
        )
    }
}

impl std::error::Error for BalanceError {}

/// Computes the net stack effect of a full translation sequence: IU2
/// pushes/pops plus every called routine's effect, with INTERP-stack
/// popping its target.
pub fn sequence_effect(lib: &RoutineLib, sequence: &[ShortInstr]) -> i32 {
    let mut net = 0i32;
    for s in sequence {
        match s {
            ShortInstr::Push(_) => net += 1,
            ShortInstr::Pop(_) => net -= 1,
            ShortInstr::Call(id) => net += routine_effect(lib, *id).net,
            ShortInstr::Interp(InterpMode::Imm(_)) => {}
            ShortInstr::Interp(InterpMode::Stack) => net -= 1,
        }
    }
    net
}

/// Checks stack balance of every opcode's translation template against its
/// DIR stack semantics.
///
/// # Errors
///
/// Returns every violation found (empty means the PSDER level is balanced).
pub fn check_all(lib: &RoutineLib) -> Result<(), Vec<BalanceError>> {
    let reps: Vec<Inst> = vec![
        Inst::PushConst(1),
        Inst::PushLocal(0),
        Inst::PushGlobal(0),
        Inst::StoreLocal(0),
        Inst::StoreGlobal(0),
        Inst::LoadArrLocal { base: 0, len: 1 },
        Inst::LoadArrGlobal { base: 0, len: 1 },
        Inst::StoreArrLocal { base: 0, len: 1 },
        Inst::StoreArrGlobal { base: 0, len: 1 },
        Inst::Pop,
        Inst::Bin(dir::AluOp::Add),
        Inst::Neg,
        Inst::Not,
        Inst::Jump(0),
        Inst::JumpIfFalse(0),
        Inst::JumpIfTrue(0),
        Inst::Call(0),
        Inst::Return,
        Inst::Halt,
        Inst::Write,
        Inst::BinLocals {
            op: dir::AluOp::Add,
            a: 0,
            b: 0,
            dst: 0,
        },
        Inst::IncLocal { slot: 0, imm: 1 },
        Inst::SetLocalConst { slot: 0, imm: 0 },
        Inst::CmpConstBr {
            op: dir::AluOp::Lt,
            slot: 0,
            imm: 0,
            target: 0,
        },
        Inst::CmpLocalsBr {
            op: dir::AluOp::Lt,
            a: 0,
            b: 0,
            target: 0,
        },
    ];
    check_insts(lib, reps.into_iter())
}

/// Checks stack balance of the translation sequence of **every instruction
/// actually present in `code`** — the whole-image generalization of
/// [`check_all`], used as the analyze plane's cross-level consistency pass.
/// Where [`check_all`] proves the template library sound on one
/// representative per opcode, this proves it on the operand shapes the
/// program really contains.
///
/// # Errors
///
/// Returns every violation found, one per distinct offending instruction.
pub fn check_program(lib: &RoutineLib, code: &[Inst]) -> Result<(), Vec<BalanceError>> {
    let mut seen: Vec<Inst> = Vec::new();
    let distinct = code.iter().copied().filter(|&inst| {
        if seen.contains(&inst) {
            false
        } else {
            seen.push(inst);
            true
        }
    });
    check_insts(lib, distinct)
}

fn check_insts(
    lib: &RoutineLib,
    insts: impl Iterator<Item = Inst>,
) -> Result<(), Vec<BalanceError>> {
    let mut errors = Vec::new();
    for inst in insts {
        let sequence = translate(inst, 1);
        let got = sequence_effect(lib, &sequence);
        let expected = expected_effect(inst);
        if got != expected {
            errors.push(BalanceError {
                inst,
                expected,
                got,
            });
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_entire_psder_level_is_stack_balanced() {
        let lib = RoutineLib::new();
        if let Err(errors) = check_all(&lib) {
            for e in &errors {
                eprintln!("{e}");
            }
            panic!("{} stack-balance violations", errors.len());
        }
    }

    #[test]
    fn individual_routine_effects() {
        let lib = RoutineLib::new();
        assert_eq!(
            routine_effect(&lib, RoutineId::Bin(dir::AluOp::Add)),
            RoutineEffect {
                net: -1,
                pops_args: false
            }
        );
        assert_eq!(routine_effect(&lib, RoutineId::WriteR).net, -1);
        assert_eq!(routine_effect(&lib, RoutineId::Select).net, -2); // 3 pops, 1 push
        let call = routine_effect(&lib, RoutineId::DirCall);
        assert_eq!(call.net, -1); // pops proc+next, pushes entry
        assert!(call.pops_args);
        assert_eq!(routine_effect(&lib, RoutineId::DirRet).net, 1);
    }

    #[test]
    fn whole_programs_check_clean() {
        let lib = RoutineLib::new();
        for s in hlr::programs::ALL {
            let p = dir::compiler::compile(&s.compile().unwrap());
            check_program(&lib, &p.code).unwrap_or_else(|e| panic!("{}: {e:?}", s.name));
            let (fused, _) = dir::fuse::fuse(&p);
            check_program(&lib, &fused.code).unwrap_or_else(|e| panic!("{} fused: {e:?}", s.name));
        }
    }

    #[test]
    fn sequence_effect_counts_interp_stack() {
        let lib = RoutineLib::new();
        let seq = translate(Inst::JumpIfFalse(3), 4);
        // cond on stack before; 2 pushes, Select (-2), INTERP-stack (-1).
        assert_eq!(sequence_effect(&lib, &seq), -1);
    }

    #[test]
    fn balance_error_formats() {
        let e = BalanceError {
            inst: Inst::Pop,
            expected: -1,
            got: 0,
        };
        assert!(e.to_string().contains("expected net -1"));
    }
}
