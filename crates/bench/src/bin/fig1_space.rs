//! Regenerates **Figure 1**: the two-dimensional space of program
//! representations.
//!
//! The vertical axis is semantic level (HLR source → fused DIR → stack DIR
//! → PSDER/DER expansion), the horizontal axis is degree of encoding
//! (byte-aligned → packed → contextual → Huffman → pair-Huffman). For
//! every point we measure the quantities the figure annotates:
//!
//! * program size (falls to the right and, per instruction count, upward);
//! * interpreter/side-table size (grows to the right);
//! * decode cost `d` and simulated interpretation time (grow to the right,
//!   fall upward).
//!
//! Run with `cargo run -p uhm-bench --bin fig1_space --release`.
//! With `--json`, emits a versioned RunReport instead of the text tables.

use dir::encode::SchemeKind;
use dir::program::Program;
use telemetry::Json;
use uhm::{Machine, Mode};
use uhm_bench::corpus::tiers;
use uhm_bench::{bench_report, json_flag, workloads};

/// PSDER/DER footprint of a program: every instruction expanded to its
/// steering sequence (what storing the whole program pre-translated would
/// cost), in 24-bit short words.
fn expanded_der_bits(p: &Program) -> u64 {
    let words: usize = p.code.iter().map(|&i| psder::translate(i, 0).len()).sum();
    words as u64 * 24
}

fn main() {
    let json = json_flag();
    if !json {
        println!("Figure 1 — the space of program representations");
        println!("(sizes in bits; T = simulated cycles per DIR instruction, pure interpreter)\n");
    }
    let mut rows = Vec::new();
    let mut grand: Vec<(String, u64, u64, f64, f64)> = Vec::new();
    for w in workloads() {
        let hlr_bits = hlr::programs::by_name(w.name)
            .expect("workload names come from the sample set")
            .source
            .len() as u64
            * 8;
        if !json {
            println!("== {} (HLR source: {} bits) ==", w.name, hlr_bits);
            println!(
                "{:>8} {:>12} {:>10} {:>10} {:>8} {:>8}",
                "level", "encoding", "prog bits", "side bits", "d", "T"
            );
        }
        let mut points = Vec::new();
        // Higher semantic level first: the figure's vertical axis.
        for (level, prog) in tiers(&w).into_iter().rev() {
            for scheme in SchemeKind::all() {
                let image = scheme.encode(prog);
                let machine = Machine::new(prog, scheme);
                let t = machine
                    .run(&Mode::Interpreter)
                    .expect("samples are trap-free")
                    .metrics
                    .time_per_instruction();
                if json {
                    points.push(Json::obj(vec![
                        ("level", level.into()),
                        ("encoding", scheme.label().into()),
                        ("program_bits", image.program_bits().into()),
                        ("side_table_bits", image.side_table_bits.into()),
                        ("d", image.mean_decode_cost().into()),
                        ("time_per_instruction", t.into()),
                    ]));
                } else {
                    println!(
                        "{:>8} {:>12} {:>10} {:>10} {:>8.2} {:>8.2}",
                        level,
                        scheme.label(),
                        image.program_bits(),
                        image.side_table_bits,
                        image.mean_decode_cost(),
                        t
                    );
                }
                grand.push((
                    format!("{level}/{scheme}"),
                    image.program_bits(),
                    image.side_table_bits,
                    image.mean_decode_cost(),
                    t,
                ));
            }
            // The fully expanded DER point (no decode, maximal size).
            if json {
                points.push(Json::obj(vec![
                    ("level", level.into()),
                    ("encoding", "expanded-DER".into()),
                    ("program_bits", expanded_der_bits(prog).into()),
                    ("side_table_bits", 0u64.into()),
                    ("d", 0.0.into()),
                ]));
            } else {
                println!(
                    "{:>8} {:>12} {:>10} {:>10} {:>8.2} {:>8}",
                    level,
                    "expanded-DER",
                    expanded_der_bits(prog),
                    0,
                    0.0,
                    "n/a"
                );
            }
        }
        if json {
            rows.push(Json::obj(vec![
                ("workload", w.name.into()),
                ("hlr_bits", hlr_bits.into()),
                ("points", Json::Arr(points)),
            ]));
        } else {
            println!();
        }
    }

    // Aggregate view across the whole suite.
    if !json {
        println!("== aggregate across all workloads ==");
        println!(
            "{:>18} {:>12} {:>12} {:>8} {:>8}",
            "point", "prog bits", "side bits", "d", "T"
        );
    }
    let mut agg: std::collections::BTreeMap<String, (u64, u64, f64, f64, u32)> =
        std::collections::BTreeMap::new();
    for (k, p, s, d, t) in grand {
        let e = agg.entry(k).or_insert((0, 0, 0.0, 0.0, 0));
        e.0 += p;
        e.1 += s;
        e.2 += d;
        e.3 += t;
        e.4 += 1;
    }
    let mut agg_rows = Vec::new();
    for (k, (p, s, d, t, n)) in agg {
        if json {
            agg_rows.push(Json::obj(vec![
                ("point", k.into()),
                ("program_bits", p.into()),
                ("side_table_bits", s.into()),
                ("d", (d / n as f64).into()),
                ("time_per_instruction", (t / n as f64).into()),
            ]));
        } else {
            println!(
                "{:>18} {:>12} {:>12} {:>8.2} {:>8.2}",
                k,
                p,
                s,
                d / n as f64,
                t / n as f64
            );
        }
    }
    if json {
        rows.push(Json::obj(vec![("aggregate", Json::Arr(agg_rows))]));
        let config = Json::obj(vec![("mode", "interpreter".into())]);
        println!("{}", bench_report("fig1_space", config, rows).render());
        return;
    }
    println!("\nReading the figure: moving right (more encoding) shrinks programs but");
    println!("raises d and T; moving up (higher semantic level) shrinks programs AND");
    println!("lowers T — dynamic translation lets the static form sit far right while");
    println!("the working set executes from the top.");
}
