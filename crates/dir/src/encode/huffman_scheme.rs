//! Frequency-based (Huffman) opcode encoding over contextual operand
//! fields (§3.2: "a more sophisticated encoding of the Huffman type may be
//! employed by measuring the frequency of occurrence of each operator ...
//! in the static representation of the program").
//!
//! Decoding a Huffman code "entails traversing a decoding tree guided by an
//! examination of the encoded field"; the cost model charges the paper's
//! two host instructions per level of the walk.

use crate::bitstream::{BitReader, BitWriter};
use crate::huffman::Tree;
use crate::isa::Opcode;
use crate::program::Program;

use super::contextual::{read_fields, write_fields};
use super::{ContextTables, Decoded, DecoderData, Image, ImageError, Scheme, SchemeKind};
use crate::isa::Inst;

/// The Huffman scheme (unit struct; the codebook is measured from the
/// program's static opcode frequencies).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HuffmanScheme;

impl Scheme for HuffmanScheme {
    fn kind(&self) -> SchemeKind {
        SchemeKind::Huffman
    }

    fn encode(&self, program: &Program) -> Image {
        let tables = ContextTables::build(program);
        let tree = Tree::from_frequencies(&program.opcode_histogram());
        let mut w = BitWriter::new();
        let mut offsets = Vec::with_capacity(program.code.len());
        for (i, inst) in program.code.iter().enumerate() {
            offsets.push(w.bit_len());
            let region = tables.region_of(i as u32);
            tree.encode(inst.opcode() as usize, &mut w);
            write_fields(&mut w, inst, region);
        }
        let (bytes, bit_len) = w.finish();
        Image {
            kind: SchemeKind::Huffman,
            bytes,
            bit_len,
            offsets,
            side_table_bits: tables.table_bits() + tree.table_bits(),
            decoder: DecoderData::Huffman { tree, tables },
        }
    }
}

/// Decodes one instruction; cost: region lookup (1) + tree walk (2 per code
/// bit) + width lookup/extract/mask per field (3 each).
pub(super) fn decode(
    reader: &mut BitReader<'_>,
    tree: &Tree,
    tables: &ContextTables,
    index: u32,
) -> Result<Decoded, ImageError> {
    let region = tables.region_of(index);
    let (symbol, code_bits) = tree.decode(reader)?;
    let opcode = Opcode::from_u8(symbol as u8).ok_or(ImageError::Decode(
        crate::isa::DecodeError::BadOpcode(symbol as u8),
    ))?;
    let fields = read_fields(reader, opcode, region)?;
    let inst = Inst::from_parts(opcode, &fields)?;
    Ok(Decoded {
        inst,
        cost: 1 + 2 * code_bits + 3 * opcode.field_kinds().len() as u32,
        bits: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::compile;

    #[test]
    fn round_trip_all_samples() {
        for s in hlr::programs::ALL {
            let p = compile(&s.compile().unwrap());
            let image = HuffmanScheme.encode(&p);
            assert_eq!(image.decode_all().unwrap(), p.code, "{}", s.name);
        }
    }

    #[test]
    fn huffman_beats_contextual_on_skewed_programs() {
        // Array-heavy code has very skewed opcode usage.
        let p = compile(&hlr::programs::SIEVE.compile().unwrap());
        let ctx = super::super::Contextual.encode(&p);
        let huff = HuffmanScheme.encode(&p);
        assert!(huff.bit_len < ctx.bit_len);
    }

    #[test]
    fn opcode_stream_is_within_a_bit_of_entropy() {
        let p = compile(&hlr::programs::MATMUL.compile().unwrap());
        let freqs = p.opcode_histogram();
        let tree = Tree::from_frequencies(&freqs);
        let h = crate::huffman::entropy(&freqs);
        let w = tree.expected_width(&freqs);
        assert!(w < h + 1.0, "expected width {w}, entropy {h}");
    }

    #[test]
    fn decode_cost_reflects_code_length() {
        let p = compile(&hlr::programs::SIEVE.compile().unwrap());
        let image = HuffmanScheme.encode(&p);
        // Costs must vary across instructions (rare opcodes walk deeper).
        let costs: Vec<u32> = (0..image.len() as u32)
            .map(|i| image.decode(i).unwrap().cost)
            .collect();
        let min = costs.iter().min().unwrap();
        let max = costs.iter().max().unwrap();
        assert!(
            max > min,
            "uniform costs suggest the tree walk is not charged"
        );
    }
}
