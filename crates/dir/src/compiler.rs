//! Compiles resolved HLR programs ([`hlr::hir`]) into DIR programs.
//!
//! This is the paper's "compile the HLR into an intermediate level"
//! translation: names were already bound to slots by semantic analysis, so
//! this pass unravels the hierarchical expression structure into postfix
//! order (Polish-notation style) and lowers structured control flow onto
//! conditional branches in the flat DIR address space.

use hlr::ast::UnOp;
use hlr::hir;

use crate::isa::{AluOp, Inst};
use crate::program::{ProcInfo, Program};

/// Compiles a resolved program into a base-tier DIR program.
///
/// The output always passes [`Program::validate`]; the compiler's test
/// suite asserts this for every sample and for randomly generated programs.
///
/// # Example
///
/// ```
/// let hir = hlr::compile("proc main() begin write 1 + 2; end")?;
/// let prog = dir::compiler::compile(&hir);
/// prog.validate().unwrap();
/// # Ok::<(), hlr::Error>(())
/// ```
pub fn compile(program: &hir::Program) -> Program {
    let mut c = Compiler {
        code: Vec::new(),
        program,
    };

    // Prelude: global initialisers, call main, halt. The prelude runs in a
    // zero-size frame, which is sound because global initialisers can only
    // reference globals (enforced by semantic analysis).
    let mut prelude_ctx = ProcCtx::new(0);
    for stmt in &program.global_init {
        c.stmt(stmt, &mut prelude_ctx);
    }
    let call_at = c.emit(Inst::Call(program.entry as u32));
    debug_assert!(call_at > 0 || program.global_init.is_empty());
    c.emit(Inst::Halt);

    let mut procs = Vec::new();
    for (i, p) in program.procs.iter().enumerate() {
        let entry = c.code.len() as u32;
        let mut ctx = ProcCtx::new(p.frame_size);
        for stmt in &p.body {
            c.stmt(stmt, &mut ctx);
        }
        // Implicit return at the end: functions return 0.
        if p.ret.is_some() {
            c.emit(Inst::PushConst(0));
        }
        c.emit(Inst::Return);
        let end = c.code.len() as u32;
        procs.push(ProcInfo {
            name: p.name.clone(),
            entry,
            end,
            n_args: p.n_params,
            frame_size: p.frame_size + ctx.max_temps,
            returns_value: p.ret.is_some(),
        });
        debug_assert_eq!(i, procs.len() - 1);
    }

    Program {
        code: c.code,
        procs,
        entry_proc: program.entry as u32,
        globals_size: program.globals_size,
    }
}

/// Per-procedure compilation state: a stack allocator for temporaries
/// placed above the HLR-visible frame slots.
struct ProcCtx {
    base: u32,
    temps_in_use: u32,
    max_temps: u32,
}

impl ProcCtx {
    fn new(frame_size: u32) -> Self {
        ProcCtx {
            base: frame_size,
            temps_in_use: 0,
            max_temps: 0,
        }
    }

    fn alloc_temp(&mut self) -> u32 {
        let slot = self.base + self.temps_in_use;
        self.temps_in_use += 1;
        self.max_temps = self.max_temps.max(self.temps_in_use);
        slot
    }

    fn free_temp(&mut self) {
        debug_assert!(self.temps_in_use > 0);
        self.temps_in_use -= 1;
    }
}

struct Compiler<'p> {
    code: Vec<Inst>,
    #[allow(dead_code)] // kept for future cross-procedure optimisations
    program: &'p hir::Program,
}

impl<'p> Compiler<'p> {
    fn emit(&mut self, inst: Inst) -> usize {
        self.code.push(inst);
        self.code.len() - 1
    }

    /// Emits a branch with a placeholder target, returning its index for
    /// later patching.
    fn emit_branch(&mut self, make: impl Fn(u32) -> Inst) -> usize {
        self.emit(make(u32::MAX))
    }

    fn patch(&mut self, at: usize, target: u32) {
        self.code[at] = self.code[at].map_target(|_| target);
    }

    fn here(&self) -> u32 {
        self.code.len() as u32
    }

    fn push_var(&mut self, var: hir::VarRef) {
        match var {
            hir::VarRef::Global { slot } => self.emit(Inst::PushGlobal(slot)),
            hir::VarRef::Local { slot } => self.emit(Inst::PushLocal(slot)),
        };
    }

    fn store_var(&mut self, var: hir::VarRef) {
        match var {
            hir::VarRef::Global { slot } => self.emit(Inst::StoreGlobal(slot)),
            hir::VarRef::Local { slot } => self.emit(Inst::StoreLocal(slot)),
        };
    }

    fn expr(&mut self, e: &hir::Expr) {
        match e {
            hir::Expr::Int(v) => {
                self.emit(Inst::PushConst(*v));
            }
            hir::Expr::Bool(b) => {
                self.emit(Inst::PushConst(*b as i64));
            }
            hir::Expr::Load(var) => self.push_var(*var),
            hir::Expr::LoadIndexed { arr, index } => {
                self.expr(index);
                self.emit(if arr.global {
                    Inst::LoadArrGlobal {
                        base: arr.base,
                        len: arr.len,
                    }
                } else {
                    Inst::LoadArrLocal {
                        base: arr.base,
                        len: arr.len,
                    }
                });
            }
            hir::Expr::Call { proc, args } => {
                for a in args {
                    self.expr(a);
                }
                self.emit(Inst::Call(*proc as u32));
            }
            hir::Expr::Binary { op, lhs, rhs } => {
                self.expr(lhs);
                self.expr(rhs);
                self.emit(Inst::Bin(AluOp::from_binop(*op)));
            }
            hir::Expr::Unary { op, operand } => {
                self.expr(operand);
                self.emit(match op {
                    UnOp::Neg => Inst::Neg,
                    UnOp::Not => Inst::Not,
                });
            }
        }
    }

    fn body(&mut self, stmts: &[hir::Stmt], ctx: &mut ProcCtx) {
        for s in stmts {
            self.stmt(s, ctx);
        }
    }

    fn stmt(&mut self, stmt: &hir::Stmt, ctx: &mut ProcCtx) {
        match stmt {
            hir::Stmt::Store { var, value } => {
                self.expr(value);
                self.store_var(*var);
            }
            hir::Stmt::StoreIndexed { arr, index, value } => {
                self.expr(index);
                self.expr(value);
                self.emit(if arr.global {
                    Inst::StoreArrGlobal {
                        base: arr.base,
                        len: arr.len,
                    }
                } else {
                    Inst::StoreArrLocal {
                        base: arr.base,
                        len: arr.len,
                    }
                });
            }
            hir::Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.expr(cond);
                let to_else = self.emit_branch(Inst::JumpIfFalse);
                self.body(then_branch, ctx);
                if else_branch.is_empty() {
                    let end = self.here();
                    self.patch(to_else, end);
                } else {
                    let to_end = self.emit_branch(Inst::Jump);
                    let else_at = self.here();
                    self.patch(to_else, else_at);
                    self.body(else_branch, ctx);
                    let end = self.here();
                    self.patch(to_end, end);
                }
            }
            hir::Stmt::While { cond, body } => {
                let head = self.here();
                self.expr(cond);
                let to_end = self.emit_branch(Inst::JumpIfFalse);
                self.body(body, ctx);
                self.emit(Inst::Jump(head));
                let end = self.here();
                self.patch(to_end, end);
            }
            hir::Stmt::For {
                var,
                from,
                to,
                body,
            } => {
                // limit is evaluated once into a compiler temporary.
                let limit = ctx.alloc_temp();
                self.expr(from);
                self.store_var(*var);
                self.expr(to);
                self.emit(Inst::StoreLocal(limit));
                let head = self.here();
                self.push_var(*var);
                self.emit(Inst::PushLocal(limit));
                self.emit(Inst::Bin(AluOp::Le));
                let to_end = self.emit_branch(Inst::JumpIfFalse);
                self.body(body, ctx);
                self.push_var(*var);
                self.emit(Inst::PushConst(1));
                self.emit(Inst::Bin(AluOp::Add));
                self.store_var(*var);
                self.emit(Inst::Jump(head));
                let end = self.here();
                self.patch(to_end, end);
                ctx.free_temp();
            }
            hir::Stmt::Block(stmts) => self.body(stmts, ctx),
            hir::Stmt::CallStmt {
                proc,
                args,
                has_result,
            } => {
                for a in args {
                    self.expr(a);
                }
                self.emit(Inst::Call(*proc as u32));
                if *has_result {
                    self.emit(Inst::Pop);
                }
            }
            hir::Stmt::Return(value) => {
                if let Some(v) = value {
                    self.expr(v);
                }
                self.emit(Inst::Return);
            }
            hir::Stmt::Write(value) => {
                self.expr(value);
                self.emit(Inst::Write);
            }
            hir::Stmt::Skip => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Opcode;

    fn compile_src(src: &str) -> Program {
        compile(&hlr::compile(src).unwrap())
    }

    #[test]
    fn output_always_validates_for_samples() {
        for s in hlr::programs::ALL {
            let p = compile(&s.compile().unwrap());
            p.validate().unwrap_or_else(|e| panic!("{}: {e}", s.name));
        }
    }

    #[test]
    fn output_validates_for_generated_programs() {
        for seed in 0..30 {
            let ast = hlr::generate::program(seed, &hlr::generate::Config::default());
            let hir = hlr::sema::analyze(&ast).unwrap();
            compile(&hir)
                .validate()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn prelude_calls_entry_then_halts() {
        let p = compile_src("proc main() begin skip; end");
        assert_eq!(p.code[0], Inst::Call(0));
        assert_eq!(p.code[1], Inst::Halt);
    }

    #[test]
    fn global_init_precedes_call() {
        let p = compile_src("int g := 5; proc main() begin skip; end");
        assert_eq!(p.code[0], Inst::PushConst(5));
        assert_eq!(p.code[1], Inst::StoreGlobal(0));
        assert_eq!(p.code[2], Inst::Call(0));
    }

    #[test]
    fn expression_is_postfix() {
        let p = compile_src("proc main() begin write 1 + 2 * 3; end");
        let main = &p.procs[0];
        let body = &p.code[main.entry as usize..main.end as usize];
        assert_eq!(
            &body[..5],
            &[
                Inst::PushConst(1),
                Inst::PushConst(2),
                Inst::PushConst(3),
                Inst::Bin(AluOp::Mul),
                Inst::Bin(AluOp::Add),
            ]
        );
    }

    #[test]
    fn if_without_else_branches_past_then() {
        let p = compile_src("proc main() begin if true then write 1; write 2; end");
        let main = &p.procs[0];
        let code = &p.code[main.entry as usize..main.end as usize];
        // [PushConst 1(true), JumpIfFalse end_then, PushConst 1, Write, PushConst 2, Write, Return]
        match code[1] {
            Inst::JumpIfFalse(t) => assert_eq!(t, main.entry + 4),
            other => panic!("expected JumpIfFalse, got {other:?}"),
        }
    }

    #[test]
    fn while_loop_jumps_back_to_head() {
        let p = compile_src("proc main() begin int i := 0; while i < 3 do i := i + 1; end");
        let main = &p.procs[0];
        let code = &p.code[main.entry as usize..main.end as usize];
        let head_rel = 2; // after the init store
        let jump_back = code
            .iter()
            .find_map(|i| match i {
                Inst::Jump(t) => Some(*t),
                _ => None,
            })
            .expect("loop must contain a back jump");
        assert_eq!(jump_back, main.entry + head_rel);
    }

    #[test]
    fn for_loop_allocates_limit_temp() {
        let p = compile_src("proc main() begin int i; for i := 0 to 9 do skip; end");
        // One HLR slot (i) + one limit temporary.
        assert_eq!(p.procs[0].frame_size, 2);
    }

    #[test]
    fn nested_for_loops_stack_temps() {
        let p = compile_src(
            "proc main() begin
                int i; int j;
                for i := 0 to 3 do for j := 0 to 3 do skip;
             end",
        );
        // Two HLR slots + two simultaneous limit temps.
        assert_eq!(p.procs[0].frame_size, 4);
    }

    #[test]
    fn sequential_for_loops_reuse_temp() {
        let p = compile_src(
            "proc main() begin
                int i;
                for i := 0 to 3 do skip;
                for i := 0 to 5 do skip;
             end",
        );
        assert_eq!(p.procs[0].frame_size, 2);
    }

    #[test]
    fn function_without_return_pushes_zero() {
        let p = compile_src("proc f() -> int begin skip; end proc main() begin write f(); end");
        let f = &p.procs[0];
        let code = &p.code[f.entry as usize..f.end as usize];
        assert_eq!(code, &[Inst::PushConst(0), Inst::Return]);
    }

    #[test]
    fn call_statement_pops_unused_result() {
        let p = compile_src("proc f() -> int begin return 1; end proc main() begin call f(); end");
        let main = &p.procs[1];
        let code = &p.code[main.entry as usize..main.end as usize];
        assert_eq!(code[0], Inst::Call(0));
        assert_eq!(code[1], Inst::Pop);
    }

    #[test]
    fn no_placeholder_targets_remain() {
        for s in hlr::programs::ALL {
            let p = compile(&s.compile().unwrap());
            for (i, inst) in p.code.iter().enumerate() {
                if let Some(t) = inst.target() {
                    assert_ne!(t, u32::MAX, "{}: unpatched branch at {i}", s.name);
                }
            }
        }
    }

    #[test]
    fn opcode_histogram_is_plausible_for_sieve() {
        let p = compile(&hlr::programs::SIEVE.compile().unwrap());
        let h = p.opcode_histogram();
        assert!(h[Opcode::StoreArrGlobal as usize] > 0);
        assert!(h[Opcode::LoadArrGlobal as usize] > 0);
        assert!(h[Opcode::JumpIfFalse as usize] > 0);
    }
}
