//! Static representation statistics: the measurements behind Figure 1 and
//! the encoding studies.

use crate::encode::{Image, SchemeKind};
use crate::huffman::entropy;
use crate::isa::{FieldKind, Opcode, FIELD_KINDS, OPCODES, OPCODE_COUNT};
use crate::program::Program;

/// Static statistics of one DIR program.
#[derive(Debug, Clone, PartialEq)]
pub struct StaticStats {
    /// Instruction count.
    pub instructions: usize,
    /// Static opcode histogram.
    pub opcode_counts: [u64; OPCODE_COUNT],
    /// Shannon entropy of the opcode distribution (bits/opcode).
    pub opcode_entropy: f64,
    /// Total operand fields per kind.
    pub field_counts: [u64; FIELD_KINDS.len()],
    /// Mean operand fields per instruction.
    pub mean_fields: f64,
}

impl StaticStats {
    /// Gathers statistics from a program.
    pub fn collect(program: &Program) -> StaticStats {
        let opcode_counts = program.opcode_histogram();
        let mut field_counts = [0u64; FIELD_KINDS.len()];
        let mut total_fields = 0u64;
        for inst in &program.code {
            for kind in inst.opcode().field_kinds() {
                field_counts[kind.index()] += 1;
                total_fields += 1;
            }
        }
        StaticStats {
            instructions: program.code.len(),
            opcode_counts,
            opcode_entropy: entropy(&opcode_counts),
            field_counts,
            mean_fields: if program.code.is_empty() {
                0.0
            } else {
                total_fields as f64 / program.code.len() as f64
            },
        }
    }

    /// The `n` most frequent opcodes with their counts, descending.
    pub fn top_opcodes(&self, n: usize) -> Vec<(Opcode, u64)> {
        let mut pairs: Vec<(Opcode, u64)> = OPCODES
            .iter()
            .map(|&op| (op, self.opcode_counts[op as usize]))
            .collect();
        pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        pairs.truncate(n);
        pairs
    }

    /// Count of operand fields of one kind.
    pub fn fields_of(&self, kind: FieldKind) -> u64 {
        self.field_counts[kind.index()]
    }
}

/// Size/decode-cost summary of one encoded image, for representation-space
/// tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImageSummary {
    /// The encoding scheme.
    pub scheme: SchemeKind,
    /// Program size in bits.
    pub program_bits: u64,
    /// Decoder-side table size in bits.
    pub side_table_bits: u64,
    /// Mean encoded instruction width in bits.
    pub mean_inst_bits: f64,
    /// Mean modelled decode cost per instruction (`d`).
    pub mean_decode_cost: f64,
}

impl ImageSummary {
    /// Summarises an image.
    pub fn of(image: &Image) -> ImageSummary {
        ImageSummary {
            scheme: image.kind,
            program_bits: image.program_bits(),
            side_table_bits: image.side_table_bits,
            mean_inst_bits: image.mean_inst_bits(),
            mean_decode_cost: image.mean_decode_cost(),
        }
    }

    /// Size reduction of this image relative to a baseline size in bits.
    pub fn reduction_vs(&self, baseline_bits: u64) -> f64 {
        1.0 - self.program_bits as f64 / baseline_bits as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::compile;
    use crate::encode::encode_all;

    #[test]
    fn collect_counts_match_program() {
        let p = compile(&hlr::programs::SIEVE.compile().unwrap());
        let st = StaticStats::collect(&p);
        assert_eq!(st.instructions, p.code.len());
        assert_eq!(st.opcode_counts.iter().sum::<u64>() as usize, p.code.len());
        assert!(st.opcode_entropy > 1.0);
        assert!(st.mean_fields > 0.0);
    }

    #[test]
    fn top_opcodes_is_sorted_descending() {
        let p = compile(&hlr::programs::MATMUL.compile().unwrap());
        let st = StaticStats::collect(&p);
        let top = st.top_opcodes(5);
        assert_eq!(top.len(), 5);
        for w in top.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn image_summaries_track_the_tradeoff() {
        let p = compile(&hlr::programs::QUEENS.compile().unwrap());
        let summaries: Vec<ImageSummary> = encode_all(&p).iter().map(ImageSummary::of).collect();
        let byte = &summaries[0];
        let pair = &summaries[4];
        assert!(pair.reduction_vs(byte.program_bits) > 0.25);
        assert!(pair.mean_decode_cost > byte.mean_decode_cost);
    }

    #[test]
    fn fields_of_accessor() {
        let p = compile(&hlr::programs::SIEVE.compile().unwrap());
        let st = StaticStats::collect(&p);
        assert!(st.fields_of(FieldKind::GlobalSlot) > 0);
        assert!(st.fields_of(FieldKind::Target) > 0);
    }
}
