//! Semantic analysis: contour-model name resolution, type checking and
//! frame-slot assignment.
//!
//! This pass performs the binding that the paper assigns to the compiler:
//! symbolic names are bound "once and for all" to numeric (scope, slot)
//! pairs so that no associative lookup remains at interpretation time, and
//! nested blocks (contours) are flattened onto a frame with stack-disciplined
//! slot reuse.

use std::collections::HashMap;

use crate::ast;
use crate::ast::{BinOp, UnOp};
use crate::error::{Error, Result};
use crate::hir;
use crate::types::Type;
use crate::Span;

/// Analyses a parsed program, producing the resolved [`hir::Program`].
///
/// # Errors
///
/// Returns the first semantic error: unknown or duplicate names, type
/// mismatches, arity mismatches, a missing `main`, misuse of arrays, or
/// invalid `return` forms.
///
/// # Example
///
/// ```
/// let ast = hlr::parser::parse("proc main() begin int x := 2; write x; end")?;
/// let hir = hlr::sema::analyze(&ast)?;
/// assert_eq!(hir.procs[hir.entry].frame_size, 1);
/// # Ok::<(), hlr::Error>(())
/// ```
pub fn analyze(program: &ast::Program) -> Result<hir::Program> {
    Analyzer::new(program)?.run(program)
}

/// A declared variable as seen by the resolver.
#[derive(Debug, Clone, Copy)]
struct Binding {
    ty: Type,
    slot: u32,
    global: bool,
}

/// Signature of a procedure, gathered before bodies are analysed so that
/// mutual recursion resolves.
#[derive(Debug, Clone)]
struct Signature {
    params: Vec<Type>,
    ret: Option<Type>,
}

struct Analyzer {
    proc_index: HashMap<String, usize>,
    signatures: Vec<Signature>,
    globals: HashMap<String, Binding>,
    globals_size: u32,
}

/// Per-procedure resolution state.
struct ProcCtx {
    /// Stack of contours; each maps name -> binding.
    scopes: Vec<HashMap<String, Binding>>,
    /// Next free frame slot.
    watermark: u32,
    /// High-water mark = frame size.
    frame_size: u32,
    /// Return type of the enclosing procedure.
    ret: Option<Type>,
    /// Contour statistics for encoding studies.
    contour_count: u32,
    max_visible_slots: u32,
}

impl ProcCtx {
    fn push_scope(&mut self) {
        self.scopes.push(HashMap::new());
        self.contour_count += 1;
    }

    fn pop_scope(&mut self) {
        let scope = self.scopes.pop().expect("scope stack underflow");
        let released: u32 = scope.values().map(|b| b.ty.slot_count()).sum();
        self.watermark -= released;
    }

    fn declare(&mut self, name: &str, ty: Type, span: Span) -> Result<Binding> {
        let scope = self.scopes.last_mut().expect("no open scope");
        if scope.contains_key(name) {
            return Err(Error::sema(
                format!("`{name}` is already declared in this contour"),
                span,
            ));
        }
        let binding = Binding {
            ty,
            slot: self.watermark,
            global: false,
        };
        self.watermark += ty.slot_count();
        self.frame_size = self.frame_size.max(self.watermark);
        self.max_visible_slots = self.max_visible_slots.max(self.watermark);
        scope.insert(name.to_string(), binding);
        Ok(binding)
    }

    fn lookup(&self, name: &str) -> Option<Binding> {
        self.scopes
            .iter()
            .rev()
            .find_map(|scope| scope.get(name).copied())
    }
}

impl Analyzer {
    fn new(program: &ast::Program) -> Result<Self> {
        let mut proc_index = HashMap::new();
        let mut signatures = Vec::new();
        for (i, p) in program.procs.iter().enumerate() {
            if proc_index.insert(p.name.clone(), i).is_some() {
                return Err(Error::sema(
                    format!("duplicate procedure `{}`", p.name),
                    p.span,
                ));
            }
            for param in &p.params {
                if !param.ty.is_scalar() {
                    return Err(Error::sema("parameters must be scalar", param.span));
                }
            }
            signatures.push(Signature {
                params: p.params.iter().map(|p| p.ty).collect(),
                ret: p.ret,
            });
        }
        Ok(Analyzer {
            proc_index,
            signatures,
            globals: HashMap::new(),
            globals_size: 0,
        })
    }

    fn run(mut self, program: &ast::Program) -> Result<hir::Program> {
        // Globals: assign slots and collect initialiser statements. The
        // initialisers may not call procedures or reference other variables
        // declared later; we enforce "only already-declared globals".
        let mut global_init = Vec::new();
        for decl in &program.globals {
            if self.globals.contains_key(&decl.name) {
                return Err(Error::sema(
                    format!("duplicate global `{}`", decl.name),
                    decl.span,
                ));
            }
            let binding = Binding {
                ty: decl.ty,
                slot: self.globals_size,
                global: true,
            };
            self.globals_size += decl.ty.slot_count();
            if let Some(init) = &decl.init {
                // Type-check the initialiser in a context with no locals.
                let mut ctx = ProcCtx {
                    scopes: vec![HashMap::new()],
                    watermark: 0,
                    frame_size: 0,
                    ret: None,
                    contour_count: 0,
                    max_visible_slots: 0,
                };
                let (expr, ty) = self.expr(init, &mut ctx)?;
                if ty != decl.ty {
                    return Err(Error::sema(
                        format!(
                            "initialiser for `{}` has type {ty}, expected {}",
                            decl.name, decl.ty
                        ),
                        decl.span,
                    ));
                }
                global_init.push(hir::Stmt::Store {
                    var: hir::VarRef::Global { slot: binding.slot },
                    value: expr,
                });
            }
            self.globals.insert(decl.name.clone(), binding);
        }

        let mut procs = Vec::new();
        for p in &program.procs {
            procs.push(self.proc_decl(p)?);
        }

        let entry = *self
            .proc_index
            .get("main")
            .ok_or_else(|| Error::sema("program has no `main` procedure", Span::default()))?;
        let main = &program.procs[entry];
        if !main.params.is_empty() {
            return Err(Error::sema("`main` must take no parameters", main.span));
        }
        if main.ret.is_some() {
            return Err(Error::sema("`main` must not return a value", main.span));
        }

        Ok(hir::Program {
            globals_size: self.globals_size,
            procs,
            entry,
            global_init,
        })
    }

    fn proc_decl(&mut self, p: &ast::ProcDecl) -> Result<hir::Proc> {
        let mut ctx = ProcCtx {
            scopes: Vec::new(),
            watermark: 0,
            frame_size: 0,
            ret: p.ret,
            contour_count: 0,
            max_visible_slots: 0,
        };
        ctx.push_scope();
        for param in &p.params {
            ctx.declare(&param.name, param.ty, param.span)?;
        }
        let body = self.block(&p.body, &mut ctx)?;
        ctx.pop_scope();
        Ok(hir::Proc {
            name: p.name.clone(),
            n_params: p.params.len() as u32,
            frame_size: ctx.frame_size,
            ret: p.ret,
            body,
            contour_count: ctx.contour_count,
            max_visible_slots: ctx.max_visible_slots,
        })
    }

    /// Lowers a block: declarations become explicit stores, statements are
    /// flattened into a `Vec<hir::Stmt>`.
    fn block(&mut self, block: &ast::Block, ctx: &mut ProcCtx) -> Result<Vec<hir::Stmt>> {
        ctx.push_scope();
        let mut out = Vec::new();
        for decl in &block.decls {
            // Evaluate the initialiser *before* the name is visible, so
            // `int x := x;` refers to an outer `x` (ALGOL semantics).
            let init = match &decl.init {
                Some(init) => {
                    let (expr, ty) = self.expr(init, ctx)?;
                    if ty != decl.ty {
                        return Err(Error::sema(
                            format!(
                                "initialiser for `{}` has type {ty}, expected {}",
                                decl.name, decl.ty
                            ),
                            decl.span,
                        ));
                    }
                    Some(expr)
                }
                None => None,
            };
            let binding = ctx.declare(&decl.name, decl.ty, decl.span)?;
            if let Some(value) = init {
                out.push(hir::Stmt::Store {
                    var: hir::VarRef::Local { slot: binding.slot },
                    value,
                });
            }
        }
        for stmt in &block.stmts {
            out.push(self.stmt(stmt, ctx)?);
        }
        ctx.pop_scope();
        Ok(out)
    }

    fn resolve_var(&self, name: &str, ctx: &ProcCtx, span: Span) -> Result<Binding> {
        ctx.lookup(name)
            .or_else(|| self.globals.get(name).copied())
            .ok_or_else(|| Error::sema(format!("unknown variable `{name}`"), span))
    }

    fn scalar_ref(&self, name: &str, ctx: &ProcCtx, span: Span) -> Result<(hir::VarRef, Type)> {
        let b = self.resolve_var(name, ctx, span)?;
        if !b.ty.is_scalar() {
            return Err(Error::sema(
                format!("array `{name}` must be used with an index"),
                span,
            ));
        }
        let var = if b.global {
            hir::VarRef::Global { slot: b.slot }
        } else {
            hir::VarRef::Local { slot: b.slot }
        };
        Ok((var, b.ty))
    }

    fn array_ref(&self, name: &str, ctx: &ProcCtx, span: Span) -> Result<hir::ArrRef> {
        let b = self.resolve_var(name, ctx, span)?;
        match b.ty {
            Type::IntArray(len) => Ok(hir::ArrRef {
                global: b.global,
                base: b.slot,
                len,
            }),
            other => Err(Error::sema(
                format!("`{name}` has type {other} and cannot be indexed"),
                span,
            )),
        }
    }

    fn stmt(&mut self, stmt: &ast::Stmt, ctx: &mut ProcCtx) -> Result<hir::Stmt> {
        match stmt {
            ast::Stmt::Assign { name, value, span } => {
                let (var, ty) = self.scalar_ref(name, ctx, *span)?;
                let (value, vty) = self.expr(value, ctx)?;
                if vty != ty {
                    return Err(Error::sema(
                        format!("cannot assign {vty} to `{name}` of type {ty}"),
                        *span,
                    ));
                }
                Ok(hir::Stmt::Store { var, value })
            }
            ast::Stmt::AssignIndexed {
                name,
                index,
                value,
                span,
            } => {
                let arr = self.array_ref(name, ctx, *span)?;
                let index = self.int_expr(index, ctx)?;
                let value = self.int_expr(value, ctx)?;
                Ok(hir::Stmt::StoreIndexed { arr, index, value })
            }
            ast::Stmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                let cond = self.bool_expr(cond, ctx)?;
                let then_branch = self.stmt_as_body(then_branch, ctx)?;
                let else_branch = match else_branch {
                    Some(s) => self.stmt_as_body(s, ctx)?,
                    None => Vec::new(),
                };
                Ok(hir::Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                })
            }
            ast::Stmt::While { cond, body, .. } => {
                let cond = self.bool_expr(cond, ctx)?;
                let body = self.stmt_as_body(body, ctx)?;
                Ok(hir::Stmt::While { cond, body })
            }
            ast::Stmt::For {
                var,
                from,
                to,
                body,
                span,
            } => {
                let (var, ty) = self.scalar_ref(var, ctx, *span)?;
                if ty != Type::Int {
                    return Err(Error::sema("for-loop variable must be `int`", *span));
                }
                let from = self.int_expr(from, ctx)?;
                let to = self.int_expr(to, ctx)?;
                let body = self.stmt_as_body(body, ctx)?;
                Ok(hir::Stmt::For {
                    var,
                    from,
                    to,
                    body,
                })
            }
            ast::Stmt::Block(b) => Ok(hir::Stmt::Block(self.block(b, ctx)?)),
            ast::Stmt::Call { name, args, span } => {
                let (proc, sig) = self.resolve_proc(name, *span)?;
                let args = self.check_args(name, &sig, args, ctx, *span)?;
                Ok(hir::Stmt::CallStmt {
                    proc,
                    args,
                    has_result: sig.ret.is_some(),
                })
            }
            ast::Stmt::Return { value, span } => match (&ctx.ret, value) {
                (None, None) => Ok(hir::Stmt::Return(None)),
                (None, Some(_)) => {
                    Err(Error::sema("this procedure does not return a value", *span))
                }
                (Some(_), None) => Err(Error::sema("this procedure must return a value", *span)),
                (Some(ret_ty), Some(v)) => {
                    let ret_ty = *ret_ty;
                    let (value, ty) = self.expr(v, ctx)?;
                    if ty != ret_ty {
                        return Err(Error::sema(
                            format!("returning {ty}, expected {ret_ty}"),
                            *span,
                        ));
                    }
                    Ok(hir::Stmt::Return(Some(value)))
                }
            },
            ast::Stmt::Write { value, .. } => {
                let (value, _ty) = self.expr(value, ctx)?;
                Ok(hir::Stmt::Write(value))
            }
            ast::Stmt::Skip { .. } => Ok(hir::Stmt::Skip),
        }
    }

    /// Lowers a single statement used as a loop/branch body into a statement
    /// list, splicing blocks inline (their contour is still honoured).
    fn stmt_as_body(&mut self, stmt: &ast::Stmt, ctx: &mut ProcCtx) -> Result<Vec<hir::Stmt>> {
        match stmt {
            ast::Stmt::Block(b) => self.block(b, ctx),
            other => Ok(vec![self.stmt(other, ctx)?]),
        }
    }

    fn resolve_proc(&self, name: &str, span: Span) -> Result<(usize, Signature)> {
        let idx = *self
            .proc_index
            .get(name)
            .ok_or_else(|| Error::sema(format!("unknown procedure `{name}`"), span))?;
        Ok((idx, self.signatures[idx].clone()))
    }

    fn check_args(
        &mut self,
        name: &str,
        sig: &Signature,
        args: &[ast::Expr],
        ctx: &mut ProcCtx,
        span: Span,
    ) -> Result<Vec<hir::Expr>> {
        if args.len() != sig.params.len() {
            return Err(Error::sema(
                format!(
                    "`{name}` expects {} argument(s), got {}",
                    sig.params.len(),
                    args.len()
                ),
                span,
            ));
        }
        let mut out = Vec::with_capacity(args.len());
        for (arg, &want) in args.iter().zip(&sig.params) {
            let (expr, got) = self.expr(arg, ctx)?;
            if got != want {
                return Err(Error::sema(
                    format!("argument to `{name}` has type {got}, expected {want}"),
                    arg.span(),
                ));
            }
            out.push(expr);
        }
        Ok(out)
    }

    fn int_expr(&mut self, e: &ast::Expr, ctx: &mut ProcCtx) -> Result<hir::Expr> {
        let (expr, ty) = self.expr(e, ctx)?;
        if ty != Type::Int {
            return Err(Error::sema(format!("expected int, found {ty}"), e.span()));
        }
        Ok(expr)
    }

    fn bool_expr(&mut self, e: &ast::Expr, ctx: &mut ProcCtx) -> Result<hir::Expr> {
        let (expr, ty) = self.expr(e, ctx)?;
        if ty != Type::Bool {
            return Err(Error::sema(format!("expected bool, found {ty}"), e.span()));
        }
        Ok(expr)
    }

    fn expr(&mut self, e: &ast::Expr, ctx: &mut ProcCtx) -> Result<(hir::Expr, Type)> {
        match e {
            ast::Expr::Int(v, _) => Ok((hir::Expr::Int(*v), Type::Int)),
            ast::Expr::Bool(b, _) => Ok((hir::Expr::Bool(*b), Type::Bool)),
            ast::Expr::Var(name, span) => {
                let (var, ty) = self.scalar_ref(name, ctx, *span)?;
                Ok((hir::Expr::Load(var), ty))
            }
            ast::Expr::Index { name, index, span } => {
                let arr = self.array_ref(name, ctx, *span)?;
                let index = self.int_expr(index, ctx)?;
                Ok((
                    hir::Expr::LoadIndexed {
                        arr,
                        index: Box::new(index),
                    },
                    Type::Int,
                ))
            }
            ast::Expr::Call { name, args, span } => {
                let (proc, sig) = self.resolve_proc(name, *span)?;
                let ret = sig.ret.ok_or_else(|| {
                    Error::sema(
                        format!("`{name}` returns no value and cannot be used in an expression"),
                        *span,
                    )
                })?;
                let args = self.check_args(name, &sig, args, ctx, *span)?;
                Ok((hir::Expr::Call { proc, args }, ret))
            }
            ast::Expr::Binary { op, lhs, rhs, span } => {
                let (lhs_e, lt) = self.expr(lhs, ctx)?;
                let (rhs_e, rt) = self.expr(rhs, ctx)?;
                let want = if op.takes_ints() {
                    Type::Int
                } else {
                    Type::Bool
                };
                if lt != want || rt != want {
                    return Err(Error::sema(
                        format!("operator `{op}` expects {want} operands, found {lt} and {rt}"),
                        *span,
                    ));
                }
                let ty = if op.produces_bool() {
                    Type::Bool
                } else {
                    Type::Int
                };
                Ok((
                    hir::Expr::Binary {
                        op: *op,
                        lhs: Box::new(lhs_e),
                        rhs: Box::new(rhs_e),
                    },
                    ty,
                ))
            }
            ast::Expr::Unary { op, operand, span } => {
                let (inner, ty) = self.expr(operand, ctx)?;
                let (want, out) = match op {
                    UnOp::Neg => (Type::Int, Type::Int),
                    UnOp::Not => (Type::Bool, Type::Bool),
                };
                if ty != want {
                    return Err(Error::sema(
                        format!("unary operator expects {want}, found {ty}"),
                        *span,
                    ));
                }
                Ok((
                    hir::Expr::Unary {
                        op: *op,
                        operand: Box::new(inner),
                    },
                    out,
                ))
            }
        }
    }
}

// Suppress an unused-import warning in non-test builds: BinOp is referenced
// only in doc positions above.
#[allow(unused)]
fn _uses(_: BinOp) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn analyze_src(src: &str) -> Result<hir::Program> {
        analyze(&parse(src).unwrap())
    }

    #[test]
    fn resolves_globals_and_locals() {
        let p = analyze_src("int g := 7; proc main() begin int x := g; write x; end").unwrap();
        assert_eq!(p.globals_size, 1);
        assert_eq!(p.procs[p.entry].frame_size, 1);
        assert_eq!(p.global_init.len(), 1);
    }

    #[test]
    fn sibling_blocks_reuse_slots() {
        let p = analyze_src(
            "proc main() begin
                begin int a := 1; write a; end
                begin int b := 2; int c := 3; write b + c; end
             end",
        )
        .unwrap();
        // First block uses 1 slot, second uses 2; with reuse the frame is 2.
        assert_eq!(p.procs[0].frame_size, 2);
    }

    #[test]
    fn nested_blocks_stack_slots() {
        let p = analyze_src(
            "proc main() begin
                int a := 1;
                begin int b := 2; begin int c := 3; write c; end end
                write a;
             end",
        )
        .unwrap();
        assert_eq!(p.procs[0].frame_size, 3);
        assert!(p.procs[0].contour_count >= 3);
    }

    #[test]
    fn shadowing_resolves_to_innermost() {
        let p = analyze_src(
            "proc main() begin
                int x := 1;
                begin int x := 2; write x; end
                write x;
             end",
        )
        .unwrap();
        // Inner write must reference slot 1, outer slot 0.
        let body = &p.procs[0].body;
        // body[0] = store x0, body[1] = block{store x1, write x1}, body[2] = write x0
        match &body[1] {
            hir::Stmt::Block(then_branch) => match &then_branch[1] {
                hir::Stmt::Write(hir::Expr::Load(hir::VarRef::Local { slot })) => {
                    assert_eq!(*slot, 1);
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
        match &body[2] {
            hir::Stmt::Write(hir::Expr::Load(hir::VarRef::Local { slot })) => {
                assert_eq!(*slot, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn initialiser_sees_outer_binding() {
        // ALGOL semantics: the new `x` is not in scope in its own initialiser.
        let p = analyze_src(
            "proc main() begin
                int x := 5;
                begin int x := x + 1; write x; end
             end",
        )
        .unwrap();
        match &p.procs[0].body[1] {
            hir::Stmt::Block(then_branch) => match &then_branch[0] {
                hir::Stmt::Store {
                    var: hir::VarRef::Local { slot: 1 },
                    value: hir::Expr::Binary { lhs, .. },
                } => {
                    assert_eq!(**lhs, hir::Expr::Load(hir::VarRef::Local { slot: 0 }));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn duplicate_in_same_contour_rejected() {
        assert!(analyze_src("proc main() begin int x; int x; skip; end").is_err());
    }

    #[test]
    fn unknown_variable_rejected() {
        let err = analyze_src("proc main() begin write nope; end").unwrap_err();
        assert!(err.message.contains("unknown variable"));
    }

    #[test]
    fn type_mismatch_rejected() {
        assert!(analyze_src("proc main() begin int x := true; skip; end").is_err());
        assert!(analyze_src("proc main() begin bool b := 1 + true; skip; end").is_err());
        assert!(analyze_src("proc main() begin if 3 then skip; end").is_err());
        assert!(analyze_src("proc main() begin while 0 do skip; end").is_err());
    }

    #[test]
    fn array_rules_enforced() {
        assert!(analyze_src("proc main() begin int a[4]; write a; end").is_err());
        assert!(analyze_src("proc main() begin int x; write x[0]; end").is_err());
        assert!(analyze_src("proc main() begin int a[4]; a[true] := 1; skip; end").is_err());
    }

    #[test]
    fn call_checking() {
        assert!(
            analyze_src("proc f(int a) begin skip; end proc main() begin call f(); end").is_err()
        );
        assert!(
            analyze_src("proc f(int a) begin skip; end proc main() begin call f(true); end")
                .is_err()
        );
        assert!(
            analyze_src("proc f(int a) begin skip; end proc main() begin write f(1); end").is_err()
        ); // void in expression
        assert!(analyze_src("proc main() begin call nothere(); end").is_err());
    }

    #[test]
    fn return_rules() {
        assert!(analyze_src("proc main() begin return 3; end").is_err());
        assert!(
            analyze_src("proc f() -> int begin return; end proc main() begin skip; end").is_err()
        );
        assert!(
            analyze_src("proc f() -> int begin return true; end proc main() begin skip; end")
                .is_err()
        );
    }

    #[test]
    fn mutual_recursion_resolves() {
        let p = analyze_src(
            "proc even(int n) -> bool begin if n = 0 then return true; else return odd(n - 1); end
             proc odd(int n) -> bool begin if n = 0 then return false; else return even(n - 1); end
             proc main() begin if even(4) then write 1; else write 0; end",
        )
        .unwrap();
        assert_eq!(p.procs.len(), 3);
    }

    #[test]
    fn missing_main_rejected() {
        let err = analyze_src("proc f() begin skip; end").unwrap_err();
        assert!(err.message.contains("main"));
    }

    #[test]
    fn main_signature_enforced() {
        assert!(analyze_src("proc main(int x) begin skip; end").is_err());
        assert!(analyze_src("proc main() -> int begin return 0; end").is_err());
    }

    #[test]
    fn duplicate_procs_and_globals_rejected() {
        assert!(analyze_src(
            "proc f() begin skip; end proc f() begin skip; end proc main() begin skip; end"
        )
        .is_err());
        assert!(analyze_src("int g; int g; proc main() begin skip; end").is_err());
    }

    #[test]
    fn for_loop_variable_must_be_int() {
        assert!(analyze_src("proc main() begin bool b; for b := 0 to 3 do skip; end").is_err());
    }

    #[test]
    fn contour_stats_recorded() {
        let p = analyze_src("proc main() begin int a; begin int b; begin int c; skip; end end end")
            .unwrap();
        assert_eq!(p.procs[0].max_visible_slots, 3);
        assert_eq!(p.procs[0].contour_count, 4); // param scope + body + 2 nested
    }

    #[test]
    fn global_initialiser_type_checked() {
        assert!(analyze_src("int g := true; proc main() begin skip; end").is_err());
    }

    #[test]
    fn write_accepts_bool() {
        assert!(analyze_src("proc main() begin write true; end").is_ok());
    }
}
