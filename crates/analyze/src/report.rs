//! The typed output of a whole-image analysis.

use crate::absint::RegionSummary;
use crate::callgraph::CallGraph;
use crate::dataflow::FactsReport;
use crate::diag::{Diagnostic, Severity};
use crate::pressure::PressureReport;
use crate::regionform::RegionCandidate;
use dir::facts::SiteFacts;

/// Everything the six passes found and proved about one image.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// Scheme label of the analyzed image.
    pub scheme: String,
    /// Static instruction count.
    pub insts: usize,
    /// Per-region facts from the abstract interpreter, prelude first.
    pub regions: Vec<RegionSummary>,
    /// The static call graph and its derived facts.
    pub callgraph: CallGraph,
    /// The DTB pressure estimate.
    pub pressure: PressureReport,
    /// The per-site check-elision bitmap the dataflow pass discharged
    /// (empty when passes 1–4 found errors).
    pub site_facts: SiteFacts,
    /// Fact coverage: site and discharge counts, per pass and per region.
    pub facts: FactsReport,
    /// Ranked hot-region (natural-loop) candidates with fact coverage.
    pub hot_regions: Vec<RegionCandidate>,
    /// Every finding, in pass order.
    pub diagnostics: Vec<Diagnostic>,
}

impl AnalysisReport {
    /// Number of findings at the given severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == severity)
            .count()
    }

    /// `true` when no finding is an error — the image may be verified.
    pub fn is_clean(&self) -> bool {
        self.count(Severity::Error) == 0
    }

    /// Renders the human-readable report the CLI prints.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let push = |out: &mut String, s: String| {
            out.push_str(&s);
            out.push('\n');
        };
        push(
            &mut out,
            format!(
                "analysis: {} scheme, {} instructions, {} regions",
                self.scheme,
                self.insts,
                self.regions.len()
            ),
        );
        // regions[0] is the prelude; regions[1 + i] is procs[i].
        for (i, r) in self.regions.iter().enumerate() {
            let mut extra = String::new();
            if let Some(pi) = i.checked_sub(1) {
                if self.callgraph.reachable.get(pi) == Some(&false) {
                    extra.push_str(", unreachable");
                }
                if self.callgraph.recursive.get(pi) == Some(&true) {
                    extra.push_str(", recursive");
                }
            }
            push(
                &mut out,
                format!(
                    "  {:<12} [{:>4}..{:>4}]  max stack {}{}",
                    r.name, r.start, r.end, r.max_stack, extra
                ),
            );
        }
        if let Some(chain) = self.callgraph.max_chain {
            push(&mut out, format!("call graph: max chain {chain} frames"));
        } else {
            push(
                &mut out,
                "call graph: recursive (static chain unbounded)".to_string(),
            );
        }
        if let Some(h) = &self.pressure.hot {
            push(
                &mut out,
                format!(
                    "dtb pressure: hottest {} {} [{}..{}] needs {} entries / {} words; \
                     recommend {}x{} ({}); total {} words",
                    if h.is_loop { "loop in" } else { "region" },
                    h.region,
                    h.start,
                    h.end,
                    h.insts,
                    h.words,
                    self.pressure.recommended.sets,
                    self.pressure.recommended.ways,
                    if self.pressure.fits_default {
                        "fits default"
                    } else {
                        "exceeds default"
                    },
                    self.pressure.total_words
                ),
            );
        }
        push(
            &mut out,
            format!(
                "facts: div {}/{} proved, idx {}/{} proved, {} depth-exact; \
                 {} never-taken, {} always-taken, {} unreachable",
                self.facts.div_proved,
                self.facts.div_sites,
                self.facts.idx_proved,
                self.facts.idx_sites,
                self.facts.depth_exact,
                self.facts.branches_never,
                self.facts.branches_always,
                self.facts.unreachable_insts
            ),
        );
        for (i, c) in self.hot_regions.iter().enumerate().take(8) {
            push(
                &mut out,
                format!(
                    "hot region #{}: {} [{}..{}] depth {}, {} insts, {}/{} sites proved",
                    i + 1,
                    c.region,
                    c.start,
                    c.end,
                    c.depth,
                    c.insts,
                    c.proved(),
                    c.sites()
                ),
            );
        }
        for d in &self.diagnostics {
            push(&mut out, d.to_string());
        }
        push(
            &mut out,
            format!(
                "verdict: {} ({} errors, {} warnings, {} notes)",
                if self.is_clean() { "clean" } else { "rejected" },
                self.count(Severity::Error),
                self.count(Severity::Warning),
                self.count(Severity::Info)
            ),
        );
        out
    }
}
