//! Profiler: measure the execution skew that justifies the DTB — per-
//! procedure dynamic counts, hottest instructions, and the coverage curve
//! ("how much of execution do the hottest k static instructions cover?").
//!
//! Run with `cargo run --example profiler --release`.

use dir::encode::SchemeKind;
use profile::Profile;
use uhm::{Machine, Mode};

fn main() {
    let sample = hlr::programs::MIXED;
    println!("Workload: {} — {}\n", sample.name, sample.description);
    let program = dir::compiler::compile(&sample.compile().expect("sample compiles"));
    let mut machine = Machine::new(&program, SchemeKind::Packed);
    machine.set_trace(true);
    let report = machine.run(&Mode::Interpreter).expect("trap-free");
    let trace = report.metrics.trace.expect("tracing enabled");
    let profile = Profile::from_trace(&program, &trace);

    println!(
        "{} static instructions, {} executed dynamically, {} ever touched\n",
        program.len(),
        profile.total,
        profile.touched()
    );

    println!("Dynamic instructions per procedure:");
    for (name, count) in profile.by_procedure(&program) {
        let pct = 100.0 * count as f64 / profile.total as f64;
        println!("  {name:>12}: {count:>9}  ({pct:.1}%)");
    }

    println!("\nHottest instructions:");
    for (addr, count) in profile.hottest(8) {
        println!(
            "  {addr:>5}  {count:>9}x  {}",
            dir::asm::format_inst(&program.code[addr as usize])
        );
    }

    println!("\nCoverage curve (the locality the DTB exploits):");
    for k in [4usize, 8, 16, 32, 64, 128] {
        println!(
            "  hottest {k:>3} instructions cover {:>5.1}% of execution",
            100.0 * profile.coverage(k)
        );
    }
    println!("\nA DTB of capacity k can at best achieve the coverage(k) hit ratio;");
    println!("compare with `cargo run -p uhm-bench --bin dtb_sweep --release`.");
}
