//! Regenerates the paper's Tables 2 and 3 from the analytic model — the
//! compact version of the `table2`/`table3` benchmark binaries (which add
//! the full-simulation panels).
//!
//! Run with `cargo run --example paper_tables`.

use uhm::model::{grid, printed, published};

fn print_table(name: &str, caption: &str, values: &[Vec<f64>], paper: &[[f64; 6]; 3]) {
    println!("{name} — {caption}\n");
    print!("{:>8}", "d \\ x");
    for x in published::X_VALUES {
        print!(" {x:>8.0}");
    }
    println!();
    for (i, row) in values.iter().enumerate() {
        print!("{:>8.0}", published::D_VALUES[i]);
        for v in row {
            print!(" {v:>8.2}");
        }
        println!();
    }
    // Cross-check against the published digits.
    let max_err = values
        .iter()
        .zip(paper.iter())
        .flat_map(|(row, prow)| row.iter().zip(prow.iter()).map(|(a, b)| (a - b).abs()))
        .fold(0.0f64, f64::max);
    println!("max deviation from the published table: {max_err:.3}\n");
}

fn main() {
    print_table(
        "Table 2",
        "% increase in interpretation time using the DTB as a plain level-2 cache",
        &grid(printed::f1),
        &published::TABLE2,
    );
    print_table(
        "Table 3",
        "% increase in interpretation time without the DTB",
        &grid(printed::f2),
        &published::TABLE3,
    );
    println!("Both tables regenerate to within rounding of the 1978 report. See");
    println!("`cargo run -p uhm-bench --bin table2 --release` for the measured-");
    println!("by-simulation panels and DESIGN.md for the paper's parameter");
    println!("inconsistency these closed forms paper over.");
}
