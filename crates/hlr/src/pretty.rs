//! Pretty-printer for RAUL ASTs.
//!
//! Useful for debugging the [`generate`](crate::generate) module (every
//! generated program can be rendered back to parseable source) and for
//! measuring HLR static size in the Figure-1 representation-space study:
//! the byte length of the pretty-printed source is the "HLR size" datum.

use crate::ast::*;
use std::fmt::Write as _;

/// Renders a program back to parseable RAUL source.
///
/// The output round-trips: `parse(print(parse(src)))` yields the same AST
/// up to spans.
///
/// # Example
///
/// ```
/// let ast = hlr::parser::parse("proc main() begin write 1 + 2; end")?;
/// let text = hlr::pretty::print(&ast);
/// let again = hlr::parser::parse(&text)?;
/// assert_eq!(again.procs.len(), 1);
/// # Ok::<(), hlr::Error>(())
/// ```
pub fn print(program: &Program) -> String {
    let mut p = Printer::default();
    for g in &program.globals {
        p.var_decl(g);
        p.out.push('\n');
    }
    for proc in &program.procs {
        p.proc_decl(proc);
        p.out.push('\n');
    }
    p.out
}

#[derive(Default)]
struct Printer {
    out: String,
    indent: usize,
}

impl Printer {
    fn line_start(&mut self) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
    }

    fn var_decl(&mut self, d: &VarDecl) {
        self.line_start();
        match d.ty {
            crate::types::Type::Int => {
                let _ = write!(self.out, "int {}", d.name);
            }
            crate::types::Type::Bool => {
                let _ = write!(self.out, "bool {}", d.name);
            }
            crate::types::Type::IntArray(n) => {
                let _ = write!(self.out, "int {}[{n}]", d.name);
            }
        }
        if let Some(init) = &d.init {
            self.out.push_str(" := ");
            self.expr(init);
        }
        self.out.push(';');
    }

    fn proc_decl(&mut self, p: &ProcDecl) {
        self.line_start();
        let _ = write!(self.out, "proc {}(", p.name);
        for (i, param) in p.params.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            let _ = write!(self.out, "{} {}", param.ty, param.name);
        }
        self.out.push(')');
        if let Some(ret) = p.ret {
            let _ = write!(self.out, " -> {ret}");
        }
        self.out.push('\n');
        self.block(&p.body);
        self.out.push('\n');
    }

    fn block(&mut self, b: &Block) {
        self.line_start();
        self.out.push_str("begin\n");
        self.indent += 1;
        for d in &b.decls {
            self.var_decl(d);
            self.out.push('\n');
        }
        for s in &b.stmts {
            self.stmt(s);
            self.out.push('\n');
        }
        self.indent -= 1;
        self.line_start();
        self.out.push_str("end");
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Assign { name, value, .. } => {
                self.line_start();
                let _ = write!(self.out, "{name} := ");
                self.expr(value);
                self.out.push(';');
            }
            Stmt::AssignIndexed {
                name, index, value, ..
            } => {
                self.line_start();
                let _ = write!(self.out, "{name}[");
                self.expr(index);
                self.out.push_str("] := ");
                self.expr(value);
                self.out.push(';');
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                self.line_start();
                self.out.push_str("if ");
                self.expr(cond);
                self.out.push_str(" then\n");
                self.indent += 1;
                self.stmt(then_branch);
                self.indent -= 1;
                if let Some(e) = else_branch {
                    self.out.push('\n');
                    self.line_start();
                    self.out.push_str("else\n");
                    self.indent += 1;
                    self.stmt(e);
                    self.indent -= 1;
                }
            }
            Stmt::While { cond, body, .. } => {
                self.line_start();
                self.out.push_str("while ");
                self.expr(cond);
                self.out.push_str(" do\n");
                self.indent += 1;
                self.stmt(body);
                self.indent -= 1;
            }
            Stmt::For {
                var,
                from,
                to,
                body,
                ..
            } => {
                self.line_start();
                let _ = write!(self.out, "for {var} := ");
                self.expr(from);
                self.out.push_str(" to ");
                self.expr(to);
                self.out.push_str(" do\n");
                self.indent += 1;
                self.stmt(body);
                self.indent -= 1;
            }
            Stmt::Block(b) => self.block(b),
            Stmt::Call { name, args, .. } => {
                self.line_start();
                let _ = write!(self.out, "call {name}(");
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.expr(a);
                }
                self.out.push_str(");");
            }
            Stmt::Return { value, .. } => {
                self.line_start();
                self.out.push_str("return");
                if let Some(v) = value {
                    self.out.push(' ');
                    self.expr(v);
                }
                self.out.push(';');
            }
            Stmt::Write { value, .. } => {
                self.line_start();
                self.out.push_str("write ");
                self.expr(value);
                self.out.push(';');
            }
            Stmt::Skip { .. } => {
                self.line_start();
                self.out.push_str("skip;");
            }
        }
    }

    /// Prints an expression fully parenthesised so that precedence never
    /// changes on re-parse.
    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Int(v, _) => {
                // Negative literals cannot be re-lexed as a single token;
                // parenthesise the unary minus form.
                if *v < 0 {
                    let _ = write!(self.out, "(-{})", v.unsigned_abs());
                } else {
                    let _ = write!(self.out, "{v}");
                }
            }
            Expr::Bool(b, _) => {
                let _ = write!(self.out, "{b}");
            }
            Expr::Var(name, _) => self.out.push_str(name),
            Expr::Index { name, index, .. } => {
                let _ = write!(self.out, "{name}[");
                self.expr(index);
                self.out.push(']');
            }
            Expr::Call { name, args, .. } => {
                let _ = write!(self.out, "{name}(");
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.expr(a);
                }
                self.out.push(')');
            }
            Expr::Binary { op, lhs, rhs, .. } => {
                self.out.push('(');
                self.expr(lhs);
                let _ = write!(self.out, " {op} ");
                self.expr(rhs);
                self.out.push(')');
            }
            Expr::Unary { op, operand, .. } => {
                self.out.push('(');
                match op {
                    UnOp::Neg => self.out.push('-'),
                    UnOp::Not => self.out.push_str("not "),
                }
                self.expr(operand);
                self.out.push(')');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    /// Strips spans so that ASTs can be compared structurally after a
    /// print/parse round trip.
    fn reparse(src: &str) -> String {
        let ast = parse(src).unwrap();
        print(&ast)
    }

    #[test]
    fn round_trip_preserves_structure() {
        let src = r#"
            int g := 3;
            int buf[4];
            proc add(int a, int b) -> int begin return a + b; end
            proc main() begin
                int i;
                for i := 0 to 3 do buf[i] := add(i, g);
                if buf[0] = 3 and true then write 1; else write 0;
                while g > 0 do begin g := g - 1; end
                write -g;
                skip;
            end
        "#;
        let once = reparse(src);
        let twice = reparse(&once);
        assert_eq!(once, twice, "pretty output must be a fixed point");
    }

    #[test]
    fn negative_literals_reparse() {
        let once = reparse("proc main() begin write -5; end");
        assert!(parse(&once).is_ok());
    }

    #[test]
    fn parenthesisation_preserves_precedence() {
        let src = "proc main() begin write (1 + 2) * 3; end";
        let printed = reparse(src);
        // Evaluate shape: must still be Mul at the top.
        let ast = parse(&printed).unwrap();
        match &ast.procs[0].body.stmts[0] {
            Stmt::Write { value, .. } => {
                assert!(matches!(value, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
