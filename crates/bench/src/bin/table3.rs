//! Regenerates **Table 3**: percentage increase in the average DIR
//! instruction interpretation time due to *not* using the DTB
//! (`F2 = (T1 − T2)/T2 × 100`).
//!
//! Panels as in `table2`: published closed forms, stated-parameter
//! symbolic model, and full simulation with measured parameters.
//!
//! Run with `cargo run -p uhm-bench --bin table3 --release`.
//! With `--json`, emits a versioned RunReport instead of the text panels.

use dir::encode::SchemeKind;
use telemetry::Json;
use uhm::model::{grid, printed, published, Params};
use uhm::DtbConfig;
use uhm_bench::{bench_report, json_flag, print_row, print_rule, run_three, workloads};

fn main() {
    if json_flag() {
        let rows: Vec<Json> = workloads()
            .iter()
            .map(|w| {
                let (interp, dtb, cache) = run_three(
                    &w.base,
                    SchemeKind::PairHuffman,
                    DtbConfig::with_capacity(64),
                );
                let p = Params::from_reports(&uhm::CostModel::default(), &interp, &dtb, &cache);
                let t1 = interp.metrics.time_per_instruction();
                let t2 = dtb.metrics.time_per_instruction();
                Json::obj(vec![
                    ("workload", w.name.into()),
                    ("d", p.d.into()),
                    ("x", p.x.into()),
                    ("h_d", p.hd.into()),
                    ("t1", t1.into()),
                    ("t2", t2.into()),
                    ("f2_percent", (100.0 * (t1 - t2) / t2).into()),
                ])
            })
            .collect();
        let config = Json::obj(vec![
            ("scheme", "pair".into()),
            ("dtb_entries", 64u64.into()),
        ]);
        println!("{}", bench_report("table3", config, rows).render());
        return;
    }
    let xs: Vec<f64> = published::X_VALUES.to_vec();
    println!("Table 3 — F2: % increase in interpretation time without a DTB");
    println!("\nPanel A: paper's printed formula (matches the published table)\n");
    print_row("d \\ x", &xs);
    print_rule(xs.len());
    for (i, row) in grid(printed::f2).iter().enumerate() {
        print_row(&format!("d = {}", published::D_VALUES[i]), row);
    }
    println!("\nPanel B: symbolic model with the paper's stated parameter values\n");
    print_row("d \\ x", &xs);
    print_rule(xs.len());
    for &d in &published::D_VALUES {
        let row: Vec<f64> = xs
            .iter()
            .map(|&x| Params::paper_stated(d, x).f2())
            .collect();
        print_row(&format!("d = {d}"), &row);
    }
    println!("\nPanel C: measured by simulation (PairHuffman static DIR, 64-entry DTB)\n");
    println!(
        "{:>14} {:>8} {:>8} {:>8} {:>8} {:>8} {:>9}",
        "workload", "d", "x", "h_D", "T1", "T2", "F2 (%)"
    );
    print_rule(6);
    for w in workloads() {
        let (interp, dtb, cache) = run_three(
            &w.base,
            SchemeKind::PairHuffman,
            DtbConfig::with_capacity(64),
        );
        let p = Params::from_reports(&uhm::CostModel::default(), &interp, &dtb, &cache);
        let t1 = interp.metrics.time_per_instruction();
        let t2 = dtb.metrics.time_per_instruction();
        println!(
            "{:>14} {:>8.2} {:>8.2} {:>8.3} {:>8.2} {:>8.2} {:>9.2}",
            w.name,
            p.d,
            p.x,
            p.hd,
            t1,
            t2,
            100.0 * (t1 - t2) / t2
        );
    }
}
