//! **E17 — the analyze gate (load-time verification):** runs the
//! whole-image static verifier over the full sample corpus under every
//! encoding scheme at both semantic tiers, checks that every image
//! verifies clean, that every known-bad fixture is rejected with the
//! right diagnostic family, and that the `Verified` fast path of the DIR
//! reference executor is bit-identical to the checked path. Wall-clock
//! for both paths is measured and reported alongside.
//!
//! Run with `cargo run -p uhm-bench --release --bin analyze_gate`.
//! With `--json`, emits a versioned AnalyzeReport (schema 3): one verdict
//! entry per corpus image plus fixture verdicts and the measured
//! checked/trusted timing ratio in the aggregate.
//! With `--smoke`, exits non-zero if (a) any corpus image fails to
//! verify, (b) any fixture is accepted, or (c) any program's verified
//! execution diverges from the checked execution. Timing is reported but
//! never gates: wall-clock ratios are too noisy for CI on the fast
//! interpreter loop.

use std::hint::black_box;
use std::process::ExitCode;
use std::time::Instant;

use analyze::{AnalysisReport, DiagCode, Severity, Verified};
use dir::encode::{fixtures, Image, SchemeKind};
use dir::exec::Limits;
use dir::program::Program;
use telemetry::{AnalyzeReport, Json};
use uhm_bench::corpus::encoded_corpus;
use uhm_bench::workloads;

/// One verified corpus entry, kept for the timing pass.
struct CorpusEntry {
    name: String,
    scheme: SchemeKind,
    report: AnalysisReport,
    verified: Option<Verified<Image>>,
}

/// One known-bad fixture with the diagnostic code its rejection must
/// carry.
struct BadFixture {
    name: &'static str,
    expect: DiagCode,
    report: AnalysisReport,
}

fn corpus() -> Vec<CorpusEntry> {
    encoded_corpus()
        .into_iter()
        .map(|entry| {
            let name = entry.name();
            let report = analyze::analyze(&entry.program, &entry.image);
            let verified = analyze::verify(&entry.program, entry.image).ok();
            CorpusEntry {
                name,
                scheme: entry.scheme,
                report,
                verified,
            }
        })
        .collect()
}

fn bad_fixtures() -> Vec<BadFixture> {
    let sample = dir::compiler::compile(
        &hlr::compile("proc main() begin int i; for i := 0 to 9 do write i; end")
            .expect("fixture source compiles"),
    );
    let mut out = Vec::new();
    for (name, expect, image) in [
        (
            "truncated_codebook",
            DiagCode::CodecDefect,
            fixtures::truncated_codebook(&sample),
        ),
        (
            "conflicting_codebook",
            DiagCode::CodecDefect,
            fixtures::conflicting_codebook(&sample),
        ),
        (
            "oversized_field_width",
            DiagCode::CodecDefect,
            fixtures::oversized_field_width(&sample),
        ),
    ] {
        out.push(BadFixture {
            name,
            expect,
            report: analyze::analyze(&sample, &image),
        });
    }
    // Hand-built DIR-level defects: the absint pass must catch what no
    // compiler-produced program contains.
    for (name, expect, program) in [
        (
            "stack_underflow",
            DiagCode::StackUnderflow,
            bad_program(dir::Inst::Pop),
        ),
        (
            "jump_out_of_range",
            DiagCode::JumpOutOfRange,
            bad_program(dir::Inst::Jump(999)),
        ),
        (
            "uninitialized_local",
            DiagCode::UninitializedLocal,
            bad_program(dir::Inst::PushLocal(0)),
        ),
    ] {
        let image = SchemeKind::ByteAligned.encode(&program);
        out.push(BadFixture {
            name,
            expect,
            report: analyze::analyze(&program, &image),
        });
    }
    out
}

/// A minimal program whose procedure body is `bad` followed by enough
/// padding to stay structurally well-formed.
fn bad_program(bad: dir::Inst) -> Program {
    Program {
        code: vec![
            dir::Inst::Call(0),
            dir::Inst::Halt,
            bad,
            dir::Inst::PushConst(0),
            dir::Inst::Pop,
            dir::Inst::Return,
        ],
        procs: vec![dir::program::ProcInfo {
            name: "main".into(),
            entry: 2,
            end: 6,
            n_args: 0,
            frame_size: 1,
            returns_value: false,
        }],
        entry_proc: 0,
        globals_size: 0,
    }
}

/// Times one call of `f`, returning elapsed ns.
fn time<T>(mut f: impl FnMut() -> T) -> u64 {
    let t = Instant::now();
    black_box(f());
    t.elapsed().as_nanos() as u64
}

/// Differential + timing pass: checked vs verified execution of every
/// base-tier workload. Returns `(identical, checked_ns, trusted_ns)`.
///
/// The two paths are timed interleaved (checked, trusted, checked, ...)
/// and summarized per workload as the minimum over rounds, so a
/// frequency ramp or a scheduling hiccup cannot systematically favour
/// whichever path ran second.
fn differential() -> (bool, u64, u64) {
    const ROUNDS: usize = 7;
    let mut identical = true;
    let mut checked_ns = 0;
    let mut trusted_ns = 0;
    for w in workloads() {
        let verified = analyze::verify(&w.base, SchemeKind::ByteAligned.encode(&w.base))
            .expect("corpus verifies clean");
        let want = dir::exec::run(&w.base).expect("corpus is trap-free");
        let (got, _) =
            analyze::run_verified(&verified, Limits::default()).expect("corpus is trap-free");
        if got != want {
            eprintln!("analyze gate: {} diverged on the trusted path", w.name);
            identical = false;
        }
        let mut best_checked = u64::MAX;
        let mut best_trusted = u64::MAX;
        for _ in 0..ROUNDS {
            best_checked = best_checked.min(time(|| dir::exec::run(&w.base).unwrap()));
            best_trusted = best_trusted.min(time(|| {
                analyze::run_verified(&verified, Limits::default()).unwrap()
            }));
        }
        checked_ns += best_checked;
        trusted_ns += best_trusted;
    }
    (identical, checked_ns, trusted_ns)
}

/// The per-image verdict entry shared by the JSON artifact and `raul
/// analyze` (same canonical shape).
fn verdict_json(name: &str, report: &AnalysisReport) -> Json {
    let diagnostics: Vec<Json> = report
        .diagnostics
        .iter()
        .map(|d| {
            Json::obj(vec![
                ("code", d.code.id().into()),
                ("severity", d.severity().to_string().as_str().into()),
                ("message", d.message.as_str().into()),
            ])
        })
        .collect();
    Json::obj(vec![
        ("name", name.into()),
        ("scheme", report.scheme.as_str().into()),
        ("clean", report.is_clean().into()),
        ("errors", (report.count(Severity::Error) as i64).into()),
        ("warnings", (report.count(Severity::Warning) as i64).into()),
        ("notes", (report.count(Severity::Info) as i64).into()),
        ("diagnostics", Json::Arr(diagnostics)),
    ])
}

fn main() -> ExitCode {
    let json = std::env::args().any(|a| a == "--json");
    let smoke = std::env::args().any(|a| a == "--smoke");

    let entries = corpus();
    let clean = entries.iter().filter(|e| e.report.is_clean()).count();
    let fixture_reports = bad_fixtures();
    let rejected = fixture_reports
        .iter()
        .filter(|f| !f.report.is_clean() && f.report.diagnostics.iter().any(|d| d.code == f.expect))
        .count();
    let (identical, checked_ns, trusted_ns) = differential();
    let speedup = checked_ns as f64 / trusted_ns.max(1) as f64;

    let pass = clean == entries.len() && rejected == fixture_reports.len() && identical;

    if json {
        let mut images: Vec<Json> = entries
            .iter()
            .map(|e| verdict_json(&format!("{}/{}", e.name, e.scheme.label()), &e.report))
            .collect();
        images.extend(
            fixture_reports
                .iter()
                .map(|f| verdict_json(&format!("fixture/{}", f.name), &f.report)),
        );
        let report = AnalyzeReport::new(
            "analyze_gate",
            Json::obj(vec![
                ("schemes", (SchemeKind::all().len() as i64).into()),
                ("tiers", 2i64.into()),
            ]),
            Json::Arr(images),
            Json::obj(vec![
                ("images", (entries.len() as i64).into()),
                ("clean", (clean as i64).into()),
                ("fixtures", (fixture_reports.len() as i64).into()),
                ("fixtures_rejected", (rejected as i64).into()),
                ("differential_identical", identical.into()),
                ("checked_ns", (checked_ns as i64).into()),
                ("trusted_ns", (trusted_ns as i64).into()),
                ("trusted_speedup", speedup.into()),
                ("pass", pass.into()),
            ]),
        );
        println!("{}", report.render());
    } else {
        println!(
            "analyze gate: {}/{} corpus images verify clean ({} workloads x 2 tiers x {} schemes)",
            clean,
            entries.len(),
            workloads().len(),
            SchemeKind::all().len()
        );
        for f in &fixture_reports {
            let hit = f.report.diagnostics.iter().any(|d| d.code == f.expect);
            println!(
                "  fixture {:>22}: {} (expected {}, {})",
                f.name,
                if f.report.is_clean() {
                    "ACCEPTED"
                } else {
                    "rejected"
                },
                f.expect.id(),
                if hit { "found" } else { "MISSING" }
            );
        }
        println!(
            "differential: outputs {} | checked {:.1} ms vs trusted {:.1} ms ({:.2}x)",
            if identical { "identical" } else { "DIVERGED" },
            checked_ns as f64 / 1e6,
            trusted_ns as f64 / 1e6,
            speedup
        );
        // Surface any unexpectedly dirty corpus entry with its report.
        for e in entries.iter().filter(|e| !e.report.is_clean()) {
            println!("--- {} under {} ---", e.name, e.scheme);
            print!("{}", e.report.render());
            debug_assert!(e.verified.is_none());
        }
    }

    if smoke && !pass {
        eprintln!(
            "analyze smoke FAIL: {}/{} clean, {}/{} fixtures rejected, differential {}",
            clean,
            entries.len(),
            rejected,
            fixture_reports.len(),
            if identical { "ok" } else { "diverged" }
        );
        return ExitCode::FAILURE;
    }
    if smoke {
        println!(
            "analyze smoke PASS: {} images clean, {} fixtures rejected, trusted path {:.2}x",
            clean, rejected, speedup
        );
    }
    ExitCode::SUCCESS
}
