//! # uhm-analyze — load-time whole-image static verification
//!
//! Rau's architecture trusts the static DIR image: a damaged codebook, an
//! unbalanced stack sequence or a stray branch only surfaces as a runtime
//! trap deep inside the DTB dispatch loop. This crate is the classic
//! answer — JVM-style load-time verification — for the UHM pipeline: prove
//! the invariants **once, statically, before execution**, then let the hot
//! interpreter and engine drop their per-instruction defensive checks.
//!
//! [`analyze`] runs six passes over an encoded [`Image`] and its
//! [`Program`]:
//!
//! 1. **Codec validation** — decoder-side tables (canonical-Huffman
//!    codebooks, field widths, context regions, offset index) are checked
//!    structurally, and the image is decoded once against the program it
//!    claims to encode ([`dir::encode::Image::validate_codec`]).
//! 2. **Abstract interpretation** — per-region operand-stack depth bounds,
//!    locals-initialized-before-use, branch containment and slot ranges
//!    ([`absint`]), plus the whole-program call graph with reachability
//!    and recursion facts ([`callgraph`]).
//! 3. **Cross-level consistency** — every opcode the program contains is
//!    rechecked against the PSDER translation templates and the semantic
//!    routine library ([`psder::verify::check_program`]).
//! 4. **DTB pressure** — a static translation working-set bound per region
//!    and per loop body, with a recommended DTB geometry ([`pressure`]).
//! 5. **Interprocedural dataflow** — interval value ranges and constant
//!    propagation over each region's CFG, joined across call edges via
//!    argument/return summaries, discharging *per-site* facts (divisor
//!    nonzero, index in bounds, decided branches, unreachable code) into
//!    a [`SiteFacts`] bitmap ([`dataflow`]). Facts are only computed for
//!    images that are clean after passes 1–4.
//! 6. **Region formation** — natural-loop detection with nesting depths,
//!    ranking hot-region candidates and their fact coverage
//!    ([`regionform`]).
//!
//! [`verify`] turns a clean analysis into a [`Verified`] witness, the only
//! way to reach the trusted fast paths ([`dir::exec::run_trusted_with`],
//! `psder::Engine::set_trusted`, `uhm::Machine::load`). The witness owns
//! the image, the program it was proved against, *and* the per-site fact
//! bitmap, so neither the whole-image fast path nor per-site check
//! elision can be reached with a mismatched pair.
//!
//! ```
//! use dir::encode::SchemeKind;
//!
//! let hir = hlr::compile("proc main() begin write 40 + 2; end")?;
//! let program = dir::compiler::compile(&hir);
//! let image = SchemeKind::Huffman.encode(&program);
//! let verified = analyze::verify(&program, image).expect("clean program");
//! let (output, _) = analyze::run_verified(&verified, dir::exec::Limits::default())?;
//! assert_eq!(output, vec![42]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod absint;
pub mod callgraph;
pub mod dataflow;
pub mod diag;
pub mod pressure;
pub mod regionform;
pub mod report;

mod consistency;

pub use absint::RegionSummary;
pub use callgraph::CallGraph;
pub use dataflow::{FactsReport, Interval, RegionFacts};
pub use diag::{DiagCode, Diagnostic, Severity};
pub use pressure::{bound, HotSpan, PressureReport, RegionPressure, DEFAULT_DTB_ENTRIES};
pub use regionform::RegionCandidate;
pub use report::AnalysisReport;

use dir::encode::Image;
use dir::exec::{ExecStats, Limits, Trap};
use dir::facts::SiteFacts;
use dir::program::Program;

/// Runs all six analysis passes over `image` and the `program` it claims
/// to encode, returning the full typed report (never failing: defects are
/// diagnostics, not errors).
pub fn analyze(program: &Program, image: &Image) -> AnalysisReport {
    let mut diags = Vec::new();

    // Pass 1: codec validation, then one full decode pinned against the
    // program — the witness-soundness linchpin: everything later is proved
    // about `program.code`, so the image must actually *be* that program.
    for issue in image.validate_codec() {
        diags.push(Diagnostic::global(DiagCode::CodecDefect, issue.to_string()));
    }
    // Only decode through tables that validated — the decoder assumes
    // structurally sound tables (that assumption is what this pass exists
    // to discharge up front).
    if diags.is_empty() {
        match image.decode_all() {
            Ok(code) if code == program.code => {}
            Ok(_) => diags.push(Diagnostic::global(
                DiagCode::ImageMismatch,
                "image decodes to a different instruction sequence than the program".to_string(),
            )),
            Err(e) => diags.push(Diagnostic::global(
                DiagCode::ImageUndecodable,
                format!("image fails to decode: {e}"),
            )),
        }
    }

    // Pass 2: abstract interpretation + call graph.
    let regions = absint::analyze_regions(program, &mut diags);
    let callgraph = callgraph::build(program, &mut diags);

    // Pass 3: cross-level consistency.
    consistency::check(program, &mut diags);

    // Pass 4: DTB pressure.
    let pressure = pressure::estimate(program, &mut diags);

    // Pass 5: interprocedural dataflow. Facts are only discharged for
    // images that are clean so far — everything the pass assumes (depth
    // consistency, slot ranges, branch containment, decode pinning) is
    // exactly what passes 1–4 prove.
    let clean_so_far = !diags.iter().any(|d| d.severity() == Severity::Error);
    let (site_facts, facts) = if clean_so_far {
        dataflow::analyze(program, &mut diags)
    } else {
        (
            SiteFacts::empty(program.code.len() as u32),
            FactsReport::default(),
        )
    };

    // Pass 6: loop-nesting region formation over the discharged facts.
    let hot_regions = regionform::form(program, &site_facts);

    AnalysisReport {
        scheme: image.kind.label().to_string(),
        insts: program.code.len(),
        regions,
        callgraph,
        pressure,
        site_facts,
        facts,
        hot_regions,
        diagnostics: diags,
    }
}

/// Proof that an image passed whole-image verification, together with the
/// program it was proved against. The only constructor is [`verify`]; the
/// pair cannot be taken apart and reassembled, so a trusted executor
/// reached through a witness always runs the exact code that was proved.
#[derive(Debug, Clone)]
pub struct Verified<T> {
    value: T,
    program: Program,
    facts: SiteFacts,
}

impl<T> Verified<T> {
    /// The verified value.
    pub fn get(&self) -> &T {
        &self.value
    }

    /// The program the proofs are about.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The per-site fact bitmap the dataflow pass discharged: the license
    /// for per-instruction check elision when whole-image trusted mode is
    /// unavailable (for example under fault injection, where facts are
    /// voided exactly like `TRUSTED`).
    pub fn facts(&self) -> &SiteFacts {
        &self.facts
    }
}

/// Verifies `image` against `program`: runs [`analyze`] and returns the
/// witness when no finding is an error.
///
/// # Errors
///
/// Returns the full report (boxed — it is large) when any error-severity
/// diagnostic was found; warnings and notes do not block.
pub fn verify(program: &Program, image: Image) -> Result<Verified<Image>, Box<AnalysisReport>> {
    let report = analyze(program, &image);
    if report.is_clean() {
        Ok(Verified {
            value: image,
            program: program.clone(),
            facts: report.site_facts,
        })
    } else {
        Err(Box::new(report))
    }
}

/// Executes a verified program on the DIR reference executor's trusted
/// fast path (no underflow/bounds error construction in the hot loop).
///
/// # Errors
///
/// Returns a [`Trap`] on dynamic runtime errors (division by zero, array
/// bounds, step/depth limits) — the traps no static pass can rule out.
pub fn run_verified(
    verified: &Verified<Image>,
    limits: Limits,
) -> Result<(Vec<i64>, ExecStats), Trap> {
    dir::exec::run_trusted_with(verified.program(), limits, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dir::encode::SchemeKind;

    fn program(src: &str) -> Program {
        dir::compiler::compile(&hlr::compile(src).unwrap())
    }

    #[test]
    fn corpus_verifies_clean_under_every_scheme() {
        for s in hlr::programs::ALL {
            let p = dir::compiler::compile(&s.compile().unwrap());
            for kind in SchemeKind::all() {
                let report = analyze(&p, &kind.encode(&p));
                assert!(
                    report.is_clean(),
                    "{} under {kind}: {}",
                    s.name,
                    report.render()
                );
            }
            let (fused, _) = dir::fuse::fuse(&p);
            let report = analyze(&fused, &SchemeKind::PairHuffman.encode(&fused));
            assert!(report.is_clean(), "{} fused: {}", s.name, report.render());
        }
    }

    #[test]
    fn verified_execution_matches_checked_execution() {
        for s in hlr::programs::ALL {
            let p = dir::compiler::compile(&s.compile().unwrap());
            let want = dir::exec::run(&p).unwrap();
            let v = verify(&p, SchemeKind::Huffman.encode(&p)).unwrap();
            let (got, _) = run_verified(&v, Limits::default()).unwrap();
            assert_eq!(got, want, "{}", s.name);
        }
    }

    #[test]
    fn witness_carries_the_proved_program() {
        let p = program("proc main() begin write 7; end");
        let v = verify(&p, SchemeKind::ByteAligned.encode(&p)).unwrap();
        assert_eq!(v.program().code, p.code);
        assert_eq!(v.get().kind, SchemeKind::ByteAligned);
    }

    #[test]
    fn mismatched_image_is_rejected() {
        let p = program("proc main() begin write 7; end");
        let other = program("proc main() begin write 8; end");
        let report = analyze(&p, &SchemeKind::ByteAligned.encode(&other));
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == DiagCode::ImageMismatch));
        assert!(!report.is_clean());
    }

    #[test]
    fn corrupt_codebooks_are_rejected_with_codec_codes() {
        let p = program("proc main() begin int i; for i := 0 to 9 do write i; end");
        for image in [
            dir::encode::fixtures::truncated_codebook(&p),
            dir::encode::fixtures::conflicting_codebook(&p),
            dir::encode::fixtures::oversized_field_width(&p),
        ] {
            let report = analyze(&p, &image);
            assert!(
                report
                    .diagnostics
                    .iter()
                    .any(|d| d.code == DiagCode::CodecDefect),
                "{}",
                report.render()
            );
            assert!(verify(&p, image).is_err());
        }
    }

    #[test]
    fn recursion_and_reachability_are_reported() {
        let p = program(
            "proc fac(int n) -> int begin
                if n <= 1 then return 1;
                return n * fac(n - 1);
             end
             proc dead() begin skip; end
             proc main() begin write fac(5); end",
        );
        let report = analyze(&p, &SchemeKind::ByteAligned.encode(&p));
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == DiagCode::RecursionDetected));
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == DiagCode::UnreachableProcedure && d.message.contains("dead")));
        assert!(report.callgraph.max_chain.is_none());
        // Warnings and notes do not block verification.
        assert!(report.is_clean());
    }

    #[test]
    fn acyclic_call_chains_are_measured() {
        let p = program(
            "proc leaf() -> int begin return 1; end
             proc mid() -> int begin return leaf() + 1; end
             proc main() begin write mid(); end",
        );
        let report = analyze(&p, &SchemeKind::ByteAligned.encode(&p));
        assert_eq!(report.callgraph.max_chain, Some(3)); // main -> mid -> leaf
    }

    #[test]
    fn bound_matches_the_pressure_pass_without_diagnostics() {
        let p = program(
            "proc main() begin
                int i; int acc;
                for i := 0 to 99 do acc := acc + i;
                write acc;
             end",
        );
        let full = analyze(&p, &SchemeKind::ByteAligned.encode(&p));
        let admission = bound(&p);
        assert_eq!(admission, full.pressure);
        assert!(admission.total_words > 0);
    }

    #[test]
    fn pressure_pass_finds_the_loop() {
        let p = program(
            "proc main() begin
                int i; int acc;
                for i := 0 to 99 do acc := acc + i;
                write acc;
             end",
        );
        let report = analyze(&p, &SchemeKind::ByteAligned.encode(&p));
        let hot = report.pressure.hot.as_ref().unwrap();
        assert!(hot.is_loop, "{hot:?}");
        assert!(hot.insts >= 2);
        assert!(report.pressure.fits_default);
        assert!(report.pressure.recommended.capacity() >= hot.insts as usize);
    }

    #[test]
    fn hand_built_stack_underflow_is_rejected() {
        use dir::isa::Inst;
        use dir::program::ProcInfo;
        let p = Program {
            code: vec![
                Inst::Call(0),
                Inst::Halt,
                Inst::Pop, // nothing on the stack
                Inst::Return,
            ],
            procs: vec![ProcInfo {
                name: "main".into(),
                entry: 2,
                end: 4,
                n_args: 0,
                frame_size: 0,
                returns_value: false,
            }],
            entry_proc: 0,
            globals_size: 0,
        };
        let report = analyze(&p, &SchemeKind::ByteAligned.encode(&p));
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == DiagCode::StackUnderflow && d.at == Some(2)));
    }

    #[test]
    fn hand_built_cross_region_jump_is_rejected() {
        use dir::isa::Inst;
        use dir::program::ProcInfo;
        let p = Program {
            code: vec![
                Inst::Call(0),
                Inst::Halt,
                Inst::Jump(0), // escapes into the prelude
                Inst::Return,
            ],
            procs: vec![ProcInfo {
                name: "main".into(),
                entry: 2,
                end: 4,
                n_args: 0,
                frame_size: 0,
                returns_value: false,
            }],
            entry_proc: 0,
            globals_size: 0,
        };
        let report = analyze(&p, &SchemeKind::ByteAligned.encode(&p));
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == DiagCode::JumpCrossesProcedure));
    }

    #[test]
    fn uninitialized_local_read_is_an_error_when_never_stored() {
        use dir::isa::Inst;
        use dir::program::ProcInfo;
        let p = Program {
            code: vec![
                Inst::Call(0),
                Inst::Halt,
                Inst::PushLocal(0), // read, never stored in the region
                Inst::Write,
                Inst::Return,
            ],
            procs: vec![ProcInfo {
                name: "main".into(),
                entry: 2,
                end: 5,
                n_args: 0,
                frame_size: 1,
                returns_value: false,
            }],
            entry_proc: 0,
            globals_size: 0,
        };
        let report = analyze(&p, &SchemeKind::ByteAligned.encode(&p));
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == DiagCode::UninitializedLocal && d.at == Some(2)));
    }
}
