//! Regenerates **Table 2**: percentage increase in the average DIR
//! instruction interpretation time due to using the DTB as a plain cache
//! on the level-2 memory (`F1 = (T3 − T2)/T2 × 100`).
//!
//! Three panels:
//! 1. the paper's published numbers (printed closed forms, reproduced
//!    exactly);
//! 2. the symbolic model under the paper's *stated* parameter values
//!    (internally inconsistent with panel 1 — see DESIGN.md);
//! 3. `F1` measured by full simulation on each sample workload, with every
//!    parameter (`d`, `g`, `x`, `s1`, `s2`, `h_D`, `h_c`) taken from the
//!    machine rather than assumed.
//!
//! Run with `cargo run -p uhm-bench --bin table2 --release`.
//! With `--json`, emits a versioned RunReport instead of the text panels.

use dir::encode::SchemeKind;
use telemetry::Json;
use uhm::model::{grid, printed, published, Params};
use uhm::DtbConfig;
use uhm_bench::{bench_report, json_flag, print_row, print_rule, run_three, workloads};

/// The measured panel as JSON rows (shared with `table3` in shape).
fn measured_rows() -> Vec<Json> {
    workloads()
        .iter()
        .map(|w| {
            let (interp, dtb, cache) = run_three(
                &w.base,
                SchemeKind::PairHuffman,
                DtbConfig::with_capacity(64),
            );
            let p = Params::from_reports(&uhm::CostModel::default(), &interp, &dtb, &cache);
            let t1 = interp.metrics.time_per_instruction();
            let t2 = dtb.metrics.time_per_instruction();
            let t3 = cache.metrics.time_per_instruction();
            Json::obj(vec![
                ("workload", w.name.into()),
                ("d", p.d.into()),
                ("x", p.x.into()),
                ("h_d", p.hd.into()),
                ("h_c", p.hc.into()),
                ("t1", t1.into()),
                ("t2", t2.into()),
                ("t3", t3.into()),
                ("f1_percent", (100.0 * (t3 - t2) / t2).into()),
                ("f2_percent", (100.0 * (t1 - t2) / t2).into()),
            ])
        })
        .collect()
}

fn main() {
    if json_flag() {
        let config = Json::obj(vec![
            ("scheme", "pair".into()),
            ("dtb_entries", 64u64.into()),
        ]);
        println!(
            "{}",
            bench_report("table2", config, measured_rows()).render()
        );
        return;
    }
    let xs: Vec<f64> = published::X_VALUES.to_vec();
    println!("Table 2 — F1: % increase in interpretation time, DTB used as a plain cache");
    println!("\nPanel A: paper's printed formula (matches the published table)\n");
    print_row("d \\ x", &xs);
    print_rule(xs.len());
    for (i, row) in grid(printed::f1).iter().enumerate() {
        print_row(&format!("d = {}", published::D_VALUES[i]), row);
    }
    println!("\nPanel B: symbolic model with the paper's stated parameter values\n");
    print_row("d \\ x", &xs);
    print_rule(xs.len());
    for &d in &published::D_VALUES {
        let row: Vec<f64> = xs
            .iter()
            .map(|&x| Params::paper_stated(d, x).f1())
            .collect();
        print_row(&format!("d = {d}"), &row);
    }
    println!("\nPanel C: measured by simulation (PairHuffman static DIR, 64-entry DTB)\n");
    println!(
        "{:>14} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>9}",
        "workload", "d", "x", "h_D", "h_c", "T2", "T3", "F1 (%)"
    );
    print_rule(7);
    for w in workloads() {
        let (interp, dtb, cache) = run_three(
            &w.base,
            SchemeKind::PairHuffman,
            DtbConfig::with_capacity(64),
        );
        let p = Params::from_reports(&uhm::CostModel::default(), &interp, &dtb, &cache);
        let t2 = dtb.metrics.time_per_instruction();
        let t3 = cache.metrics.time_per_instruction();
        println!(
            "{:>14} {:>8.2} {:>8.2} {:>8.3} {:>8.3} {:>8.2} {:>8.2} {:>9.2}",
            w.name,
            p.d,
            p.x,
            p.hd,
            p.hc,
            t2,
            t3,
            100.0 * (t3 - t2) / t2
        );
    }
}
