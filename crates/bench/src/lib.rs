//! Shared helpers for the benchmark harness.
//!
//! Each binary under `src/bin/` either regenerates one table or figure
//! of Rau (1978) or gates one of the cross-cutting planes
//! (`fault_campaign`, `perf_gate`, `pool_throughput`, `analyze_gate`,
//! `profile_gate`, `chaos_campaign`, `conformance_sweep`,
//! `service_load`) against a committed baseline via `--smoke` — see
//! DESIGN.md's experiment index. Every binary prints a plain-text
//! table to stdout and the same data as a versioned report via
//! `--json`. This library holds the workload plumbing they share.

pub mod corpus;
pub mod timing;

use dir::encode::SchemeKind;
use dir::program::Program;
use telemetry::{Json, RunReport};
use uhm::{DtbConfig, Machine, Mode, Report};

/// A compiled workload at both semantic tiers.
pub struct Workload {
    /// Sample name.
    pub name: &'static str,
    /// Base-tier (stack) DIR program.
    pub base: Program,
    /// Fused-tier DIR program.
    pub fused: Program,
}

/// Compiles every sample at both semantic tiers.
pub fn workloads() -> Vec<Workload> {
    hlr::programs::ALL
        .iter()
        .map(|s| {
            let base = dir::compiler::compile(&s.compile().expect("samples compile"));
            let (fused, _) = dir::fuse::fuse(&base);
            Workload {
                name: s.name,
                base,
                fused,
            }
        })
        .collect()
}

/// A small representative subset for the slower sweeps.
pub fn core_workloads() -> Vec<Workload> {
    let keep = ["sieve", "fib_rec", "gcd_chain", "queens", "straightline"];
    workloads()
        .into_iter()
        .filter(|w| keep.contains(&w.name))
        .collect()
}

/// Runs a program in all three machine modes under one scheme, returning
/// `(interpreter, dtb, icache)` reports.
///
/// The i-cache geometry is matched to the DTB's level-1 footprint in
/// words, honouring the paper's "roughly the same resources" comparison.
pub fn run_three(
    program: &Program,
    scheme: SchemeKind,
    dtb: DtbConfig,
) -> (Report, Report, Report) {
    let machine = Machine::new(program, scheme);
    let interp = machine
        .run(&Mode::Interpreter)
        .expect("samples are trap-free");
    let dtb_report = machine.run(&Mode::Dtb(dtb)).expect("samples are trap-free");
    let cache_words = dtb.buffer_words();
    // One cache line per level-2 word; equal word count = equal capacity.
    let ways = 4;
    let sets = (cache_words / ways).max(1);
    let icache = machine
        .run(&Mode::ICache {
            geometry: memsim::Geometry::new(sets, ways),
        })
        .expect("samples are trap-free");
    (interp, dtb_report, icache)
}

/// True when the binary was invoked with `--json`: emit a versioned
/// [`RunReport`] instead of the plain-text table.
pub fn json_flag() -> bool {
    std::env::args().any(|a| a == "--json")
}

/// Builds the canonical report every bench binary emits under `--json`:
/// `tool` names the binary, `config` its knobs, and `rows` (an array of
/// objects, one per printed table row) lands in the report's `output`
/// section. The `metrics` section carries the row count so consumers can
/// sanity-check truncation.
pub fn bench_report(tool: &str, config: Json, rows: Vec<Json>) -> RunReport {
    let metrics = Json::obj(vec![("rows", (rows.len() as u64).into())]);
    let mut report = RunReport::new(tool, config, metrics, Json::obj(vec![]));
    report.output = Some(Json::Arr(rows));
    report
}

/// Serializes one machine-run report as a row: identifying fields plus
/// the full canonical metrics/derived sections from [`uhm::report`].
pub fn run_row(fields: Vec<(&'static str, Json)>, report: &Report) -> Json {
    let mut all = fields;
    all.push(("metrics", uhm::report::metrics_json(&report.metrics)));
    all.push(("derived", uhm::report::derived_json(&report.metrics)));
    Json::obj(all)
}

/// Prints a formatted row of floats.
pub fn print_row(label: &str, values: &[f64]) {
    print!("{label:>14}");
    for v in values {
        print!(" {v:>9.2}");
    }
    println!();
}

/// Prints a rule line sized for `n` value columns.
pub fn print_rule(n: usize) {
    println!("{}", "-".repeat(14 + 10 * n));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_build_and_validate() {
        for w in workloads() {
            w.base.validate().unwrap();
            w.fused.validate().unwrap();
        }
    }

    #[test]
    fn core_subset_is_nonempty() {
        assert!(core_workloads().len() >= 4);
    }

    #[test]
    fn run_three_agrees_across_modes() {
        let w = &workloads()[2]; // fib_iter: cheap
        let (a, b, c) = run_three(&w.base, SchemeKind::Packed, DtbConfig::with_capacity(64));
        assert_eq!(a.output, b.output);
        assert_eq!(b.output, c.output);
    }
}
