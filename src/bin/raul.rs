//! `raul` — the command-line driver for the UHM reproduction.
//!
//! ```text
//! raul check   <file>                    parse + type-check, rendered errors
//! raul run     <file> [options]          execute on a machine configuration
//! raul disasm  <file> [--fold] [--fuse]  DIR assembler listing
//! raul encode  <file> [--fuse]           static-size report per scheme
//! raul analyze <file> [--json]           load-time whole-image verification
//! raul profile <file>                    execution hot spots and coverage
//! raul faults  <file> [options]          run under seeded fault injection
//! raul pool    <file> [options]          run M tenant copies on N workers
//! raul chaos   <file> [options]          pool run under seeded chaos
//!                                        (worker crashes, hangs, corrupted
//!                                        shared artifacts) with supervision
//! raul serve   <file> [options]          one service step: open-loop arrivals
//!                                        through admission, fair queues and
//!                                        backpressure onto a machine pool
//! raul load    <file> [options]          stepped arrival-rate sweep; prints
//!                                        the latency-under-load trajectory
//!
//! run options:
//!   --mode interp|dtb|icache|two-level   (default: dtb)
//!   --scheme byte|packed|contextual|huffman|pair|valuehuff (default: huffman)
//!   --decoder tree|table                 host decoder plane (default: table)
//!   --dtb-entries N                      (default: 64)
//!   --dtb-unit-words N                   buffer words per allocation unit
//!   --fold                               constant-fold before compiling
//!   --fuse                               raise the semantic level
//!   --stats                              print cycle metrics and IU partition
//!   --json                               emit a versioned RunReport on stdout
//!   --window N                           sample metrics every N instructions
//!   --events FILE                        stream trace events as JSONL to FILE
//!   --trace-out FILE                     write a Chrome trace_event JSON file
//!                                        (load in Perfetto / chrome://tracing)
//!   --flame-out FILE                     write collapsed stacks for
//!                                        flamegraph.pl / speedscope
//!
//! faults options (plus the run options above):
//!   --seed N                             injector seed (default: 0xFA01)
//!   --rate P                             DTB word+tag rate (default: 1e-3)
//!   --dir-rate P | --dtb-rate P | --tag-rate P | --drop-rate P
//!   --degrade-after N                    failures before pure interpretation
//!
//! pool options (plus the run options; fault flags attach a pool-level
//! campaign whose seed is re-derived per tenant):
//!   --workers N                          worker threads (default: 4)
//!   --tenants M                          tenant copies of <file> (default: 2N)
//!
//! supervision options (pool and chaos; any of them engages the
//! supervised path):
//!   --fuel N                             modeled-cycle budget per attempt
//!   --deadline MS                        wall-clock deadline per attempt
//!   --retry N                            attempts per tenant (default: 3)
//!   --max-queue N                        shed tenants past this queue depth
//!
//! chaos options (plus pool + supervision options; `chaos` always runs
//! supervised and defaults the fuel budget to 5M cycles so injected
//! hangs are preempted):
//!   --crash-rate P                       worker-crash probability (default 0.2)
//!   --hang-rate P                        hung-tenant probability (default 0.2)
//!   --corrupt-rate P                     shared-artifact corruption (default 0.2)
//!
//! service options (`serve` and `load`; plus the run options and
//! --workers / --tenants / --seed; arrivals, queueing and latency all
//! live on the modeled clock, so every service run is bit-reproducible
//! for a given seed):
//!   --requests N                         requests per step (default: 4 x workers)
//!   --arrival-rate R                     `serve` arrival rate, requests per
//!                                        million modeled cycles (default: 8)
//!   --rates A,B,C                        `load` sweep rates (default:
//!                                        1,2,4,8,16,32,64)
//!   --watermark N                        shed arrivals past this total backlog
//!   --quota N                            shed arrivals past this per-tenant
//!                                        backlog
//!   --max-pressure W                     reject programs whose static DTB
//!                                        pressure bound exceeds W words
//!   --right-size                         shrink oversized DTB geometry to the
//!                                        analyzer's recommendation instead of
//!                                        thrashing
//!
//! `analyze` verifies the encoded image (codec tables, stack discipline,
//! branch containment, cross-level consistency, DTB pressure, dataflow
//! fact discharge) without executing it; it honours --scheme, --fold and
//! --fuse, prints the typed diagnostic report, and exits 1 when
//! verification rejects the image. --facts adds the per-region
//! check-elision fact table, --regions the full ranked hot-region
//! (natural-loop) table, and --deny-warnings makes a clean-but-warned
//! image exit 1 (a clean image with no warnings still exits 0).
//! With --json it emits a versioned AnalyzeReport (schema 7) on stdout.
//!
//! `profile` runs the program under the always-on counter plane and
//! reports per-procedure / per-opcode / per-tier cycle attribution,
//! opcode-pair frequencies and the coverage curve. It honours the run
//! options (mode, scheme, DTB geometry), accepts --trace-out and
//! --flame-out, and with --json emits a schema-v4 ProfileReport. Adding
//! --tenants M [--workers N] also profiles a pool of M tenant copies and
//! attaches the pool aggregation (mergeable per-worker latency
//! histograms, utilization, queue depth) to the report.
//!
//! Invalid machine configurations exit with status 2; runtime traps and
//! compile errors with status 1. A pool (or chaos) run exits 1 only when
//! a tenant *fails* — traps or panics; tenants that time out, are shed,
//! or are quarantined are reported, supervised outcomes and exit 0. The
//! same policy governs `serve` and `load`: rejected and shed requests
//! are the admission and backpressure policies doing their job (exit 0);
//! only trapped or panicked requests fail the command.
//! ```

use std::process::ExitCode;

use dir::encode::{DecodeMode, SchemeKind};
use profile::{CounterPlane, FlameBuilder, SpanTracer};
use telemetry::{Event, Json, JsonlSink, RingSink, TeeSink, Tier, TraceSink};
use uhm::resilience::{AdmissionPolicy, ChaosConfig, Supervisor};
use uhm::service::{Service, ServiceConfig, ServiceRun};
use uhm::{Budget, DtbConfig, FaultConfig, Machine, Mode, RetryPolicy};

/// A CLI failure, split by exit status: configuration errors (bad
/// machine geometry) exit 2, runtime failures (compile errors, traps,
/// I/O) exit 1.
#[derive(Debug, Clone, PartialEq, Eq)]
enum CliError {
    /// Invalid machine configuration (exit status 2).
    Config(String),
    /// Compile error, runtime trap or I/O failure (exit status 1).
    Run(String),
}

impl CliError {
    #[cfg(test)]
    fn message(&self) -> &str {
        match self {
            CliError::Config(m) | CliError::Run(m) => m,
        }
    }
}

impl From<String> for CliError {
    fn from(m: String) -> CliError {
        CliError::Run(m)
    }
}

/// Parsed command-line request.
#[derive(Debug, Clone, PartialEq)]
struct Cli {
    command: Command,
    path: String,
    mode: ModeArg,
    scheme: SchemeKind,
    decoder: DecodeMode,
    dtb_entries: usize,
    fold: bool,
    fuse: bool,
    stats: bool,
    json: bool,
    window: Option<u64>,
    events: Option<String>,
    trace_out: Option<String>,
    flame_out: Option<String>,
    dtb_unit_words: Option<usize>,
    workers: usize,
    tenants: Option<usize>,
    seed: u64,
    rate: Option<f64>,
    dir_rate: Option<f64>,
    dtb_rate: Option<f64>,
    tag_rate: Option<f64>,
    drop_rate: Option<f64>,
    degrade_after: Option<u32>,
    fuel: Option<u64>,
    deadline_ms: Option<u64>,
    retry: Option<u32>,
    max_queue: Option<usize>,
    crash_rate: Option<f64>,
    hang_rate: Option<f64>,
    corrupt_rate: Option<f64>,
    requests: Option<usize>,
    arrival_rate: u64,
    rates: Option<Vec<u64>>,
    watermark: Option<usize>,
    quota: Option<usize>,
    max_pressure: Option<u64>,
    right_size: bool,
    facts: bool,
    regions: bool,
    deny_warnings: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Command {
    Check,
    Run,
    Disasm,
    Encode,
    Analyze,
    Profile,
    Faults,
    Pool,
    Chaos,
    Serve,
    Load,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ModeArg {
    Interp,
    Dtb,
    ICache,
    TwoLevel,
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut it = args.iter();
    let command = match it.next().map(String::as_str) {
        Some("check") => Command::Check,
        Some("run") => Command::Run,
        Some("disasm") => Command::Disasm,
        Some("encode") => Command::Encode,
        Some("analyze") => Command::Analyze,
        Some("profile") => Command::Profile,
        Some("faults") => Command::Faults,
        Some("pool") => Command::Pool,
        Some("chaos") => Command::Chaos,
        Some("serve") => Command::Serve,
        Some("load") => Command::Load,
        Some(other) => return Err(format!("unknown command `{other}`")),
        None => {
            return Err("missing command \
                 (check|run|disasm|encode|analyze|profile|faults|pool|chaos|serve|load)"
                .into())
        }
    };
    let path = it
        .next()
        .ok_or_else(|| "missing <file> argument".to_string())?
        .clone();
    let mut cli = Cli {
        command,
        path,
        mode: ModeArg::Dtb,
        scheme: SchemeKind::Huffman,
        decoder: DecodeMode::default(),
        dtb_entries: 64,
        fold: false,
        fuse: false,
        stats: false,
        json: false,
        window: None,
        events: None,
        trace_out: None,
        flame_out: None,
        dtb_unit_words: None,
        workers: 4,
        tenants: None,
        seed: 0xFA01,
        rate: None,
        dir_rate: None,
        dtb_rate: None,
        tag_rate: None,
        drop_rate: None,
        degrade_after: None,
        fuel: None,
        deadline_ms: None,
        retry: None,
        max_queue: None,
        crash_rate: None,
        hang_rate: None,
        corrupt_rate: None,
        requests: None,
        arrival_rate: 8,
        rates: None,
        watermark: None,
        quota: None,
        max_pressure: None,
        right_size: false,
        facts: false,
        regions: false,
        deny_warnings: false,
    };
    fn rate_value(it: &mut std::slice::Iter<String>, flag: &str) -> Result<f64, String> {
        let p: f64 = it
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("bad {flag} value"))?;
        if !(0.0..=1.0).contains(&p) {
            return Err(format!("{flag} must be a probability in [0, 1]"));
        }
        Ok(p)
    }
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--mode" => {
                cli.mode = match it.next().map(String::as_str) {
                    Some("interp") => ModeArg::Interp,
                    Some("dtb") => ModeArg::Dtb,
                    Some("icache") => ModeArg::ICache,
                    Some("two-level") => ModeArg::TwoLevel,
                    other => return Err(format!("bad --mode {other:?}")),
                };
            }
            "--scheme" => {
                let name = it.next().ok_or("missing --scheme value")?;
                cli.scheme = SchemeKind::all()
                    .into_iter()
                    .find(|s| s.label() == name)
                    .ok_or_else(|| format!("unknown scheme `{name}`"))?;
            }
            "--decoder" => {
                let name = it.next().ok_or("missing --decoder value")?;
                cli.decoder = DecodeMode::parse(name)
                    .ok_or_else(|| format!("unknown decoder `{name}` (tree|table)"))?;
            }
            "--dtb-entries" => {
                cli.dtb_entries = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("bad --dtb-entries value")?;
            }
            "--fold" => cli.fold = true,
            "--fuse" => cli.fuse = true,
            "--facts" => cli.facts = true,
            "--regions" => cli.regions = true,
            "--deny-warnings" => cli.deny_warnings = true,
            "--stats" => cli.stats = true,
            "--json" => cli.json = true,
            "--window" => {
                let n: u64 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("bad --window value")?;
                if n == 0 {
                    return Err("--window must be positive".into());
                }
                cli.window = Some(n);
            }
            "--events" => {
                cli.events = Some(it.next().ok_or("missing --events value")?.clone());
            }
            "--trace-out" => {
                cli.trace_out = Some(it.next().ok_or("missing --trace-out value")?.clone());
            }
            "--flame-out" => {
                cli.flame_out = Some(it.next().ok_or("missing --flame-out value")?.clone());
            }
            "--dtb-unit-words" => {
                cli.dtb_unit_words = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("bad --dtb-unit-words value")?,
                );
            }
            "--workers" => {
                let n: usize = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("bad --workers value")?;
                if n == 0 {
                    return Err("--workers must be positive".into());
                }
                cli.workers = n;
            }
            "--tenants" => {
                let n: usize = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("bad --tenants value")?;
                if n == 0 {
                    return Err("--tenants must be positive".into());
                }
                cli.tenants = Some(n);
            }
            "--seed" => {
                let v = it.next().ok_or("missing --seed value")?;
                cli.seed = v
                    .strip_prefix("0x")
                    .map_or_else(|| v.parse().ok(), |h| u64::from_str_radix(h, 16).ok())
                    .ok_or("bad --seed value")?;
            }
            "--rate" => cli.rate = Some(rate_value(&mut it, "--rate")?),
            "--dir-rate" => cli.dir_rate = Some(rate_value(&mut it, "--dir-rate")?),
            "--dtb-rate" => cli.dtb_rate = Some(rate_value(&mut it, "--dtb-rate")?),
            "--tag-rate" => cli.tag_rate = Some(rate_value(&mut it, "--tag-rate")?),
            "--drop-rate" => cli.drop_rate = Some(rate_value(&mut it, "--drop-rate")?),
            "--degrade-after" => {
                cli.degrade_after = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("bad --degrade-after value")?,
                );
            }
            "--fuel" => {
                let n: u64 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("bad --fuel value")?;
                if n == 0 {
                    return Err("--fuel must be positive".into());
                }
                cli.fuel = Some(n);
            }
            "--deadline" => {
                let ms: u64 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("bad --deadline value (milliseconds)")?;
                if ms == 0 {
                    return Err("--deadline must be positive".into());
                }
                cli.deadline_ms = Some(ms);
            }
            "--retry" => {
                let n: u32 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("bad --retry value")?;
                if n == 0 {
                    return Err("--retry must be positive (attempts, not extra tries)".into());
                }
                cli.retry = Some(n);
            }
            "--max-queue" => {
                cli.max_queue = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("bad --max-queue value")?,
                );
            }
            "--crash-rate" => cli.crash_rate = Some(rate_value(&mut it, "--crash-rate")?),
            "--hang-rate" => cli.hang_rate = Some(rate_value(&mut it, "--hang-rate")?),
            "--corrupt-rate" => cli.corrupt_rate = Some(rate_value(&mut it, "--corrupt-rate")?),
            "--requests" => {
                let n: usize = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("bad --requests value")?;
                if n == 0 {
                    return Err("--requests must be positive".into());
                }
                cli.requests = Some(n);
            }
            "--arrival-rate" => {
                let r: u64 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("bad --arrival-rate value")?;
                if r == 0 {
                    return Err("--arrival-rate must be positive (requests per Mcycle)".into());
                }
                cli.arrival_rate = r;
            }
            "--rates" => {
                let list = it.next().ok_or("missing --rates value")?;
                let rates: Vec<u64> = list
                    .split(',')
                    .map(|v| v.trim().parse::<u64>())
                    .collect::<Result<_, _>>()
                    .map_err(|_| format!("bad --rates value `{list}` (comma-separated)"))?;
                if rates.is_empty() || rates.contains(&0) {
                    return Err("--rates entries must be positive".into());
                }
                cli.rates = Some(rates);
            }
            "--watermark" => {
                cli.watermark = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("bad --watermark value")?,
                );
            }
            "--quota" => {
                cli.quota = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("bad --quota value")?,
                );
            }
            "--max-pressure" => {
                cli.max_pressure = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("bad --max-pressure value")?,
                );
            }
            "--right-size" => cli.right_size = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(cli)
}

/// Compiles a source file through the requested pipeline stages.
fn build_program(cli: &Cli, source: &str) -> Result<dir::Program, String> {
    let mut hir = hlr::compile(source).map_err(|e| e.render(source))?;
    if cli.fold {
        let (folded, stats) = hlr::fold::fold(&hir);
        eprintln!(
            "fold: {} exprs, {} branches, {} loops",
            stats.folded_exprs, stats.pruned_branches, stats.removed_loops
        );
        hir = folded;
    }
    let mut program = dir::compiler::compile(&hir);
    if cli.fuse {
        let (fused, stats) = dir::fuse::fuse(&program);
        eprintln!(
            "fuse: {} -> {} instructions ({:.0}% smaller)",
            stats.before,
            stats.after,
            stats.reduction() * 100.0
        );
        program = fused;
    }
    program.validate().map_err(|e| e.to_string())?;
    Ok(program)
}

/// Builds and validates a DTB configuration for `entries` units, applying
/// any `--dtb-unit-words` override. Invalid geometry is a typed
/// [`uhm::ConfigError`], reported as a configuration error (exit 2).
fn dtb_config(cli: &Cli, entries: usize) -> Result<DtbConfig, CliError> {
    let mut cfg = DtbConfig::with_capacity(entries);
    if let Some(words) = cli.dtb_unit_words {
        cfg.unit_words = words;
    }
    cfg.validate()
        .map_err(|e| CliError::Config(e.to_string()))?;
    Ok(cfg)
}

fn machine_mode(cli: &Cli) -> Result<Mode, CliError> {
    Ok(match cli.mode {
        ModeArg::Interp => Mode::Interpreter,
        ModeArg::Dtb => Mode::Dtb(dtb_config(cli, cli.dtb_entries)?),
        ModeArg::ICache => Mode::ICache {
            geometry: memsim::Geometry::new((cli.dtb_entries / 4).max(1), 4),
        },
        ModeArg::TwoLevel => Mode::TwoLevelDtb {
            l1: dtb_config(cli, cli.dtb_entries)?,
            l2: dtb_config(cli, cli.dtb_entries * 8)?,
        },
    })
}

/// `true` when any fault-rate flag was given (used by `pool`, where fault
/// injection is opt-in rather than the command's purpose).
fn faults_requested(cli: &Cli) -> bool {
    cli.rate.is_some()
        || cli.dir_rate.is_some()
        || cli.dtb_rate.is_some()
        || cli.tag_rate.is_some()
        || cli.drop_rate.is_some()
}

/// `true` when any supervision flag was given (the `chaos` command is
/// always supervised, flags or not).
fn supervision_requested(cli: &Cli) -> bool {
    cli.command == Command::Chaos
        || cli.fuel.is_some()
        || cli.deadline_ms.is_some()
        || cli.retry.is_some()
        || cli.max_queue.is_some()
}

/// Builds the pool supervisor from the CLI flags. `chaos` defaults the
/// fuel budget to 5M modeled cycles when no budget was given, so an
/// injected hang is preempted instead of spinning to the step limit.
fn supervisor_config(cli: &Cli) -> Supervisor {
    let mut sup = Supervisor {
        budget: Budget {
            fuel: cli.fuel,
            deadline_ns: cli.deadline_ms.map(|ms| ms.saturating_mul(1_000_000)),
        },
        max_queue: cli.max_queue,
        ..Supervisor::default()
    };
    if cli.command == Command::Chaos && sup.budget.is_unlimited() {
        sup.budget = Budget::fuel(5_000_000);
    }
    if let Some(attempts) = cli.retry {
        sup.backoff.max_attempts = attempts;
    }
    sup.backoff.seed = cli.seed;
    sup
}

/// Builds the chaos-injection plan for `raul chaos` from the rate flags.
fn chaos_config(cli: &Cli) -> ChaosConfig {
    ChaosConfig {
        seed: cli.seed,
        worker_crash_rate: cli.crash_rate.unwrap_or(0.2),
        hang_rate: cli.hang_rate.unwrap_or(0.2),
        artifact_corruption_rate: cli.corrupt_rate.unwrap_or(0.2),
    }
}

/// Builds the fault-injection configuration from the CLI flags: `--rate`
/// sets both DTB classes; the per-class flags override it.
fn fault_config(cli: &Cli) -> FaultConfig {
    let dtb_default = cli.rate.unwrap_or(1e-3);
    FaultConfig {
        dir_bit_rate: cli.dir_rate.unwrap_or(0.0),
        dtb_word_rate: cli.dtb_rate.unwrap_or(dtb_default),
        dtb_tag_rate: cli.tag_rate.unwrap_or(dtb_default),
        drop_fetch_rate: cli.drop_rate.unwrap_or(0.0),
        ..FaultConfig::inert(cli.seed)
    }
}

/// The `config` section of a `raul` RunReport: how the run was set up.
fn run_config(cli: &Cli) -> Json {
    let mode = match cli.mode {
        ModeArg::Interp => "interp",
        ModeArg::Dtb => "dtb",
        ModeArg::ICache => "icache",
        ModeArg::TwoLevel => "two-level",
    };
    Json::obj(vec![
        ("file", cli.path.as_str().into()),
        ("mode", mode.into()),
        ("scheme", cli.scheme.label().into()),
        ("decoder", cli.decoder.label().into()),
        ("dtb_entries", (cli.dtb_entries as u64).into()),
        ("fold", cli.fold.into()),
        ("fuse", cli.fuse.into()),
        (
            "window",
            cli.window.map_or(Json::Null, |n| Json::Int(n as i64)),
        ),
    ])
}

/// The optional deep-profiling sinks a run can attach (`--trace-out`
/// builds a [`SpanTracer`], `--flame-out` a [`FlameBuilder`]). Both keep
/// `CLASSIFY_MISSES` off, so attaching them never changes the run's
/// modeled metrics.
struct ProfSinks {
    tracer: Option<SpanTracer>,
    flame: Option<FlameBuilder>,
}

impl ProfSinks {
    fn new(cli: &Cli, program: &dir::Program) -> ProfSinks {
        ProfSinks {
            tracer: cli.trace_out.as_ref().map(|_| SpanTracer::new(program)),
            flame: cli.flame_out.as_ref().map(|_| FlameBuilder::new(program)),
        }
    }

    fn active(&self) -> bool {
        self.tracer.is_some() || self.flame.is_some()
    }

    /// Span-tracer health as a `(retained, dropped)` pair, when tracing.
    fn tracer_health(&self) -> Option<(u64, u64)> {
        self.tracer.as_ref().map(|t| (t.len() as u64, t.dropped()))
    }

    /// Writes the requested artifact files and prints where they went.
    fn write_artifacts(self, cli: &Cli) -> Result<(), CliError> {
        if let (Some(path), Some(tracer)) = (&cli.trace_out, self.tracer) {
            let dropped = tracer.dropped();
            std::fs::write(path, tracer.finish())
                .map_err(|e| CliError::Run(format!("cannot write {path}: {e}")))?;
            eprintln!(
                "trace: wrote {path} (Chrome trace_event JSON; load in Perfetto){}",
                if dropped > 0 {
                    format!(" — {dropped} events dropped at the cap")
                } else {
                    String::new()
                }
            );
        }
        if let (Some(path), Some(flame)) = (&cli.flame_out, self.flame) {
            std::fs::write(path, flame.collapsed())
                .map_err(|e| CliError::Run(format!("cannot write {path}: {e}")))?;
            eprintln!(
                "flamegraph: wrote {path} ({} stacks; feed to flamegraph.pl or speedscope)",
                flame.stacks()
            );
        }
        Ok(())
    }
}

impl TraceSink for ProfSinks {
    // Profiling observes; it must not switch on the shadow miss
    // classifier and perturb the metrics it is attributing.
    const CLASSIFY_MISSES: bool = false;

    fn emit(&mut self, event: Event) {
        if let Some(t) = &mut self.tracer {
            t.emit(event);
        }
        if let Some(f) = &mut self.flame {
            f.emit(event);
        }
    }
}

/// Merges per-tenant span traces into one multi-track Chrome trace_event
/// document (each tenant is its own pid, so Perfetto shows one process
/// track per tenant).
fn merged_pool_trace(tracers: &mut [SpanTracer]) -> Json {
    let mut events = Vec::new();
    let mut dropped = 0u64;
    for t in tracers.iter_mut() {
        let doc = t.to_json();
        if let Some(arr) = doc.get("traceEvents").and_then(Json::as_arr) {
            events.extend(arr.iter().cloned());
        }
        dropped += t.dropped();
    }
    Json::obj(vec![
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", "ns".into()),
        (
            "otherData",
            Json::obj(vec![
                ("clock", "modeled-cycles".into()),
                ("cycle_ts", "1us".into()),
                ("tenant_tracks", (tracers.len() as u64).into()),
                ("dropped_events", dropped.into()),
            ]),
        ),
    ])
}

/// Prints the human-readable `--stats` block: totals, the
/// IU1/IU2/memory cycle partition, and any DTB/i-cache ratios.
fn print_stats(m: &uhm::Metrics) {
    eprintln!(
        "instructions: {}  cycles: {}  T: {:.2}",
        m.instructions,
        m.cycles.total(),
        m.time_per_instruction()
    );
    let total = m.cycles.total().max(1) as f64;
    let (iu1, iu2, mem) = (m.iu1_cycles(), m.iu2_cycles(), m.memory_cycles());
    eprintln!(
        "cycle partition: IU1 {} ({:.1}%)  IU2 {} ({:.1}%)  memory {} ({:.1}%)",
        iu1,
        iu1 as f64 / total * 100.0,
        iu2,
        iu2 as f64 / total * 100.0,
        mem,
        mem as f64 / total * 100.0
    );
    if let Some(dtb) = m.dtb {
        eprintln!(
            "dtb: h_D = {:.4} ({} hits / {} misses, {} evictions)",
            dtb.hit_ratio(),
            dtb.hits,
            dtb.misses,
            dtb.evictions
        );
        let classified = dtb.cold_misses + dtb.capacity_misses + dtb.conflict_misses;
        if classified > 0 {
            eprintln!(
                "dtb misses: {} cold, {} capacity, {} conflict",
                dtb.cold_misses, dtb.capacity_misses, dtb.conflict_misses
            );
        }
    }
    if let Some(l2) = m.dtb2 {
        eprintln!("dtb level 2: h = {:.4}", l2.hit_ratio());
    }
    if let Some(c) = m.icache {
        eprintln!("icache: h_c = {:.4}", c.hit_ratio());
    }
}

/// One per-image verdict entry of an [`telemetry::AnalyzeReport`]:
/// identity, counts, the dataflow fact coverage, the ranked hot-region
/// table, and every diagnostic with its stable code.
fn analysis_json(name: &str, report: &analyze::AnalysisReport) -> Json {
    let facts = Json::obj(vec![
        ("div_sites", (report.facts.div_sites as i64).into()),
        ("div_proved", (report.facts.div_proved as i64).into()),
        ("idx_sites", (report.facts.idx_sites as i64).into()),
        ("idx_proved", (report.facts.idx_proved as i64).into()),
        ("depth_exact", (report.facts.depth_exact as i64).into()),
        (
            "branches_never",
            (report.facts.branches_never as i64).into(),
        ),
        (
            "branches_always",
            (report.facts.branches_always as i64).into(),
        ),
        (
            "unreachable_insts",
            (report.facts.unreachable_insts as i64).into(),
        ),
    ]);
    let hot_regions: Vec<Json> = report
        .hot_regions
        .iter()
        .map(|c| {
            Json::obj(vec![
                ("region", c.region.as_str().into()),
                ("start", i64::from(c.start).into()),
                ("end", i64::from(c.end).into()),
                ("depth", (c.depth as i64).into()),
                ("insts", (c.insts as i64).into()),
                ("sites", (c.sites() as i64).into()),
                ("proved", (c.proved() as i64).into()),
                ("discharge", c.discharge().into()),
            ])
        })
        .collect();
    let diagnostics: Vec<Json> = report
        .diagnostics
        .iter()
        .map(|d| {
            Json::obj(vec![
                ("code", d.code.id().into()),
                ("severity", d.severity().to_string().as_str().into()),
                ("at", d.at.map_or(Json::Null, |a| Json::Int(i64::from(a)))),
                (
                    "region",
                    d.region
                        .as_deref()
                        .map_or(Json::Null, |r| Json::Str(r.to_string())),
                ),
                ("message", d.message.as_str().into()),
            ])
        })
        .collect();
    Json::obj(vec![
        ("name", name.into()),
        ("scheme", report.scheme.as_str().into()),
        ("clean", report.is_clean().into()),
        (
            "errors",
            (report.count(analyze::Severity::Error) as i64).into(),
        ),
        (
            "warnings",
            (report.count(analyze::Severity::Warning) as i64).into(),
        ),
        (
            "notes",
            (report.count(analyze::Severity::Info) as i64).into(),
        ),
        ("facts", facts),
        ("hot_regions", Json::Arr(hot_regions)),
        ("diagnostics", Json::Arr(diagnostics)),
    ])
}

/// Builds the service-plane configuration for `raul serve` / `raul load`
/// from the CLI flags.
fn service_config(cli: &Cli) -> ServiceConfig {
    ServiceConfig {
        workers: cli.workers,
        admission: AdmissionPolicy {
            max_pressure_words: cli.max_pressure,
            right_size: cli.right_size,
        },
        queue_watermark: cli.watermark,
        tenant_quota: cli.quota,
        seed: cli.seed,
    }
}

/// The arrival-rate schedule: a single `--arrival-rate` step for
/// `serve`, the `--rates` sweep (or its default) for `load`.
fn service_rates(cli: &Cli) -> Vec<u64> {
    if cli.command == Command::Serve {
        vec![cli.arrival_rate]
    } else {
        cli.rates
            .clone()
            .unwrap_or_else(|| vec![1, 2, 4, 8, 16, 32, 64])
    }
}

/// Per-request detail for the single step of a `raul serve` run.
fn print_serve_step(run: &ServiceRun) {
    let step = &run.steps[0];
    for r in &step.results {
        let detail = match &r.outcome {
            uhm::RequestOutcome::Completed(rep) => format!(
                "{} instructions, {} cycles",
                rep.metrics.instructions,
                rep.metrics.cycles.total()
            ),
            uhm::RequestOutcome::Trapped(trap) => format!("trap: {trap}"),
            uhm::RequestOutcome::Panicked(msg) => format!("panic: {msg}"),
            uhm::RequestOutcome::Rejected(msg) | uhm::RequestOutcome::Shed(msg) => msg.clone(),
        };
        println!(
            "{:>10} {:>10}  arrival {:>9}  latency {:>9}  {:>9}  {detail}",
            r.tenant,
            r.name,
            r.arrival_cycle,
            r.latency_cycles,
            r.outcome.status()
        );
    }
    let p = step.latency_percentiles();
    println!(
        "service: {}/{} completed at rate {}/Mcycle on {} workers \
         (queue peak {}, {} rejected, {} shed, {} lost)",
        step.outcome_count("completed"),
        step.results.len(),
        step.rate_per_mcycle,
        run.workers,
        step.queue_peak,
        step.outcome_count("rejected"),
        step.outcome_count("shed"),
        step.lost()
    );
    println!(
        "latency p50/p95/p99/p99.9: {:.0}/{:.0}/{:.0}/{:.0} cycles  \
         makespan: {} cycles",
        p.p50,
        p.p95,
        p.p99,
        p.p999,
        step.makespan_cycles()
    );
}

/// The per-step trajectory table of a `raul load` sweep.
fn print_load_trajectory(run: &ServiceRun) {
    println!(
        "{:>6} {:>5} {:>5} {:>5} {:>5} {:>6} {:>11} {:>11} {:>11}",
        "rate", "ok", "rej", "shed", "lost", "qpeak", "p50", "p95", "p99"
    );
    for s in &run.steps {
        let p = s.latency_percentiles();
        println!(
            "{:>6} {:>5} {:>5} {:>5} {:>5} {:>6} {:>11.0} {:>11.0} {:>11.0}",
            s.rate_per_mcycle,
            s.outcome_count("completed"),
            s.outcome_count("rejected"),
            s.outcome_count("shed"),
            s.lost(),
            s.queue_peak,
            p.p50,
            p.p95,
            p.p99
        );
    }
}

fn execute(cli: &Cli, source: &str) -> Result<(), CliError> {
    match cli.command {
        Command::Check => {
            let hir = hlr::compile(source).map_err(|e| e.render(source))?;
            println!(
                "ok: {} procedures, {} global slots",
                hir.procs.len(),
                hir.globals_size
            );
            Ok(())
        }
        Command::Run => {
            let program = build_program(cli, source)?;
            let mut machine = Machine::new(&program, cli.scheme);
            machine.set_decoder(cli.decoder);
            machine.set_trace(false);
            machine.set_window(cli.window);
            let mode = machine_mode(cli)?;
            let mut prof = ProfSinks::new(cli, &program);
            // Any observability flag switches to an enabled sink so the
            // miss taxonomy and event counts are collected.
            let traced = cli.json || cli.stats || cli.events.is_some();
            let mut ring_health: Option<(u64, u64)> = None;
            let mut file_health: Option<(u64, Option<String>)> = None;
            let report = if traced {
                let mut ring = RingSink::new(4096);
                let report = match &cli.events {
                    Some(path) => {
                        let file = std::fs::File::create(path)
                            .map_err(|e| format!("cannot create {path}: {e}"))?;
                        let mut jsonl = JsonlSink::new(std::io::BufWriter::new(file));
                        let run = machine
                            .run_with(
                                &mode,
                                &mut TeeSink(&mut TeeSink(&mut ring, &mut jsonl), &mut prof),
                            )
                            .map_err(|t| format!("trap: {t}"))?;
                        let mut health = (jsonl.written(), None::<String>);
                        if let Err(e) = jsonl.finish() {
                            // Surfaced in the report's trace_health (and as
                            // a warning) rather than failing the run: the
                            // execution itself succeeded.
                            eprintln!("raul: warning: writing {path}: {e}");
                            health.1 = Some(e.to_string());
                        }
                        file_health = Some(health);
                        run
                    }
                    None => machine
                        .run_with(&mode, &mut TeeSink(&mut ring, &mut prof))
                        .map_err(|t| format!("trap: {t}"))?,
                };
                if cli.stats {
                    let c = ring.counts();
                    eprintln!(
                        "events: {} total ({} hits, {} misses, {} evictions, {} translates)",
                        c.total(),
                        c.dtb_hits,
                        c.dtb_misses,
                        c.evictions,
                        c.translations
                    );
                }
                ring_health = Some((ring.len() as u64, ring.dropped()));
                report
            } else if prof.active() {
                machine
                    .run_with(&mode, &mut prof)
                    .map_err(|t| format!("trap: {t}"))?
            } else {
                machine.run(&mode).map_err(|t| format!("trap: {t}"))?
            };
            if cli.json {
                let mut rr = uhm::report::run_report("raul", run_config(cli), &report.metrics);
                rr.output = Some(Json::Arr(
                    report.output.iter().map(|&v| Json::Int(v)).collect(),
                ));
                rr.trace_health = Some(uhm::report::trace_health_json(ring_health, file_health));
                println!("{}", rr.render());
            } else {
                for v in &report.output {
                    println!("{v}");
                }
            }
            if cli.stats {
                print_stats(&report.metrics);
            }
            prof.write_artifacts(cli)?;
            Ok(())
        }
        Command::Disasm => {
            let program = build_program(cli, source)?;
            print!("{}", dir::asm::disassemble(&program));
            Ok(())
        }
        Command::Encode => {
            let program = build_program(cli, source)?;
            println!(
                "{:>12} {:>10} {:>12} {:>10} {:>12}",
                "scheme", "prog bits", "bits/instr", "decode d", "side bits"
            );
            for kind in SchemeKind::all() {
                let image = kind.encode(&program);
                println!(
                    "{:>12} {:>10} {:>12.1} {:>10.1} {:>12}",
                    kind.label(),
                    image.program_bits(),
                    image.mean_inst_bits(),
                    image.mean_decode_cost(),
                    image.side_table_bits
                );
            }
            Ok(())
        }
        Command::Analyze => {
            let program = build_program(cli, source)?;
            let image = cli.scheme.encode(&program);
            let report = analyze::analyze(&program, &image);
            if cli.json {
                let ar = telemetry::AnalyzeReport::new(
                    "raul-analyze",
                    Json::obj(vec![
                        ("file", cli.path.as_str().into()),
                        ("scheme", cli.scheme.label().into()),
                        ("fold", cli.fold.into()),
                        ("fuse", cli.fuse.into()),
                    ]),
                    Json::Arr(vec![analysis_json(&cli.path, &report)]),
                    Json::obj(vec![
                        ("images", 1i64.into()),
                        ("clean", i64::from(report.is_clean()).into()),
                        (
                            "errors",
                            (report.count(analyze::Severity::Error) as i64).into(),
                        ),
                        (
                            "warnings",
                            (report.count(analyze::Severity::Warning) as i64).into(),
                        ),
                    ]),
                );
                println!("{}", ar.render());
            } else {
                print!("{}", report.render());
                if cli.facts {
                    println!("per-region facts:");
                    for r in &report.facts.per_region {
                        println!(
                            "  {:<12} {} div {}/{}, idx {}/{}",
                            r.name,
                            if r.analyzed { "analyzed" } else { "skipped " },
                            r.div_proved,
                            r.div_sites,
                            r.idx_proved,
                            r.idx_sites
                        );
                    }
                }
                if cli.regions {
                    println!("hot regions ({} candidates):", report.hot_regions.len());
                    for (i, c) in report.hot_regions.iter().enumerate() {
                        println!(
                            "  #{:<3} {:<12} [{:>4}..{:>4}] depth {}, {} insts, \
                             {}/{} sites proved ({:.0}% discharged)",
                            i + 1,
                            c.region,
                            c.start,
                            c.end,
                            c.depth,
                            c.insts,
                            c.proved(),
                            c.sites(),
                            c.discharge() * 100.0
                        );
                    }
                }
            }
            if !report.is_clean() {
                return Err(CliError::Run(format!(
                    "verification rejected {} ({} errors)",
                    cli.path,
                    report.count(analyze::Severity::Error)
                )));
            }
            let warnings = report.count(analyze::Severity::Warning);
            if cli.deny_warnings && warnings > 0 {
                return Err(CliError::Run(format!(
                    "--deny-warnings: {} verified clean but carries {} warnings",
                    cli.path, warnings
                )));
            }
            Ok(())
        }
        Command::Profile => {
            let program = build_program(cli, source)?;
            let mut machine = Machine::new(&program, cli.scheme);
            machine.set_decoder(cli.decoder);
            let mode = machine_mode(cli)?;
            let mut plane = CounterPlane::new(&program);
            let mut prof = ProfSinks::new(cli, &program);
            let report = if prof.active() {
                machine.run_with(&mode, &mut TeeSink(&mut plane, &mut prof))
            } else {
                machine.run_with(&mode, &mut plane)
            }
            .map_err(|t| format!("trap: {t}"))?;

            // --tenants M additionally profiles M pooled copies of the
            // same image and attaches the pool aggregation (mergeable
            // per-worker latency histograms, utilization, queue depth).
            let pool_section = match cli.tenants {
                Some(tenants) => {
                    let mut shared = Machine::new(&program, cli.scheme);
                    shared.set_decoder(cli.decoder);
                    shared.freeze_translations();
                    let shared = std::sync::Arc::new(shared);
                    let mut pool = uhm::MachinePool::new(cli.workers);
                    for t in 0..tenants {
                        pool.push(
                            format!("tenant-{t}"),
                            std::sync::Arc::clone(&shared),
                            mode.clone(),
                        );
                    }
                    Some(profile::pool_profile_json(&pool.run()))
                }
                None => None,
            };
            let trace_health = prof
                .tracer_health()
                .map(|rh| uhm::report::trace_health_json(Some(rh), None));

            if cli.json {
                let mut pr = profile::profile_report(
                    "raul-profile",
                    run_config(cli),
                    &plane,
                    &report.metrics,
                );
                pr.pool = pool_section;
                pr.trace_health = trace_health;
                println!("{}", pr.render());
                prof.write_artifacts(cli)?;
                return Ok(());
            }

            let p = plane.profile();
            println!(
                "{} static, {} dynamic, {} touched",
                program.len(),
                p.total,
                p.touched()
            );
            let total_cycles = plane.cycles().max(1) as f64;
            println!("by tier:");
            for t in [Tier::Interp, Tier::Psder, Tier::Trusted] {
                let a = plane.by_tier()[t.index()];
                if a.retires == 0 {
                    continue;
                }
                println!(
                    "  {:>10}: {:>9} retires  {:>9} cycles ({:.1}%)",
                    t.label(),
                    a.retires,
                    a.cycles,
                    a.cycles as f64 / total_cycles * 100.0
                );
            }
            println!("by procedure:");
            for (name, a) in plane.by_region() {
                if a.retires == 0 {
                    continue;
                }
                println!(
                    "  {name:>10}: {:>9} retires  {:>9} cycles ({:.1}%)",
                    a.retires,
                    a.cycles,
                    a.cycles as f64 / total_cycles * 100.0
                );
            }
            println!("hottest:");
            for (addr, count) in p.hottest(10) {
                println!(
                    "  {addr:>5} {count:>9}x {:>9} cycles  {}",
                    plane.cycles_at(addr),
                    dir::asm::format_inst(&program.code[addr as usize])
                );
            }
            println!("hottest opcode pairs:");
            for (from, to, count) in plane.hottest_pairs(8) {
                println!(
                    "  {:>10} -> {:<10} {count:>9}x",
                    format!("{:?}", dir::isa::OPCODES[from]),
                    format!("{:?}", dir::isa::OPCODES[to])
                );
            }
            println!("coverage:");
            for k in [4usize, 8, 16, 32, 64, 128] {
                println!(
                    "  hottest {k:>3} instructions cover {:>5.1}% of execution",
                    100.0 * p.coverage(k)
                );
            }
            if let Some(pool) = &pool_section {
                let pct = pool.get("latency_percentiles_ns");
                let get = |k: &str| {
                    pct.and_then(|p| p.get(k))
                        .and_then(Json::as_f64)
                        .unwrap_or(0.0)
                };
                println!(
                    "pool: {}/{} tenants completed; latency p50/p95/p99/p99.9: \
                     {:.0}/{:.0}/{:.0}/{:.0} ns",
                    pool.get("completed").and_then(Json::as_i64).unwrap_or(0),
                    pool.get("tenants").and_then(Json::as_i64).unwrap_or(0),
                    get("p50"),
                    get("p95"),
                    get("p99"),
                    get("p999")
                );
            }
            prof.write_artifacts(cli)?;
            Ok(())
        }
        Command::Faults => {
            let program = build_program(cli, source)?;
            // Corrupted control flow can loop: bound the faulty run.
            let limits = uhm::Limits {
                max_steps: 5_000_000,
                ..uhm::Limits::default()
            };
            let mut machine =
                Machine::with(&program, cli.scheme, uhm::CostModel::default(), limits);
            machine.set_decoder(cli.decoder);
            let mode = machine_mode(cli)?;
            let clean = machine
                .run(&mode)
                .map_err(|t| format!("clean run trapped: {t}"))?;
            let config = fault_config(cli);
            machine.set_faults(Some(config));
            if let Some(n) = cli.degrade_after {
                machine.set_retry(RetryPolicy {
                    degrade_after: n,
                    ..RetryPolicy::default()
                });
            }
            let mut ring = RingSink::new(4096);
            let result = machine.run_with(&mode, &mut ring);
            let counts = ring.counts();
            let fault_fields = Json::obj(vec![
                ("seed", cli.seed.into()),
                ("dir_bit_rate", config.dir_bit_rate.into()),
                ("dtb_word_rate", config.dtb_word_rate.into()),
                ("dtb_tag_rate", config.dtb_tag_rate.into()),
                ("drop_fetch_rate", config.drop_fetch_rate.into()),
            ]);
            match result {
                Ok(report) => {
                    let m = &report.metrics;
                    let faults = m.faults.unwrap_or_default();
                    let matches = report.output == clean.output;
                    let overhead = if clean.metrics.cycles.total() > 0 {
                        m.cycles.total() as f64 / clean.metrics.cycles.total() as f64 - 1.0
                    } else {
                        0.0
                    };
                    let degraded_fraction = if m.instructions > 0 {
                        m.degraded_instructions as f64 / m.instructions as f64
                    } else {
                        0.0
                    };
                    if cli.json {
                        let mut cfg = run_config(cli);
                        if let Json::Obj(fields) = &mut cfg {
                            fields.push(("faults".into(), fault_fields));
                        }
                        let mut rr = uhm::report::run_report("raul-faults", cfg, m);
                        rr.output = Some(Json::obj(vec![
                            ("outcome", "ok".into()),
                            ("output_matches_clean", matches.into()),
                            ("recoveries", m.recoveries.into()),
                            ("degraded_instructions", m.degraded_instructions.into()),
                            ("degraded_fraction", degraded_fraction.into()),
                            ("cycle_overhead", overhead.into()),
                            ("events_faults_injected", counts.faults_injected.into()),
                            ("events_recovery_misses", counts.recovery_misses.into()),
                        ]));
                        println!("{}", rr.render());
                    } else {
                        println!(
                            "outcome: ok ({})",
                            if matches {
                                "output matches the clean run"
                            } else {
                                "OUTPUT DIVERGED from the clean run"
                            }
                        );
                        println!(
                            "faults injected: {} ({} dir bits, {} dtb words, {} tags, {} drops)",
                            faults.total(),
                            faults.dir_bits_flipped,
                            faults.dtb_words_corrupted,
                            faults.dtb_tags_poisoned,
                            faults.fetches_dropped
                        );
                        println!(
                            "recoveries: {}  degraded: {} instructions ({:.2}%)  fetch retries: {}",
                            m.recoveries,
                            m.degraded_instructions,
                            degraded_fraction * 100.0,
                            m.fetch_retries
                        );
                        println!("cycle overhead vs clean: {:+.2}%", overhead * 100.0);
                    }
                }
                Err(trap) => {
                    // A typed trap under injection is a reported outcome,
                    // not a CLI failure: the machine detected the damage.
                    if cli.json {
                        let obj = Json::obj(vec![
                            ("tool", "raul-faults".into()),
                            ("outcome", "trap".into()),
                            ("trap", trap.to_string().as_str().into()),
                            ("faults", fault_fields),
                            ("events_faults_injected", counts.faults_injected.into()),
                        ]);
                        println!("{}", obj.render());
                    } else {
                        println!("outcome: trap ({trap})");
                    }
                }
            }
            Ok(())
        }
        Command::Pool | Command::Chaos => {
            let program = build_program(cli, source)?;
            let mode = machine_mode(cli)?;
            let tenants = cli.tenants.unwrap_or(cli.workers * 2);
            // One machine serves every tenant: the encoded image and the
            // frozen translation snapshot are built once and shared.
            let mut machine = Machine::new(&program, cli.scheme);
            machine.set_decoder(cli.decoder);
            machine.freeze_translations();
            let machine = std::sync::Arc::new(machine);
            let mut pool = uhm::MachinePool::new(cli.workers);
            for t in 0..tenants {
                pool.push(
                    format!("tenant-{t}"),
                    std::sync::Arc::clone(&machine),
                    mode.clone(),
                );
            }
            if faults_requested(cli) {
                pool.set_faults(Some(fault_config(cli)));
            }
            if supervision_requested(cli) {
                pool.set_supervisor(Some(supervisor_config(cli)));
            }
            // Injected worker crashes panic by design; silence the
            // default hook so the report, not the backtraces, is the
            // command's output.
            let quiet = if cli.command == Command::Chaos {
                pool.set_chaos(Some(chaos_config(cli)));
                let hook = std::panic::take_hook();
                std::panic::set_hook(Box::new(|_| {}));
                Some(hook)
            } else {
                None
            };
            // --trace-out gives each tenant its own span tracer; the
            // tenant index becomes the trace pid so Perfetto shows one
            // process track per tenant.
            let (run, mut tracers) = if cli.trace_out.is_some() {
                let (run, tracers) = pool.run_with_sinks(|tenant| {
                    let mut t = SpanTracer::new(&program);
                    t.set_track(tenant as u32 + 1, 1);
                    t
                });
                (run, tracers)
            } else {
                (pool.run(), Vec::new())
            };
            if let Some(hook) = quiet {
                std::panic::set_hook(hook);
            }
            if cli.json {
                let mut config = run_config(cli);
                if let Json::Obj(fields) = &mut config {
                    fields.push(("workers".into(), (cli.workers as i64).into()));
                    fields.push(("tenants".into(), (tenants as i64).into()));
                }
                let tool = if cli.command == Command::Chaos {
                    "raul-chaos"
                } else {
                    "raul-pool"
                };
                let mut pr = uhm::report::pool_report(tool, config, &run);
                if !tracers.is_empty() {
                    let retained: u64 = tracers.iter().map(|t| t.len() as u64).sum();
                    let dropped: u64 = tracers.iter().map(SpanTracer::dropped).sum();
                    pr.trace_health = Some(uhm::report::trace_health_json(
                        Some((retained, dropped)),
                        None,
                    ));
                }
                println!("{}", pr.render());
            } else {
                for r in &run.results {
                    let detail = match &r.outcome {
                        uhm::TenantOutcome::Completed(rep) => {
                            format!(
                                "{} instructions, {} cycles",
                                rep.metrics.instructions,
                                rep.metrics.cycles.total()
                            )
                        }
                        uhm::TenantOutcome::Trapped(trap) => format!("trap: {trap}"),
                        uhm::TenantOutcome::Panicked(msg) => format!("panic: {msg}"),
                        uhm::TenantOutcome::TimedOut(trap) => format!("timed out: {trap}"),
                        uhm::TenantOutcome::Shed(msg) | uhm::TenantOutcome::Quarantined(msg) => {
                            msg.clone()
                        }
                    };
                    println!(
                        "{:>12}  worker {}  {:>9} ns  {:>9}  {detail}",
                        r.name,
                        r.worker,
                        r.latency_ns,
                        r.outcome.status()
                    );
                }
                let p = run.latency_percentiles();
                println!(
                    "pool: {}/{} completed on {} workers in {} ns ({} steals)",
                    run.completed(),
                    run.results.len(),
                    run.workers,
                    run.wall_ns,
                    run.steals
                );
                if supervision_requested(cli) {
                    println!(
                        "supervision: {} timed out, {} shed, {} quarantined, \
                         {} retries, {} worker crashes",
                        run.outcome_count("timed_out"),
                        run.outcome_count("shed"),
                        run.outcome_count("quarantined"),
                        run.retries,
                        run.worker_crashes
                    );
                }
                println!(
                    "latency p50/p95/p99/p99.9: {:.0}/{:.0}/{:.0}/{:.0} ns  aggregate: {:.2} Minstr/s",
                    p.p50,
                    p.p95,
                    p.p99,
                    p.p999,
                    run.minstr_per_sec()
                );
            }
            if let Some(path) = &cli.trace_out {
                let doc = merged_pool_trace(&mut tracers);
                std::fs::write(path, doc.render())
                    .map_err(|e| CliError::Run(format!("cannot write {path}: {e}")))?;
                eprintln!(
                    "trace: wrote {path} ({} tenant tracks; load in Perfetto)",
                    tracers.len()
                );
            }
            // Only *failures* fail the command: a timed-out, shed or
            // quarantined tenant is the supervisor doing its job, and
            // is reported (above) rather than escalated.
            let failed = run.outcome_count("trapped") + run.outcome_count("panicked");
            if failed > 0 {
                return Err(CliError::Run(format!(
                    "{failed} of {} tenants failed",
                    run.results.len()
                )));
            }
            Ok(())
        }
        Command::Serve | Command::Load => {
            let program = build_program(cli, source)?;
            let mode = machine_mode(cli)?;
            let mut machine = Machine::new(&program, cli.scheme);
            machine.set_decoder(cli.decoder);
            machine.freeze_translations();
            let machine = std::sync::Arc::new(machine);
            let lanes = cli.tenants.unwrap_or(2);
            let requests = cli.requests.unwrap_or(cli.workers * 4);
            let mut service = Service::new(service_config(cli));
            for i in 0..requests {
                service.submit(
                    format!("tenant-{}", i % lanes),
                    format!("req-{i}"),
                    std::sync::Arc::clone(&machine),
                    mode.clone(),
                );
            }
            let rates = service_rates(cli);
            let run = service.run_load(&rates);
            if cli.json {
                let tool = if cli.command == Command::Serve {
                    "raul-serve"
                } else {
                    "raul-load"
                };
                let mut config = run_config(cli);
                if let Json::Obj(fields) = &mut config {
                    fields.push(("workers".into(), (cli.workers as i64).into()));
                    fields.push(("tenants".into(), (lanes as i64).into()));
                    fields.push(("requests".into(), (requests as i64).into()));
                    fields.push(("seed".into(), cli.seed.into()));
                    fields.push((
                        "rates_per_mcycle".into(),
                        Json::Arr(rates.iter().map(|&r| (r as i64).into()).collect()),
                    ));
                }
                println!(
                    "{}",
                    uhm::report::service_report(tool, config, &run).render()
                );
            } else if cli.command == Command::Serve {
                print_serve_step(&run);
            } else {
                print_load_trajectory(&run);
            }
            // Mirrors the pool policy: rejected and shed requests are
            // the admission and backpressure planes working as
            // configured; only execution failures fail the command.
            let failed = run.outcome_count("trapped") + run.outcome_count("panicked");
            if failed > 0 {
                return Err(CliError::Run(format!(
                    "{failed} of {} requests failed",
                    run.total_requests()
                )));
            }
            Ok(())
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("raul: {e}");
            eprintln!(
                "usage: raul <check|run|disasm|encode|analyze|profile|faults|pool|chaos|serve|load> <file> [options]"
            );
            return ExitCode::from(2);
        }
    };
    let source = match std::fs::read_to_string(&cli.path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("raul: cannot read {}: {e}", cli.path);
            return ExitCode::from(2);
        }
    };
    match execute(&cli, &source) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Config(e)) => {
            eprintln!("raul: invalid configuration: {e}");
            ExitCode::from(2)
        }
        Err(CliError::Run(e)) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_run_with_options() {
        let cli = parse_args(&args(
            "run prog.raul --mode two-level --scheme pair --dtb-entries 32 --fuse --stats",
        ))
        .unwrap();
        assert_eq!(cli.command, Command::Run);
        assert_eq!(cli.mode, ModeArg::TwoLevel);
        assert_eq!(cli.scheme, SchemeKind::PairHuffman);
        assert_eq!(cli.dtb_entries, 32);
        assert!(cli.fuse && cli.stats && !cli.fold);
    }

    #[test]
    fn defaults_are_sensible() {
        let cli = parse_args(&args("run p.raul")).unwrap();
        assert_eq!(cli.mode, ModeArg::Dtb);
        assert_eq!(cli.scheme, SchemeKind::Huffman);
        assert_eq!(cli.decoder, DecodeMode::Table);
        assert_eq!(cli.dtb_entries, 64);
    }

    #[test]
    fn decoder_flag_selects_the_host_plane() {
        let cli = parse_args(&args("run p.raul --decoder tree")).unwrap();
        assert_eq!(cli.decoder, DecodeMode::Tree);
        assert!(parse_args(&args("run p.raul --decoder lut")).is_err());
        // Both planes execute a program to the same output.
        let src = "proc main() begin int i; for i := 0 to 5 do write i * i; end";
        for d in ["tree", "table"] {
            let cli = parse_args(&args(&format!("run p.raul --decoder {d}"))).unwrap();
            execute(&cli, src).unwrap();
        }
    }

    #[test]
    fn parses_profiling_flags() {
        let cli = parse_args(&args("run p.raul --trace-out t.json --flame-out f.txt")).unwrap();
        assert_eq!(cli.trace_out.as_deref(), Some("t.json"));
        assert_eq!(cli.flame_out.as_deref(), Some("f.txt"));
        assert!(parse_args(&args("run p.raul --trace-out")).is_err());
        assert!(parse_args(&args("profile p.raul --flame-out")).is_err());
    }

    #[test]
    fn profile_command_writes_trace_and_flame_artifacts() {
        let dir = std::env::temp_dir().join(format!("raul-prof-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("trace.json");
        let flame = dir.join("flame.txt");
        let cmd = format!(
            "profile p.raul --trace-out {} --flame-out {}",
            trace.display(),
            flame.display()
        );
        let cli = parse_args(&args(&cmd)).unwrap();
        let src = "proc main() begin int i; for i := 0 to 30 do write i * 2; end";
        execute(&cli, src).unwrap();
        let doc = Json::parse(&std::fs::read_to_string(&trace).unwrap()).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert!(!events.is_empty(), "trace document has events");
        let collapsed = std::fs::read_to_string(&flame).unwrap();
        assert!(
            collapsed.lines().any(|l| l.contains("main")),
            "collapsed stacks mention main:\n{collapsed}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn profile_command_attaches_pool_aggregation() {
        let cli = parse_args(&args("profile p.raul --tenants 3 --workers 2")).unwrap();
        let src = "proc main() begin int i := 0; while i < 40 do i := i + 1; write i; end";
        execute(&cli, src).unwrap();
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&args("bogus p.raul")).is_err());
        assert!(parse_args(&args("run")).is_err());
        assert!(parse_args(&args("run p.raul --scheme nope")).is_err());
        assert!(parse_args(&args("run p.raul --dtb-entries x")).is_err());
        assert!(parse_args(&args("run p.raul --whatever")).is_err());
        assert!(parse_args(&[]).is_err());
    }

    #[test]
    fn execute_runs_a_program() {
        let cli = parse_args(&args("run inline.raul --mode dtb")).unwrap();
        // `execute` reads no files; feed source directly.
        execute(&cli, "proc main() begin write 41 + 1; end").unwrap();
    }

    #[test]
    fn execute_renders_compile_errors() {
        let cli = parse_args(&args("check bad.raul")).unwrap();
        let err = execute(&cli, "proc main() begin write nope; end").unwrap_err();
        assert!(err.message().contains("unknown variable"));
        assert!(err.message().contains('^'));
    }

    #[test]
    fn disasm_and_encode_work() {
        let src = "proc main() begin int i; for i := 0 to 3 do write i; end";
        for cmd in ["disasm d.raul --fuse --fold", "encode e.raul"] {
            let cli = parse_args(&args(cmd)).unwrap();
            execute(&cli, src).unwrap();
        }
    }

    #[test]
    fn analyze_command_verifies_clean_source() {
        let src = "proc main() begin int i; for i := 0 to 9 do write i * i; end";
        for cmd in [
            "analyze a.raul",
            "analyze a.raul --scheme valuehuff --fuse",
            "analyze a.raul --json",
        ] {
            let cli = parse_args(&args(cmd)).unwrap();
            execute(&cli, src).unwrap();
        }
    }

    #[test]
    fn analyze_json_entry_has_the_canonical_shape() {
        let src = "proc main() begin write 1; end";
        let program = dir::compiler::compile(&hlr::compile(src).unwrap());
        let image = SchemeKind::Packed.encode(&program);
        let report = analyze::analyze(&program, &image);
        let entry = analysis_json("t.raul", &report);
        assert_eq!(entry.get("scheme").and_then(Json::as_str), Some("packed"));
        assert_eq!(entry.get("clean"), Some(&Json::Bool(true)));
        assert_eq!(entry.get("errors").and_then(Json::as_i64), Some(0));
        assert!(matches!(entry.get("diagnostics"), Some(Json::Arr(_))));
        // Schema-v7 additions: fact coverage and the hot-region table.
        let facts = entry.get("facts").expect("facts section present");
        assert!(facts.get("depth_exact").and_then(Json::as_i64).unwrap() > 0);
        assert!(matches!(entry.get("hot_regions"), Some(Json::Arr(_))));
    }

    #[test]
    fn analyze_facts_and_regions_flags_parse_and_execute() {
        let cli = parse_args(&args("analyze a.raul --facts --regions")).unwrap();
        assert!(cli.facts && cli.regions && !cli.deny_warnings);
        let src = "proc main() begin int i; int a[4]; \
                   for i := 0 to 3 do a[i] := i; write a[2]; end";
        execute(&cli, src).unwrap();
    }

    #[test]
    fn deny_warnings_fails_a_clean_but_warned_image() {
        // An unreachable procedure verifies clean (AN301 is a warning),
        // so plain analyze exits 0 but --deny-warnings exits 1.
        let src = "proc unused() begin write 1; end \
                   proc main() begin write 42; end";
        let plain = parse_args(&args("analyze w.raul")).unwrap();
        execute(&plain, src).unwrap();
        let deny = parse_args(&args("analyze w.raul --deny-warnings")).unwrap();
        let err = execute(&deny, src).unwrap_err();
        assert!(err.message().contains("--deny-warnings"), "{err:?}");
        // A warning-free image still passes under --deny-warnings.
        execute(&deny, "proc main() begin write 7; end").unwrap();
    }

    #[test]
    fn run_traps_are_reported() {
        let cli = parse_args(&args("run t.raul")).unwrap();
        let err = execute(&cli, "proc main() begin write 1 / 0; end").unwrap_err();
        assert_eq!(
            err,
            CliError::Run("trap: division by zero".into()),
            "traps are runtime errors, not configuration errors"
        );
    }

    #[test]
    fn invalid_geometry_is_a_config_error() {
        let cli = parse_args(&args("run g.raul --dtb-unit-words 2")).unwrap();
        let err = execute(&cli, "proc main() begin write 1; end").unwrap_err();
        match err {
            CliError::Config(m) => assert!(m.contains("unit"), "{m}"),
            CliError::Run(m) => panic!("expected a config error, got Run({m})"),
        }
    }

    #[test]
    fn parses_fault_flags() {
        let cli = parse_args(&args(
            "faults f.raul --seed 0xBEEF --rate 0.01 --drop-rate 0.5 --degrade-after 2",
        ))
        .unwrap();
        assert_eq!(cli.command, Command::Faults);
        assert_eq!(cli.seed, 0xBEEF);
        let fc = fault_config(&cli);
        assert_eq!(fc.dtb_word_rate, 0.01);
        assert_eq!(fc.dtb_tag_rate, 0.01);
        assert_eq!(fc.drop_fetch_rate, 0.5);
        assert_eq!(fc.dir_bit_rate, 0.0);
        assert_eq!(cli.degrade_after, Some(2));
        assert!(parse_args(&args("faults f.raul --rate 1.5")).is_err());
    }

    #[test]
    fn faults_command_runs_end_to_end() {
        let cli = parse_args(&args("faults f.raul --rate 0.01")).unwrap();
        let src = "proc main() begin int i := 0; while i < 200 do i := i + 1; write i; end";
        execute(&cli, src).unwrap();
    }

    #[test]
    fn parses_pool_flags() {
        let cli = parse_args(&args("pool p.raul --workers 3 --tenants 9 --mode interp")).unwrap();
        assert_eq!(cli.command, Command::Pool);
        assert_eq!(cli.workers, 3);
        assert_eq!(cli.tenants, Some(9));
        assert!(!faults_requested(&cli));
        // Defaults: 4 workers, tenants derived (2x workers) at execute time.
        let d = parse_args(&args("pool p.raul")).unwrap();
        assert_eq!(d.workers, 4);
        assert_eq!(d.tenants, None);
        assert!(parse_args(&args("pool p.raul --workers 0")).is_err());
        assert!(parse_args(&args("pool p.raul --tenants 0")).is_err());
    }

    #[test]
    fn pool_command_runs_end_to_end() {
        let src = "proc main() begin int i := 0; while i < 50 do i := i + 1; write i; end";
        for cmd in [
            "pool p.raul --workers 2 --tenants 5",
            "pool p.raul --workers 2 --tenants 4 --rate 0.01",
        ] {
            let cli = parse_args(&args(cmd)).unwrap();
            execute(&cli, src).unwrap();
        }
    }

    #[test]
    fn parses_supervision_flags() {
        let cli = parse_args(&args(
            "pool p.raul --fuel 1000000 --deadline 50 --retry 4 --max-queue 8",
        ))
        .unwrap();
        assert_eq!(cli.fuel, Some(1_000_000));
        assert_eq!(cli.deadline_ms, Some(50));
        assert_eq!(cli.retry, Some(4));
        assert_eq!(cli.max_queue, Some(8));
        assert!(supervision_requested(&cli));
        let sup = supervisor_config(&cli);
        assert_eq!(sup.budget.fuel, Some(1_000_000));
        assert_eq!(sup.budget.deadline_ns, Some(50_000_000));
        assert_eq!(sup.backoff.max_attempts, 4);
        assert_eq!(sup.max_queue, Some(8));
        // A plain pool run stays on the unsupervised fast path.
        assert!(!supervision_requested(
            &parse_args(&args("pool p.raul")).unwrap()
        ));
        assert!(parse_args(&args("pool p.raul --fuel 0")).is_err());
        assert!(parse_args(&args("pool p.raul --deadline 0")).is_err());
        assert!(parse_args(&args("pool p.raul --retry 0")).is_err());
    }

    #[test]
    fn parses_chaos_command_with_defaults() {
        let cli = parse_args(&args("chaos c.raul --seed 7 --crash-rate 0.5")).unwrap();
        assert_eq!(cli.command, Command::Chaos);
        // Chaos is always supervised, and defaults a fuel budget so
        // injected hangs are preempted.
        assert!(supervision_requested(&cli));
        let sup = supervisor_config(&cli);
        assert_eq!(sup.budget.fuel, Some(5_000_000));
        let chaos = chaos_config(&cli);
        assert_eq!(chaos.seed, 7);
        assert_eq!(chaos.worker_crash_rate, 0.5);
        assert_eq!(chaos.hang_rate, 0.2);
        assert_eq!(chaos.artifact_corruption_rate, 0.2);
        assert!(parse_args(&args("chaos c.raul --hang-rate 1.5")).is_err());
    }

    #[test]
    fn supervised_pool_times_out_runaway_tenants_without_failing() {
        // An infinite loop under a fuel budget is a supervised outcome
        // (timed_out), not a CLI failure: the command exits 0.
        let cli = parse_args(&args("pool p.raul --workers 2 --tenants 3 --fuel 200000")).unwrap();
        let src = "proc main() begin int i := 0; while i < 1 do begin i := i * 1; end end";
        execute(&cli, src).unwrap();
    }

    #[test]
    fn chaos_command_runs_end_to_end() {
        let cli = parse_args(&args(
            "chaos c.raul --workers 2 --tenants 6 --seed 0xC0A5 \
             --crash-rate 0.4 --hang-rate 0.4 --corrupt-rate 0.4",
        ))
        .unwrap();
        let src = "proc main() begin int i := 0; while i < 60 do i := i + 1; write i; end";
        execute(&cli, src).unwrap();
    }

    #[test]
    fn pool_rejects_invalid_geometry_as_config_error() {
        let cli = parse_args(&args("pool g.raul --dtb-unit-words 2")).unwrap();
        let err = execute(&cli, "proc main() begin write 1; end").unwrap_err();
        assert!(matches!(err, CliError::Config(_)), "{err:?}");
    }

    #[test]
    fn parses_service_flags() {
        let cli = parse_args(&args(
            "serve s.raul --workers 2 --tenants 3 --requests 12 --arrival-rate 40 \
             --watermark 6 --quota 2 --max-pressure 4096 --right-size --seed 11",
        ))
        .unwrap();
        assert_eq!(cli.command, Command::Serve);
        assert_eq!(cli.requests, Some(12));
        assert_eq!(cli.arrival_rate, 40);
        let sc = service_config(&cli);
        assert_eq!(sc.workers, 2);
        assert_eq!(sc.queue_watermark, Some(6));
        assert_eq!(sc.tenant_quota, Some(2));
        assert_eq!(sc.admission.max_pressure_words, Some(4096));
        assert!(sc.admission.right_size);
        assert_eq!(sc.seed, 11);
        assert_eq!(service_rates(&cli), vec![40]);
        assert!(parse_args(&args("serve s.raul --requests 0")).is_err());
        assert!(parse_args(&args("serve s.raul --arrival-rate 0")).is_err());
    }

    #[test]
    fn parses_load_rates() {
        let cli = parse_args(&args("load l.raul --rates 2,8,32")).unwrap();
        assert_eq!(cli.command, Command::Load);
        assert_eq!(service_rates(&cli), vec![2, 8, 32]);
        // The default sweep spans idle to overload.
        let d = parse_args(&args("load l.raul")).unwrap();
        assert_eq!(service_rates(&d), vec![1, 2, 4, 8, 16, 32, 64]);
        assert!(parse_args(&args("load l.raul --rates 2,x")).is_err());
        assert!(parse_args(&args("load l.raul --rates 2,0")).is_err());
    }

    #[test]
    fn serve_command_runs_end_to_end() {
        let src = "proc main() begin int i := 0; while i < 50 do i := i + 1; write i; end";
        for cmd in [
            "serve s.raul --workers 2 --tenants 3 --requests 9",
            "serve s.raul --workers 2 --requests 8 --arrival-rate 1000 --watermark 3",
        ] {
            let cli = parse_args(&args(cmd)).unwrap();
            execute(&cli, src).unwrap();
        }
    }

    #[test]
    fn load_command_runs_end_to_end() {
        let cli = parse_args(&args(
            "load l.raul --workers 2 --tenants 2 --requests 10 --rates 1,100,10000 --watermark 4",
        ))
        .unwrap();
        let src = "proc main() begin int i := 0; while i < 50 do i := i + 1; write i; end";
        execute(&cli, src).unwrap();
    }

    #[test]
    fn serve_rejected_requests_are_policy_outcomes_not_failures() {
        // A request rejected by static admission is reported and exits
        // 0, exactly like a shed pool tenant.
        let cli = parse_args(&args("serve s.raul --requests 4 --max-pressure 1")).unwrap();
        let src = "proc main() begin int i := 0; while i < 50 do i := i + 1; write i; end";
        execute(&cli, src).unwrap();
    }

    #[test]
    fn serve_traps_fail_the_command() {
        let cli = parse_args(&args("serve s.raul --requests 2")).unwrap();
        let err = execute(&cli, "proc main() begin write 1 / 0; end").unwrap_err();
        match err {
            CliError::Run(m) => assert!(m.contains("failed"), "{m}"),
            CliError::Config(m) => panic!("expected a runtime failure, got Config({m})"),
        }
    }

    #[test]
    fn serve_rejects_invalid_geometry_as_config_error() {
        let cli = parse_args(&args("serve g.raul --dtb-unit-words 2")).unwrap();
        let err = execute(&cli, "proc main() begin write 1; end").unwrap_err();
        assert!(matches!(err, CliError::Config(_)), "{err:?}");
    }
}
