//! Cross-platform determinism pin for the program generator: a known
//! `(seed, Config)` pair must produce *exactly* the committed program,
//! byte for byte, on every platform and toolchain. The conformance
//! sweep's coverage baseline and every seeded differential test depend
//! on this — a silent generator drift would quietly re-seed them all.
//!
//! If the generator changes **intentionally**, regenerate the goldens
//! by printing `hlr::pretty::print(&hlr::generate::program(seed, &cfg))`
//! for each pair below into `tests/golden/`, and expect downstream
//! coverage baselines (crates/bench/baselines/) to need re-measuring.

use hlr::generate::Config;

fn check(seed: u64, cfg: &Config, golden: &str) {
    let ast = hlr::generate::program(seed, cfg);
    let text = hlr::pretty::print(&ast);
    assert_eq!(
        text, golden,
        "generator output for seed {seed:#x} drifted from the committed golden"
    );
    // Determinism within a process too: a second call must be identical.
    let again = hlr::pretty::print(&hlr::generate::program(seed, cfg));
    assert_eq!(
        text, again,
        "generator is not deterministic for seed {seed:#x}"
    );
}

#[test]
fn seed42_default_config_is_pinned() {
    check(
        42,
        &Config::default(),
        include_str!("golden/gen_seed42_default.raul"),
    );
}

#[test]
fn seed7_scalar_only_config_is_pinned() {
    check(
        7,
        &Config {
            arrays: false,
            calls: false,
            ..Config::default()
        },
        include_str!("golden/gen_seed7_scalar.raul"),
    );
}

#[test]
fn sweep_seed_trapping_config_is_pinned() {
    check(
        0xC0_4F0C,
        &Config {
            trapping: true,
            ..Config::default()
        },
        include_str!("golden/gen_seedc04f0c_trapping.raul"),
    );
}

#[test]
fn pinned_programs_are_valid_and_trap_free() {
    for (seed, cfg) in [
        (42, Config::default()),
        (
            7,
            Config {
                arrays: false,
                calls: false,
                ..Config::default()
            },
        ),
    ] {
        let ast = hlr::generate::program(seed, &cfg);
        let hir = hlr::sema::analyze(&ast).expect("pinned program passes sema");
        hlr::eval::run(&hir).expect("pinned non-trapping program runs clean");
    }
}
