//! **E7 — the locality claim (§4):** DTB hit ratio and interpretation time
//! versus DTB capacity, plus Denning working-set measurements of the DIR
//! instruction traces that explain them.
//!
//! Run with `cargo run -p uhm-bench --bin dtb_sweep --release`.
//! With `--json`, emits a versioned RunReport instead of the text tables.

use dir::encode::SchemeKind;
use memsim::workset;
use telemetry::Json;
use uhm::sweep::capacity_sweep;
use uhm::{Machine, Mode};
use uhm_bench::{bench_report, json_flag, workloads};

fn main() {
    let capacities = [4usize, 8, 16, 32, 64, 128, 256];
    if json_flag() {
        emit_json(&capacities);
        return;
    }
    println!("DTB capacity sweep (PairHuffman static DIR, degree-4 sets)\n");
    println!(
        "{:>14} {:>7} | {}",
        "workload",
        "",
        capacities
            .iter()
            .map(|c| format!("{c:>7}"))
            .collect::<Vec<_>>()
            .join(" ")
    );
    println!("{}", "-".repeat(26 + 8 * capacities.len()));
    for w in workloads() {
        let points = capacity_sweep(&w.base, SchemeKind::PairHuffman, &capacities);
        let hit_rows: Vec<String> = points
            .iter()
            .map(|p| format!("{:>7.3}", p.stats.hit_ratio()))
            .collect();
        let t_rows: Vec<String> = points
            .iter()
            .map(|p| format!("{:>7.2}", p.time_per_instruction))
            .collect();
        println!("{:>14} {:>7} | {}", w.name, "h_D", hit_rows.join(" "));
        println!("{:>14} {:>7} | {}", "", "T2", t_rows.join(" "));
    }

    println!("\nWorking-set evidence (Denning window over the DIR trace)\n");
    println!(
        "{:>14} {:>10} {:>8} {:>8} {:>8} {:>8}",
        "workload", "refs", "unique", "ws(100)", "ws(1000)", "lru64"
    );
    for w in workloads() {
        let rep = locality(&w.base);
        println!(
            "{:>14} {:>10} {:>8} {:>8.1} {:>8.1} {:>8.3}",
            w.name, rep.references, rep.unique, rep.ws100, rep.ws1000, rep.lru64
        );
    }
    println!("\nThe small working sets relative to static program size are exactly the");
    println!("locality the paper's §4 invokes: a modest DTB captures almost all");
    println!("executed instructions, except on the adversarial straight-line workload.");
}

fn locality(program: &dir::Program) -> workset::LocalityReport {
    let mut machine = Machine::new(program, SchemeKind::Packed);
    machine.set_trace(true);
    let r = machine
        .run(&Mode::Interpreter)
        .expect("samples are trap-free");
    let trace: Vec<u64> = r
        .metrics
        .trace
        .unwrap()
        .into_iter()
        .map(u64::from)
        .collect();
    workset::LocalityReport::measure(&trace)
}

fn emit_json(capacities: &[usize]) {
    let mut rows = Vec::new();
    for w in workloads() {
        let points = capacity_sweep(&w.base, SchemeKind::PairHuffman, capacities);
        let sweep: Vec<Json> = points
            .iter()
            .map(|p| {
                Json::obj(vec![
                    ("entries", (p.entries as u64).into()),
                    ("hit_ratio", p.stats.hit_ratio().into()),
                    ("time_per_instruction", p.time_per_instruction.into()),
                    ("dtb", uhm::report::dtb_stats_json(&p.stats)),
                ])
            })
            .collect();
        let rep = locality(&w.base);
        rows.push(Json::obj(vec![
            ("workload", w.name.into()),
            ("sweep", Json::Arr(sweep)),
            (
                "locality",
                Json::obj(vec![
                    ("references", (rep.references as u64).into()),
                    ("unique", (rep.unique as u64).into()),
                    ("ws100", rep.ws100.into()),
                    ("ws1000", rep.ws1000.into()),
                    ("lru64", rep.lru64.into()),
                ]),
            ),
        ]));
    }
    let config = Json::obj(vec![
        ("scheme", "pair".into()),
        (
            "capacities",
            Json::Arr(capacities.iter().map(|&c| (c as u64).into()).collect()),
        ),
    ]);
    println!("{}", bench_report("dtb_sweep", config, rows).render());
}
