//! Multi-tenant execution: a sharded pool of host machines.
//!
//! Rau's UHM is a *host* for many guest programs; this module models the
//! hosting side. A [`MachinePool`] runs N independent tenant programs
//! across a configurable set of worker threads. Scheduling is
//! work-stealing: tenants are dealt round-robin onto per-worker deques,
//! each worker pops its own deque from the front and, when empty, steals
//! from the *back* of a sibling's deque (classic Arora–Blumofe–Plotkin
//! shape, hand-rolled on `std` only).
//!
//! Three invariants the pool maintains, in order of importance:
//!
//! 1. **Bit-identical results.** Every tenant produces exactly the
//!    output, traps and *modeled* metrics it would produce running alone
//!    on a sequential machine ([`MachinePool::run_sequential`] is the
//!    reference). Host-side sharing — one [`Machine`] behind an [`Arc`],
//!    one frozen translation snapshot
//!    ([`Machine::set_shared_translations`]) — never leaks into modeled
//!    behavior (DESIGN.md §6).
//! 2. **Deterministic faults.** A pool-level base [`FaultConfig`] is
//!    re-seeded per tenant as `base_seed ^ tenant_index`. The tenant
//!    index — *not* the worker id — keys the stream, because stealing
//!    makes worker assignment schedule-dependent; tenant-keyed seeds keep
//!    fault campaigns replayable under any interleaving.
//! 3. **Isolation.** A panicking tenant (e.g. one constructed over an
//!    invalid DTB geometry) is caught with `catch_unwind`, reported as
//!    [`TenantOutcome::Panicked`], and the remaining tenants complete.
//!
//! Latency percentiles and aggregate throughput of a pool run are
//! summarized by [`PoolRun`]; `crate::report::pool_report` renders the
//! schema-v2 [`telemetry::PoolReport`] consumed by `raul pool --json`
//! and the `pool_throughput` bench (E16).
//!
//! # Supervision
//!
//! Attaching a [`Supervisor`] (and optionally a [`ChaosConfig`]) via
//! [`MachinePool::set_supervisor`] / [`MachinePool::set_chaos`] switches
//! tenants onto the *supervised* path, which wraps every run in the
//! resilience layer of [`crate::resilience`]:
//!
//! - **Shedding** — tenants queued past the [`Supervisor::max_queue`]
//!   watermark are rejected up front ([`TenantOutcome::Shed`]).
//! - **Admission** — the static DTB pressure bound
//!   ([`analyze::bound`]) rejects oversized programs or right-sizes an
//!   undersized DTB before the first attempt.
//! - **Budget** — every attempt runs under the supervisor's
//!   [`Budget`](crate::config::Budget); fuel or deadline exhaustion is
//!   reported as [`TenantOutcome::TimedOut`].
//! - **Retry** — transient failures (fault-plane traps, panics,
//!   timeouts) are re-run up to the [`BackoffPolicy`](crate::resilience::BackoffPolicy) attempt cap with
//!   seeded, jittered exponential backoff. Backoff is *charged* to the
//!   tenant's latency, not slept, so supervised campaigns stay fast.
//!   Retries re-seed pool-level fault streams per attempt and bypass
//!   shared translation artifacts (which may have caused the failure).
//! - **Circuit breaking** — consecutive failures of one image first
//!   degrade it to pure interpretation, then quarantine it
//!   ([`TenantOutcome::Quarantined`]). The breaker bank is shared
//!   mutable state keyed by image, so it is the one supervision feature
//!   whose transitions are schedule-*sensitive* under work stealing;
//!   campaigns that assert breaker walks pin `workers = 1`.
//! - **Chaos** — worker crashes (the panic escapes the tenant's
//!   isolation boundary and kills the worker thread), hung tenants
//!   (an infinite-loop stand-in runs first; only a budget preempts it)
//!   and corrupted shared artifacts (every decode template truncated)
//!   are rolled statelessly per tenant index, so the injected set is
//!   schedule-invariant. Tenants lost to a worker crash are recovered
//!   by a post-join sweep: *no tenant is silently lost*.
//!
//! Per-tenant final outcomes on the supervised path are deterministic
//! functions of `(tenant, seeds, policies)` — everything except breaker
//! transitions and the observational fields (latency, steals, queue
//! depth) replays exactly under any worker count.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use dir::exec::Trap;
use psder::FrozenTransCache;
use std::collections::VecDeque;
use telemetry::{NullSink, Percentiles, TraceSink};

use crate::fault::FaultConfig;
use crate::machine::{Machine, Mode, RunOptions, SharedArtifacts};
use crate::metrics::Report;
use crate::resilience::{Breaker, BreakerState, ChaosConfig, Supervisor};

/// One guest of the pool: a named program bound to a machine and mode.
///
/// Tenants may share a [`Machine`] (the `Arc` is cloned, not the
/// machine), which is how one encoded image plus one frozen translation
/// snapshot serves many tenants.
#[derive(Debug, Clone)]
pub struct PoolTenant {
    /// Display name, e.g. the workload name.
    pub name: String,
    /// The shared, immutable host machine this tenant runs on.
    pub machine: Arc<Machine>,
    /// The fetch-path configuration (T1/T2/T3/two-level) for this tenant.
    pub mode: Mode,
}

/// How one tenant's run ended.
#[derive(Debug, Clone, PartialEq)]
pub enum TenantOutcome {
    /// The program ran to completion; output and modeled metrics inside.
    Completed(Box<Report>),
    /// The program trapped (guest-level failure, e.g. stack overflow).
    Trapped(Trap),
    /// The host-side run panicked (host-level failure); the payload is
    /// the panic message. Other tenants are unaffected.
    Panicked(String),
    /// The supervisor preempted the run: its modeled-cycle fuel or
    /// wall-clock deadline ran out on the final attempt. The payload is
    /// the budget trap ([`Trap::FuelExhausted`] or
    /// [`Trap::DeadlineExceeded`]).
    TimedOut(Trap),
    /// The supervisor rejected the tenant before it ran — queue
    /// watermark exceeded or admission control refused the program. The
    /// payload says which.
    Shed(String),
    /// The tenant's image tripped its circuit breaker before this
    /// tenant could run; the payload records the consecutive-failure
    /// count that tripped it.
    Quarantined(String),
}

impl TenantOutcome {
    /// `"completed"`, `"trapped"`, `"panicked"`, `"timed_out"`,
    /// `"shed"` or `"quarantined"` — the status string used by the JSON
    /// report.
    pub fn status(&self) -> &'static str {
        match self {
            TenantOutcome::Completed(_) => "completed",
            TenantOutcome::Trapped(_) => "trapped",
            TenantOutcome::Panicked(_) => "panicked",
            TenantOutcome::TimedOut(_) => "timed_out",
            TenantOutcome::Shed(_) => "shed",
            TenantOutcome::Quarantined(_) => "quarantined",
        }
    }

    /// The completed report, if any.
    pub fn report(&self) -> Option<&Report> {
        match self {
            TenantOutcome::Completed(r) => Some(r.as_ref()),
            _ => None,
        }
    }
}

/// The result of one tenant within a pool run.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantResult {
    /// Index of the tenant in submission order.
    pub tenant: usize,
    /// The tenant's display name.
    pub name: String,
    /// The worker thread that executed this tenant. Informational only:
    /// work stealing makes this schedule-dependent, so nothing
    /// deterministic may key off it.
    pub worker: usize,
    /// Host wall-clock time of this tenant's run, in nanoseconds.
    /// Supervised runs include all attempts plus the *charged* (never
    /// slept) backoff delays.
    pub latency_ns: u64,
    /// Execution attempts made (1 on the unsupervised path; 0 when the
    /// tenant was shed or quarantined before running).
    pub attempts: u32,
    /// Total backoff delay charged to this tenant across retries, in
    /// nanoseconds (0 unless the supervisor retried it).
    pub backoff_ns: u64,
    /// How the run ended.
    pub outcome: TenantOutcome,
}

/// The aggregated result of one [`MachinePool::run`].
#[derive(Debug, Clone, PartialEq)]
pub struct PoolRun {
    /// Per-tenant results, in tenant-index (submission) order.
    pub results: Vec<TenantResult>,
    /// Host wall-clock of the whole pool run, in nanoseconds.
    pub wall_ns: u64,
    /// Number of worker threads that served the run.
    pub workers: usize,
    /// Number of tenants obtained by stealing from a sibling's deque.
    pub steals: u64,
    /// Jobs still queued after each dequeue, in dequeue order — the
    /// pool's queue-depth timeline. Schedule-dependent (like `steals`),
    /// so purely observational: nothing deterministic may key off it.
    pub queue_depth: Vec<u64>,
    /// Supervised retries across all tenants: the sum of
    /// `attempts - 1` over tenants that ran at least once.
    pub retries: u64,
    /// Chaos-injected worker crashes whose tenants were recovered (one
    /// per tenant whose crash injection fired).
    pub worker_crashes: u64,
}

impl PoolRun {
    /// Per-tenant latencies in nanoseconds, tenant order.
    pub fn latencies_ns(&self) -> Vec<f64> {
        self.results.iter().map(|r| r.latency_ns as f64).collect()
    }

    /// p50/p95/p99/p99.9 of the per-tenant latencies.
    pub fn latency_percentiles(&self) -> Percentiles {
        Percentiles::of(&self.latencies_ns())
    }

    /// Host nanoseconds each worker spent executing tenants (length =
    /// `workers`), summed from per-tenant latencies.
    pub fn worker_busy_ns(&self) -> Vec<u64> {
        let mut busy = vec![0u64; self.workers];
        for r in &self.results {
            if let Some(b) = busy.get_mut(r.worker) {
                *b += r.latency_ns;
            }
        }
        busy
    }

    /// Per-worker utilization: busy time over pool wall-clock, in
    /// `[0, 1]` (clamped; empty wall yields zeros).
    pub fn worker_utilization(&self) -> Vec<f64> {
        self.worker_busy_ns()
            .iter()
            .map(|&b| {
                if self.wall_ns == 0 {
                    0.0
                } else {
                    (b as f64 / self.wall_ns as f64).min(1.0)
                }
            })
            .collect()
    }

    /// Number of tenants that completed without trap or panic.
    pub fn completed(&self) -> usize {
        self.outcome_count("completed")
    }

    /// Number of tenants whose outcome carries the given
    /// [`TenantOutcome::status`] string (`"completed"`, `"trapped"`,
    /// `"panicked"`, `"timed_out"`, `"shed"`, `"quarantined"`). The full
    /// accounting invariant: the six counts always sum to
    /// `results.len()`.
    pub fn outcome_count(&self, status: &str) -> usize {
        self.results
            .iter()
            .filter(|r| r.outcome.status() == status)
            .count()
    }

    /// Total *modeled* DIR instructions across completed tenants.
    pub fn total_instructions(&self) -> u64 {
        self.completed_reports()
            .map(|r| r.metrics.instructions)
            .sum()
    }

    /// Total *modeled* cycles across completed tenants.
    pub fn total_cycles(&self) -> u64 {
        self.completed_reports()
            .map(|r| r.metrics.cycles.total())
            .sum()
    }

    /// Aggregate throughput in millions of modeled DIR instructions per
    /// host wall-clock second — the E16 figure of merit. Modeled work
    /// over host time: the numerator is schedule-invariant, only the
    /// denominator reflects the pool's parallelism.
    pub fn minstr_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.total_instructions() as f64 * 1e3 / self.wall_ns as f64
    }

    fn completed_reports(&self) -> impl Iterator<Item = &Report> {
        self.results.iter().filter_map(|r| r.outcome.report())
    }
}

/// A pool of worker threads executing independent tenant programs.
///
/// ```
/// use std::sync::Arc;
/// use uhm::pool::MachinePool;
/// use uhm::{Machine, Mode};
///
/// let hir = hlr::compile("proc main() begin write 6 * 7; end")?;
/// let prog = dir::compiler::compile(&hir);
/// let mut machine = Machine::new(&prog, dir::encode::SchemeKind::Packed);
/// machine.freeze_translations(); // share decode templates across tenants
/// let machine = Arc::new(machine);
///
/// let mut pool = MachinePool::new(2);
/// for i in 0..4 {
///     pool.push(format!("t{i}"), Arc::clone(&machine), Mode::Interpreter);
/// }
/// let run = pool.run();
/// assert_eq!(run.completed(), 4);
/// for r in &run.results {
///     assert_eq!(r.outcome.report().unwrap().output, vec![42]);
/// }
/// # Ok::<(), hlr::Error>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct MachinePool {
    tenants: Vec<PoolTenant>,
    workers: usize,
    fault_base: Option<FaultConfig>,
    supervisor: Option<Supervisor>,
    chaos: Option<ChaosConfig>,
    schedule_seed: Option<u64>,
}

impl MachinePool {
    /// Creates an empty pool with `workers` worker threads (clamped to at
    /// least 1).
    pub fn new(workers: usize) -> MachinePool {
        MachinePool {
            tenants: Vec::new(),
            workers: workers.max(1),
            fault_base: None,
            supervisor: None,
            chaos: None,
            schedule_seed: None,
        }
    }

    /// Adds a tenant; returns `self` for chaining.
    pub fn push(
        &mut self,
        name: impl Into<String>,
        machine: Arc<Machine>,
        mode: Mode,
    ) -> &mut Self {
        self.tenants.push(PoolTenant {
            name: name.into(),
            machine,
            mode,
        });
        self
    }

    /// Sets a pool-level base fault configuration. Tenant `i` runs with
    /// `base` re-seeded as `base.seed ^ i`, overriding whatever fault
    /// configuration its machine carries — so shared machines still get
    /// distinct, replayable fault streams. `None` (the default) leaves
    /// each machine's own configuration in force.
    pub fn set_faults(&mut self, base: Option<FaultConfig>) -> &mut Self {
        self.fault_base = base;
        self
    }

    /// Attaches a [`Supervisor`]: subsequent runs go through the
    /// supervised path (shedding, admission, budget, retry, breaker; see
    /// the module docs). `None` (the default) restores plain execution.
    pub fn set_supervisor(&mut self, supervisor: Option<Supervisor>) -> &mut Self {
        self.supervisor = supervisor;
        self
    }

    /// Attaches pool-level chaos injection. Chaos alone also engages the
    /// supervised path (with default-supervisor semantics: unlimited
    /// budget, default retry); pair it with a [`Supervisor`] carrying a
    /// budget so hung tenants are preempted rather than running to the
    /// step limit.
    pub fn set_chaos(&mut self, chaos: Option<ChaosConfig>) -> &mut Self {
        self.chaos = chaos;
        self
    }

    /// Pins the scheduling order. `Some(seed)` deals tenants in a seeded
    /// permutation and disables work stealing, so the jobs each worker
    /// executes — and therefore every schedule-dependent observable
    /// (steals, per-worker assignment) — replay exactly. `None` (the
    /// default) keeps the adaptive work-stealing schedule. The service
    /// plane ([`crate::service::Service`]) always pins this seed so a
    /// served request mix replays bit-identically.
    pub fn set_schedule_seed(&mut self, seed: Option<u64>) -> &mut Self {
        self.schedule_seed = seed;
        self
    }

    /// The number of worker threads this pool will use.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The tenants in submission order.
    pub fn tenants(&self) -> &[PoolTenant] {
        &self.tenants
    }

    /// Runs every tenant across the worker set and collects the results
    /// in tenant order.
    pub fn run(&self) -> PoolRun {
        self.run_with_sinks(|_| NullSink).0
    }

    /// Runs like [`MachinePool::run`], but gives every tenant its own
    /// trace sink built by `make_sink(tenant_index)`. The sinks are
    /// returned in tenant (submission) order alongside the run, so
    /// per-tenant profiles can be aggregated afterwards.
    ///
    /// The sink only observes — each tenant's event stream is a
    /// deterministic function of that tenant alone, so outputs, traps
    /// and modeled metrics remain bit-identical to [`MachinePool::run`]
    /// (and to [`MachinePool::run_sequential`]) under any schedule.
    pub fn run_with_sinks<S, F>(&self, make_sink: F) -> (PoolRun, Vec<S>)
    where
        S: TraceSink + Send,
        F: Fn(usize) -> S + Sync,
    {
        let workers = self.workers.min(self.tenants.len()).max(1);
        // Deal tenants onto per-worker deques: round-robin in submission
        // order, or in a seeded permutation when the schedule is pinned.
        let deques: Vec<Mutex<VecDeque<usize>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        for (slot, idx) in self.deal_order().into_iter().enumerate() {
            deques[slot % workers].lock().unwrap().push_back(idx);
        }
        // Stealing trades determinism for load balance; a pinned
        // schedule keeps every worker on its own deque.
        let steal = self.schedule_seed.is_none();
        let supervision = self.supervision();
        let steals = AtomicU64::new(0);
        let remaining = AtomicU64::new(self.tenants.len() as u64);
        let depth_samples: Mutex<Vec<u64>> = Mutex::new(Vec::with_capacity(self.tenants.len()));

        let started = Instant::now();
        let mut collected: Vec<Vec<(TenantResult, S)>> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let deques = &deques;
                    let steals = &steals;
                    let remaining = &remaining;
                    let depth_samples = &depth_samples;
                    let make_sink = &make_sink;
                    let supervision = &supervision;
                    scope.spawn(move || {
                        let mut local = Vec::new();
                        while let Some(idx) = next_job(w, deques, steals, steal) {
                            let depth = remaining.fetch_sub(1, Ordering::Relaxed) - 1;
                            depth_samples.lock().unwrap().push(depth);
                            if let Some(sv) = supervision {
                                // A chaos worker crash escapes the
                                // tenant's isolation boundary: the
                                // worker dies mid-job and every result
                                // it held is lost until the recovery
                                // sweep below re-runs the missing
                                // tenants.
                                if sv.chaos.crashes_worker(idx) {
                                    panic!("chaos: injected worker crash on tenant {idx}");
                                }
                            }
                            let mut sink = make_sink(idx);
                            let result = match supervision {
                                Some(sv) => self.run_tenant_supervised(idx, w, &mut sink, sv),
                                None => self.run_tenant_with(idx, w, &mut sink),
                            };
                            local.push((result, sink));
                        }
                        local
                    })
                })
                .collect();
            for h in handles {
                // Unsupervised worker bodies never panic (tenant panics
                // are caught inside run_tenant_with); under chaos a
                // crashed worker's results are recovered below.
                match h.join() {
                    Ok(local) => collected.push(local),
                    Err(_) => debug_assert!(
                        supervision.is_some(),
                        "worker panicked without chaos injection"
                    ),
                }
            }
        });

        let mut pairs: Vec<(TenantResult, S)> = collected.into_iter().flatten().collect();
        let mut worker_crashes = 0u64;
        if let Some(sv) = &supervision {
            // Recovery sweep: any tenant missing from the collected
            // results rode a crashed worker (or sat in a dead worker's
            // deque). Re-run each on the recovery lane (worker id =
            // `workers`), counting the tenants whose own crash
            // injection fired. Nothing is silently lost.
            let mut have = vec![false; self.tenants.len()];
            for (r, _) in &pairs {
                have[r.tenant] = true;
            }
            for idx in (0..self.tenants.len()).filter(|&i| !have[i]) {
                if sv.chaos.crashes_worker(idx) {
                    worker_crashes += 1;
                }
                let mut sink = make_sink(idx);
                let result = self.run_tenant_supervised(idx, workers, &mut sink, sv);
                pairs.push((result, sink));
            }
        }
        let wall_ns = started.elapsed().as_nanos() as u64;

        pairs.sort_by_key(|(r, _)| r.tenant);
        let (results, sinks): (Vec<TenantResult>, Vec<S>) = pairs.into_iter().unzip();
        (
            PoolRun {
                retries: total_retries(&results),
                results,
                wall_ns,
                workers,
                steals: steals.load(Ordering::Relaxed),
                queue_depth: depth_samples.into_inner().unwrap(),
                worker_crashes,
            },
            sinks,
        )
    }

    /// Runs every tenant in submission order on the calling thread — the
    /// reference semantics the threaded [`MachinePool::run`] must match
    /// bit-for-bit (same outputs, traps, modeled metrics and fault
    /// streams; only latencies and wall-clock differ). Supervision and
    /// chaos apply here too (a chaos worker crash is counted, then the
    /// tenant recovered inline), so a sequential run is also the
    /// reference for supervised outcomes.
    pub fn run_sequential(&self) -> PoolRun {
        let started = Instant::now();
        let supervision = self.supervision();
        let mut worker_crashes = 0u64;
        let results: Vec<TenantResult> = (0..self.tenants.len())
            .map(|i| match &supervision {
                Some(sv) => {
                    if sv.chaos.crashes_worker(i) {
                        worker_crashes += 1;
                    }
                    self.run_tenant_supervised(i, 0, &mut NullSink, sv)
                }
                None => self.run_tenant_with(i, 0, &mut NullSink),
            })
            .collect();
        PoolRun {
            wall_ns: started.elapsed().as_nanos() as u64,
            retries: total_retries(&results),
            results,
            workers: 1,
            // Sequential dequeue order is submission order, so the
            // queue simply drains: n-1, n-2, ..., 0.
            queue_depth: (0..self.tenants.len() as u64).rev().collect(),
            steals: 0,
            worker_crashes,
        }
    }

    /// Submission indices in deal order: identity, or a seeded
    /// Fisher–Yates permutation when the schedule is pinned.
    fn deal_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.tenants.len()).collect();
        if let Some(seed) = self.schedule_seed {
            let mut rng = hlr::rng::Rng::new(seed);
            for i in (1..order.len()).rev() {
                order.swap(i, rng.range_usize(0, i + 1));
            }
        }
        order
    }

    /// The per-run supervision context, if the supervised path is
    /// engaged (a supervisor, chaos, or both are attached).
    fn supervision(&self) -> Option<Supervision> {
        if self.supervisor.is_none() && self.chaos.is_none() {
            return None;
        }
        let chaos = self.chaos.unwrap_or(ChaosConfig::quiet(0));
        Some(Supervision {
            supervisor: self.supervisor.unwrap_or_default(),
            hang: if chaos.hang_rate > 0.0 {
                Some(Arc::new(hang_machine()))
            } else {
                None
            },
            chaos,
            breakers: Mutex::new(HashMap::new()),
        })
    }

    fn run_tenant_with<S: TraceSink>(
        &self,
        idx: usize,
        worker: usize,
        sink: &mut S,
    ) -> TenantResult {
        let tenant = &self.tenants[idx];
        let faults = self.fault_base.map(|base| FaultConfig {
            seed: base.seed ^ idx as u64,
            ..base
        });
        let started = Instant::now();
        let run = catch_unwind(AssertUnwindSafe(|| match faults {
            Some(cfg) => tenant
                .machine
                .run_with_faults(&tenant.mode, sink, Some(cfg)),
            None => tenant.machine.run_with(&tenant.mode, sink),
        }));
        let latency_ns = started.elapsed().as_nanos() as u64;
        let outcome = match run {
            Ok(Ok(report)) => TenantOutcome::Completed(Box::new(report)),
            Ok(Err(trap)) => TenantOutcome::Trapped(trap),
            Err(payload) => TenantOutcome::Panicked(panic_message(&payload)),
        };
        TenantResult {
            tenant: idx,
            name: tenant.name.clone(),
            worker,
            latency_ns,
            attempts: 1,
            backoff_ns: 0,
            outcome,
        }
    }

    /// The supervised tenant path: shedding → breaker gate → admission
    /// → budgeted attempt loop with retry/backoff and chaos injection.
    /// Every decision except breaker state is a pure function of
    /// `(idx, seeds, policies)`, so supervised outcomes replay under
    /// any schedule.
    fn run_tenant_supervised<S: TraceSink>(
        &self,
        idx: usize,
        worker: usize,
        sink: &mut S,
        sv: &Supervision,
    ) -> TenantResult {
        let tenant = &self.tenants[idx];
        let sup = &sv.supervisor;
        let done = |attempts: u32, backoff_ns: u64, latency_ns: u64, outcome| TenantResult {
            tenant: idx,
            name: tenant.name.clone(),
            worker,
            latency_ns,
            attempts,
            backoff_ns,
            outcome,
        };

        // Load shedding: the backlog watermark is checked against the
        // submission index — deterministic, unlike instantaneous queue
        // depth, which depends on worker timing.
        if let Some(watermark) = sup.max_queue {
            if idx >= watermark {
                return done(
                    0,
                    0,
                    0,
                    TenantOutcome::Shed(format!(
                        "queue watermark {watermark} exceeded at depth {idx}"
                    )),
                );
            }
        }

        // Admission control: reject or right-size from the static DTB
        // pressure bound before spending any cycles on the tenant.
        let mut mode = tenant.mode.clone();
        let admission = &sup.admission;
        if admission.max_pressure_words.is_some() || admission.right_size {
            let bound = analyze::bound(tenant.machine.program());
            if let Some(max_words) = admission.max_pressure_words {
                if u64::from(bound.total_words) > max_words {
                    return done(
                        0,
                        0,
                        0,
                        TenantOutcome::Shed(format!(
                            "admission: program needs {} translation words, bound is {max_words}",
                            bound.total_words
                        )),
                    );
                }
            }
            if admission.right_size {
                if let (Mode::Dtb(cfg), Some(hot)) = (&mode, &bound.hot) {
                    if hot.insts as usize > cfg.geometry.capacity() {
                        mode = Mode::Dtb(crate::dtb::DtbConfig::with_capacity(
                            bound.recommended.capacity(),
                        ));
                    }
                }
            }
        }

        let key = Arc::as_ptr(&tenant.machine) as usize;
        let schedule = sup.backoff.schedule(idx as u64);
        let mut backoff_ns = 0u64;
        let started = Instant::now();
        let mut last = None;
        let mut attempts = 0;
        for attempt in 0..sup.backoff.attempts() {
            // Breaker gate, re-read per attempt: another tenant of the
            // same image may have tripped it since the last attempt.
            let state = breaker_state(&sv.breakers, key);
            if state == BreakerState::Quarantined {
                let failures = breaker_failures(&sv.breakers, key);
                return done(
                    attempts,
                    backoff_ns,
                    elapsed_plus(started, backoff_ns),
                    TenantOutcome::Quarantined(format!(
                        "image quarantined after {failures} consecutive failures"
                    )),
                );
            }
            if attempt > 0 {
                // Backoff is charged, not slept: campaigns replay the
                // schedule without waiting it out.
                backoff_ns += schedule.get(attempt as usize - 1).copied().unwrap_or(0);
            }
            attempts = attempt + 1;
            let outcome = self.supervised_attempt(idx, attempt, state, &mode, sink, sv);
            let verdict = classify(&outcome);
            if verdict != Verdict::Transient || attempt + 1 == sup.backoff.attempts() {
                record_breaker(&sv.breakers, key, &sup.breaker, verdict == Verdict::Success);
                return done(
                    attempts,
                    backoff_ns,
                    elapsed_plus(started, backoff_ns),
                    outcome,
                );
            }
            last = Some(outcome);
        }
        // Unreachable with attempts >= 1, but keep the compiler honest.
        let outcome = last.unwrap_or(TenantOutcome::Panicked("no attempts made".into()));
        record_breaker(&sv.breakers, key, &sup.breaker, false);
        done(
            attempts,
            backoff_ns,
            elapsed_plus(started, backoff_ns),
            outcome,
        )
    }

    /// One supervised attempt: resolves chaos injections, the effective
    /// machine/mode, fault re-seeding and artifact trust for `attempt`,
    /// then runs under the supervisor's budget.
    fn supervised_attempt<S: TraceSink>(
        &self,
        idx: usize,
        attempt: u32,
        state: BreakerState,
        mode: &Mode,
        sink: &mut S,
        sv: &Supervision,
    ) -> TenantOutcome {
        let tenant = &self.tenants[idx];
        // Hung-tenant chaos: the first attempt runs an infinite-loop
        // stand-in instead of the tenant's program. Only the budget can
        // preempt it; the retry then runs the real program.
        let hung = attempt == 0 && sv.chaos.hangs(idx);
        let machine: &Machine = match (&hung, &sv.hang) {
            (true, Some(hang)) => hang,
            _ => &tenant.machine,
        };
        // A degraded image runs in pure interpretation: the cheapest
        // mode, with no translation artifacts left to corrupt.
        let mode = if state == BreakerState::Degraded || hung {
            Mode::Interpreter
        } else {
            mode.clone()
        };
        // Pool-level fault streams are keyed by tenant (schedule-proof)
        // and re-salted per retry so a retry sees a fresh stream; the
        // first attempt matches the unsupervised path exactly.
        let faults = if hung {
            None
        } else {
            self.fault_base
                .map(|base| FaultConfig {
                    seed: base.seed ^ idx as u64,
                    ..base
                })
                .or_else(|| tenant.machine.fault_config())
                .map(|cfg| FaultConfig {
                    seed: cfg.seed ^ (u64::from(attempt) << 32),
                    ..cfg
                })
        };
        // Shared-artifact trust: attempt 0 may see chaos-corrupted
        // artifacts; retries bypass shared artifacts entirely (they may
        // be what failed). Host-side only — modeled results never
        // depend on which artifacts served the run.
        let shared = if attempt == 0 && !hung && sv.chaos.corrupts_artifacts(idx) {
            SharedArtifacts::Override(Arc::new(
                FrozenTransCache::for_program(&tenant.machine.program().code).poisoned(),
            ))
        } else if attempt == 0 {
            SharedArtifacts::Machine
        } else {
            SharedArtifacts::Bypass
        };
        let opts = RunOptions {
            faults,
            budget: Some(sv.supervisor.budget),
            shared,
        };
        let run = catch_unwind(AssertUnwindSafe(|| machine.run_opts(&mode, sink, opts)));
        match run {
            Ok(Ok(report)) => TenantOutcome::Completed(Box::new(report)),
            Ok(Err(trap @ (Trap::FuelExhausted | Trap::DeadlineExceeded))) => {
                TenantOutcome::TimedOut(trap)
            }
            Ok(Err(trap)) => TenantOutcome::Trapped(trap),
            Err(payload) => TenantOutcome::Panicked(panic_message(&payload)),
        }
    }
}

/// Per-run supervision context: the policies plus the shared mutable
/// state (breaker bank, hang stand-in) one supervised run needs.
struct Supervision {
    supervisor: Supervisor,
    chaos: ChaosConfig,
    /// Infinite-loop stand-in machine for hung-tenant chaos, built once
    /// per run (only when the hang rate is non-zero).
    hang: Option<Arc<Machine>>,
    /// Circuit breakers keyed by image identity (the `Arc<Machine>`
    /// pointer): tenants sharing a machine share a breaker.
    breakers: Mutex<HashMap<usize, Breaker>>,
}

/// How a supervised attempt's outcome steers the retry loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Verdict {
    /// Completed: final, closes the breaker.
    Success,
    /// Worth retrying: fault-plane traps (a fresh fault stream may
    /// miss), malformed dispatch (shared artifacts may be corrupt —
    /// retries bypass them), budget preemption (the first attempt may
    /// have been a chaos hang) and host panics.
    Transient,
    /// Deterministic guest behavior (division by zero, bounds, limits):
    /// retrying replays the same trap, so fail fast.
    Permanent,
}

fn classify(outcome: &TenantOutcome) -> Verdict {
    match outcome {
        TenantOutcome::Completed(_) => Verdict::Success,
        TenantOutcome::Panicked(_) | TenantOutcome::TimedOut(_) => Verdict::Transient,
        TenantOutcome::Trapped(
            Trap::FetchFailed { .. } | Trap::CorruptDir { .. } | Trap::Malformed(_),
        ) => Verdict::Transient,
        TenantOutcome::Trapped(_) => Verdict::Permanent,
        // Shed/Quarantined are decided before attempts, never returned
        // by an attempt.
        TenantOutcome::Shed(_) | TenantOutcome::Quarantined(_) => Verdict::Permanent,
    }
}

fn breaker_state(bank: &Mutex<HashMap<usize, Breaker>>, key: usize) -> BreakerState {
    bank.lock()
        .unwrap()
        .get(&key)
        .map(Breaker::state)
        .unwrap_or_default()
}

fn breaker_failures(bank: &Mutex<HashMap<usize, Breaker>>, key: usize) -> u32 {
    bank.lock()
        .unwrap()
        .get(&key)
        .map(Breaker::failures)
        .unwrap_or(0)
}

fn record_breaker(
    bank: &Mutex<HashMap<usize, Breaker>>,
    key: usize,
    policy: &crate::resilience::BreakerPolicy,
    success: bool,
) {
    let mut bank = bank.lock().unwrap();
    let breaker = bank.entry(key).or_default();
    if success {
        breaker.record_success();
    } else {
        breaker.record_failure(policy);
    }
}

/// Host wall-clock since `started` plus the charged (never slept)
/// backoff, in nanoseconds.
fn elapsed_plus(started: Instant, backoff_ns: u64) -> u64 {
    (started.elapsed().as_nanos() as u64).saturating_add(backoff_ns)
}

/// Sum of `attempts - 1` over tenants that ran at least once.
fn total_retries(results: &[TenantResult]) -> u64 {
    results
        .iter()
        .map(|r| u64::from(r.attempts.saturating_sub(1)))
        .sum()
}

/// The hung-tenant stand-in: an infinite loop with no output, compiled
/// once per chaos run. Only a budget (or the step limit) ends it.
fn hang_machine() -> Machine {
    let hir =
        hlr::compile("proc main() begin int i := 0; while i < 1 do begin i := i * 1; end end")
            .expect("hang stand-in compiles");
    Machine::new(
        &dir::compiler::compile(&hir),
        dir::encode::SchemeKind::Packed,
    )
}

/// Pops the next tenant index for worker `w`: own deque from the front,
/// else (when `steal` — i.e. the schedule is not pinned) steal from the
/// back of the first non-empty sibling.
fn next_job(
    w: usize,
    deques: &[Mutex<VecDeque<usize>>],
    steals: &AtomicU64,
    steal: bool,
) -> Option<usize> {
    if let Some(idx) = deques[w].lock().unwrap().pop_front() {
        return Some(idx);
    }
    if !steal {
        return None;
    }
    for off in 1..deques.len() {
        let victim = (w + off) % deques.len();
        if let Some(idx) = deques[victim].lock().unwrap().pop_back() {
            steals.fetch_add(1, Ordering::Relaxed);
            return Some(idx);
        }
    }
    None
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtb::DtbConfig;
    use dir::encode::SchemeKind;
    use telemetry::FaultKind;

    fn machine_for(src: &str) -> Arc<Machine> {
        let hir = hlr::compile(src).expect("test source compiles");
        let prog = dir::compiler::compile(&hir);
        let mut m = Machine::new(&prog, SchemeKind::Packed);
        m.freeze_translations();
        Arc::new(m)
    }

    fn sample_pool(workers: usize) -> MachinePool {
        let sources = [
            "proc main() begin int i := 0; while i < 25 do begin write i * i; i := i + 1; end end",
            "proc main() begin int a := 0; int b := 1; int i := 0; \
             while i < 20 do begin int t := a + b; a := b; b := t; write a; i := i + 1; end end",
            "proc main() begin write 6 * 7; end",
        ];
        let machines: Vec<Arc<Machine>> = sources.iter().map(|s| machine_for(s)).collect();
        let mut pool = MachinePool::new(workers);
        for t in 0..7 {
            let m = &machines[t % machines.len()];
            let mode = if t % 2 == 0 {
                Mode::Dtb(DtbConfig::with_capacity(16))
            } else {
                Mode::Interpreter
            };
            pool.push(format!("tenant-{t}"), Arc::clone(m), mode);
        }
        pool
    }

    fn outcomes(run: &PoolRun) -> Vec<(&str, &TenantOutcome)> {
        run.results
            .iter()
            .map(|r| (r.name.as_str(), &r.outcome))
            .collect()
    }

    #[test]
    fn pooled_results_match_sequential_bit_for_bit() {
        let pool = sample_pool(4);
        let seq = pool.run_sequential();
        let par = pool.run();
        // Same tenants, same order, identical outputs / traps / modeled
        // metrics (TenantOutcome PartialEq covers Report in full).
        assert_eq!(outcomes(&seq), outcomes(&par));
        assert_eq!(par.results.len(), 7);
        assert_eq!(par.completed(), 7);
        assert!(par.total_instructions() > 0);
        assert_eq!(par.total_instructions(), seq.total_instructions());
        assert_eq!(par.total_cycles(), seq.total_cycles());
    }

    #[test]
    fn fault_streams_are_keyed_by_tenant_not_schedule() {
        let mut pool = sample_pool(4);
        pool.set_faults(Some(FaultConfig::only(0xBEEF, FaultKind::DtbWord, 0.02)));
        let seq = pool.run_sequential();
        let one = {
            let mut p = pool.clone();
            p.workers = 1;
            p.run()
        };
        let par = pool.run();
        assert_eq!(outcomes(&seq), outcomes(&par));
        assert_eq!(outcomes(&seq), outcomes(&one));
        // The campaign actually injected: at least one tenant recovered
        // from a corrupted DTB word.
        let recoveries: u64 = par
            .results
            .iter()
            .filter_map(|r| r.outcome.report())
            .map(|r| r.metrics.recoveries)
            .sum();
        assert!(recoveries > 0, "fault campaign was inert");
    }

    #[test]
    fn distinct_tenants_get_distinct_fault_seeds() {
        // Two tenants, same machine, same mode: without per-tenant
        // re-seeding their fault streams (and thus corrupted-word
        // counts over a long run) would be identical.
        let m = machine_for(
            "proc main() begin int i := 0; \
             while i < 400 do begin write i; i := i + 1; end end",
        );
        let mut pool = MachinePool::new(1);
        pool.push("a", Arc::clone(&m), Mode::Dtb(DtbConfig::with_capacity(8)));
        pool.push("b", Arc::clone(&m), Mode::Dtb(DtbConfig::with_capacity(8)));
        pool.set_faults(Some(FaultConfig::only(7, FaultKind::DtbWord, 0.05)));
        let run = pool.run();
        let stats: Vec<_> = run
            .results
            .iter()
            .map(|r| r.outcome.report().unwrap().metrics.faults.unwrap())
            .collect();
        assert_ne!(stats[0], stats[1], "tenants shared one fault stream");
    }

    #[test]
    fn panicking_tenant_is_isolated() {
        let mut pool = sample_pool(2);
        // A zero-word allocation unit fails validation, so Dtb::new
        // panics on construction, inside the tenant's run.
        let bad = DtbConfig {
            unit_words: 0,
            ..DtbConfig::with_capacity(16)
        };
        let victim = &pool.tenants[0].machine;
        pool.push("bad-geometry", Arc::clone(victim), Mode::Dtb(bad));
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // keep test output clean
        let run = pool.run();
        std::panic::set_hook(hook);
        assert_eq!(run.results.len(), 8);
        assert_eq!(run.completed(), 7);
        let last = run.results.last().unwrap();
        assert_eq!(last.name, "bad-geometry");
        match &last.outcome {
            TenantOutcome::Panicked(msg) => {
                assert!(!msg.is_empty());
            }
            other => panic!("expected panic outcome, got {other:?}"),
        }
    }

    #[test]
    fn stealing_occurs_under_imbalance_and_changes_nothing() {
        // All work dealt to worker 0's deque side by using 4 workers over
        // 8 tenants with wildly uneven costs: the cheap tenants' workers
        // finish and steal.
        let heavy = machine_for(
            "proc main() begin int i := 0; \
             while i < 2000 do begin write i; i := i + 1; end end",
        );
        let light = machine_for("proc main() begin write 1; end");
        let mut pool = MachinePool::new(4);
        for t in 0..8 {
            let m = if t < 4 { &heavy } else { &light };
            pool.push(format!("t{t}"), Arc::clone(m), Mode::Interpreter);
        }
        let seq = pool.run_sequential();
        let par = pool.run();
        assert_eq!(outcomes(&seq), outcomes(&par));
        // Steal counts are schedule-dependent; just check the counter is
        // wired (it may legitimately be 0 on a slow machine, so only
        // sanity-bound it).
        assert!(par.steals <= 8);
    }

    #[test]
    fn more_workers_than_tenants_is_fine() {
        let m = machine_for("proc main() begin write 9; end");
        let mut pool = MachinePool::new(16);
        pool.push("only", m, Mode::Interpreter);
        let run = pool.run();
        assert_eq!(run.workers, 1); // clamped to tenant count
        assert_eq!(run.completed(), 1);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        assert_eq!(MachinePool::new(0).workers(), 1);
    }

    #[test]
    fn empty_pool_runs_to_empty_result() {
        let run = MachinePool::new(4).run();
        assert!(run.results.is_empty());
        assert_eq!(run.completed(), 0);
        assert_eq!(run.minstr_per_sec(), 0.0);
        assert_eq!(run.latency_percentiles(), Percentiles::default());
    }

    #[test]
    fn latency_percentiles_are_populated_and_ordered() {
        let run = sample_pool(2).run();
        let p = run.latency_percentiles();
        assert!(p.p50 > 0.0);
        assert!(p.p50 <= p.p95 && p.p95 <= p.p99 && p.p99 <= p.p999);
    }

    /// A counting sink with the profiling contract: no miss
    /// classification, so metrics stay bit-identical to untraced runs.
    struct CountSink(telemetry::EventCounts);

    impl TraceSink for CountSink {
        const CLASSIFY_MISSES: bool = false;

        fn emit(&mut self, event: telemetry::Event) {
            self.0.record(&event);
        }
    }

    #[test]
    fn per_tenant_sinks_observe_without_changing_results() {
        let pool = sample_pool(3);
        let plain = pool.run_sequential();
        let (run, sinks) = pool.run_with_sinks(|_| CountSink(telemetry::EventCounts::default()));
        // Observation is free: outputs, traps and modeled metrics are
        // bit-identical to the unprofiled sequential reference.
        assert_eq!(outcomes(&plain), outcomes(&run));
        assert_eq!(sinks.len(), run.results.len());
        // Sinks come back in tenant order: each saw exactly its
        // tenant's retired instructions.
        for (r, sink) in run.results.iter().zip(&sinks) {
            let m = &r.outcome.report().unwrap().metrics;
            assert_eq!(sink.0.retires, m.instructions);
        }
    }

    fn quiet_hook<R>(f: impl FnOnce() -> R) -> R {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let r = f();
        std::panic::set_hook(hook);
        r
    }

    fn looping_machine() -> Arc<Machine> {
        machine_for("proc main() begin int i := 0; while i < 1 do begin i := i * 1; end end")
    }

    fn plain_supervisor() -> crate::resilience::Supervisor {
        // No admission right-sizing, so supervised completed outcomes
        // stay bit-identical to the unsupervised path.
        crate::resilience::Supervisor {
            admission: crate::resilience::AdmissionPolicy {
                max_pressure_words: None,
                right_size: false,
            },
            ..crate::resilience::Supervisor::default()
        }
    }

    #[test]
    fn pool_run_edge_cases_yield_zeros_not_nan() {
        // Regression: empty tenant lists and zero-wall-time runs must
        // produce zeros, never NaN or a panic.
        let empty = PoolRun {
            results: vec![],
            wall_ns: 0,
            workers: 2,
            steals: 0,
            queue_depth: vec![],
            retries: 0,
            worker_crashes: 0,
        };
        let p = empty.latency_percentiles();
        assert_eq!((p.p50, p.p95, p.p99, p.p999), (0.0, 0.0, 0.0, 0.0));
        assert_eq!(empty.worker_utilization(), vec![0.0, 0.0]);
        assert_eq!(empty.minstr_per_sec(), 0.0);
        // Zero wall-clock with real results: utilization and throughput
        // divide by wall time — must clamp to zero, not NaN/inf.
        let mut run = sample_pool(2).run();
        run.wall_ns = 0;
        assert!(run.worker_utilization().iter().all(|u| *u == 0.0));
        assert_eq!(run.minstr_per_sec(), 0.0);
        assert!(run.latency_percentiles().p50.is_finite());
    }

    #[test]
    fn supervised_chaos_off_matches_unsupervised_bit_for_bit() {
        let mut pool = sample_pool(3);
        let plain = pool.run();
        pool.set_supervisor(Some(plain_supervisor()));
        let supervised = pool.run();
        assert_eq!(outcomes(&plain), outcomes(&supervised));
        assert_eq!(supervised.retries, 0);
        assert_eq!(supervised.worker_crashes, 0);
        assert!(supervised.results.iter().all(|r| r.attempts == 1));
    }

    #[test]
    fn shedding_rejects_tenants_past_the_watermark() {
        let mut pool = sample_pool(2);
        let mut sup = plain_supervisor();
        sup.max_queue = Some(3);
        pool.set_supervisor(Some(sup));
        let run = pool.run();
        assert_eq!(run.completed(), 3);
        assert_eq!(run.outcome_count("shed"), 4);
        for r in &run.results[3..] {
            assert_eq!(r.attempts, 0);
            match &r.outcome {
                TenantOutcome::Shed(reason) => assert!(reason.contains("watermark")),
                other => panic!("expected shed, got {other:?}"),
            }
        }
        // Full accounting: every tenant has exactly one outcome.
        let statuses = [
            "completed",
            "trapped",
            "panicked",
            "timed_out",
            "shed",
            "quarantined",
        ];
        let total: usize = statuses.iter().map(|s| run.outcome_count(s)).sum();
        assert_eq!(total, run.results.len());
    }

    #[test]
    fn fuel_budget_times_out_runaway_tenants() {
        let mut pool = MachinePool::new(2);
        pool.push("runaway", looping_machine(), Mode::Interpreter);
        let mut sup = plain_supervisor();
        sup.budget = crate::config::Budget::fuel(200_000);
        pool.set_supervisor(Some(sup));
        let run = pool.run();
        let r = &run.results[0];
        match r.outcome {
            TenantOutcome::TimedOut(Trap::FuelExhausted) => {}
            ref other => panic!("expected fuel timeout, got {other:?}"),
        }
        // A timeout looks like a hang, so every attempt is spent.
        assert_eq!(r.attempts, sup.backoff.attempts());
        assert_eq!(run.retries, u64::from(sup.backoff.attempts() - 1));
        assert!(r.backoff_ns > 0, "backoff must be charged to latency");
        assert!(r.latency_ns >= r.backoff_ns);
    }

    #[test]
    fn hung_tenants_time_out_and_recover_on_retry() {
        let mut pool = sample_pool(2);
        let chaos_off = pool.run();
        let mut sup = plain_supervisor();
        sup.budget = crate::config::Budget::fuel(2_000_000);
        pool.set_supervisor(Some(sup));
        pool.set_chaos(Some(crate::resilience::ChaosConfig {
            seed: 11,
            worker_crash_rate: 0.0,
            hang_rate: 1.0,
            artifact_corruption_rate: 0.0,
        }));
        let run = pool.run();
        // Every tenant hangs on attempt 0, is preempted by fuel, and
        // completes its real program on the retry — bit-identically.
        assert_eq!(outcomes(&chaos_off), outcomes(&run));
        assert!(run.results.iter().all(|r| r.attempts == 2));
        assert_eq!(run.retries, run.results.len() as u64);
    }

    #[test]
    fn corrupted_shared_artifacts_are_caught_and_retried() {
        let mut pool = sample_pool(2);
        let chaos_off = pool.run();
        pool.set_supervisor(Some(plain_supervisor()));
        pool.set_chaos(Some(crate::resilience::ChaosConfig {
            seed: 5,
            worker_crash_rate: 0.0,
            hang_rate: 0.0,
            artifact_corruption_rate: 1.0,
        }));
        let run = pool.run();
        // Poisoned templates trap as malformed dispatch, never as wrong
        // output; the retry bypasses shared artifacts and recovers.
        assert_eq!(outcomes(&chaos_off), outcomes(&run));
        assert!(run.results.iter().all(|r| r.attempts == 2));
    }

    #[test]
    fn worker_crashes_lose_no_tenants() {
        let mut pool = sample_pool(3);
        let chaos_off = pool.run();
        pool.set_supervisor(Some(plain_supervisor()));
        pool.set_chaos(Some(crate::resilience::ChaosConfig {
            seed: 9,
            worker_crash_rate: 1.0,
            hang_rate: 0.0,
            artifact_corruption_rate: 0.0,
        }));
        let run = quiet_hook(|| pool.run());
        // Every worker dies on its first job; the recovery sweep re-runs
        // every tenant. Nothing is lost, outcomes are bit-identical.
        assert_eq!(outcomes(&chaos_off), outcomes(&run));
        assert_eq!(run.worker_crashes, run.results.len() as u64);
        // Recovered tenants run on the recovery lane past the last
        // real worker id.
        assert!(run.results.iter().all(|r| r.worker == run.workers));
        // Sequential supervision counts the same crashes.
        let seq = pool.run_sequential();
        assert_eq!(outcomes(&seq), outcomes(&run));
        assert_eq!(seq.worker_crashes, run.worker_crashes);
    }

    #[test]
    fn breaker_degrades_then_quarantines_repeat_offenders() {
        // One hopeless image (infinite recursion → DepthLimit, a
        // permanent trap) shared by five tenants, single worker so the
        // breaker walk is deterministic: 2 failures close→degrade,
        // 3rd fails degraded → quarantine, remaining tenants never run.
        let boom = machine_for(
            "proc boom() -> int begin return boom(); end
             proc main() begin write boom(); end",
        );
        let mut pool = MachinePool::new(1);
        for t in 0..5 {
            pool.push(format!("boom-{t}"), Arc::clone(&boom), Mode::Interpreter);
        }
        let mut sup = plain_supervisor();
        sup.backoff.max_attempts = 1; // permanent traps are never retried anyway
        sup.breaker = crate::resilience::BreakerPolicy {
            degrade_after: 2,
            quarantine_after: 3,
        };
        pool.set_supervisor(Some(sup));
        let run = pool.run();
        let statuses: Vec<&str> = run.results.iter().map(|r| r.outcome.status()).collect();
        assert_eq!(
            statuses,
            vec![
                "trapped",
                "trapped",
                "trapped",
                "quarantined",
                "quarantined"
            ]
        );
        for r in &run.results[3..] {
            assert_eq!(r.attempts, 0);
            match &r.outcome {
                TenantOutcome::Quarantined(reason) => {
                    assert!(reason.contains("3 consecutive failures"), "{reason}");
                }
                other => panic!("expected quarantine, got {other:?}"),
            }
        }
    }

    #[test]
    fn admission_rejects_oversized_programs_and_right_sizes_dtbs() {
        // Rejection: a 1-word pressure bound refuses everything.
        let mut pool = sample_pool(2);
        let mut sup = plain_supervisor();
        sup.admission.max_pressure_words = Some(1);
        pool.set_supervisor(Some(sup));
        let run = pool.run();
        assert_eq!(run.outcome_count("shed"), run.results.len());
        assert!(run.results.iter().all(|r| match &r.outcome {
            TenantOutcome::Shed(reason) => reason.starts_with("admission:"),
            _ => false,
        }));

        // Right-sizing: a 1-entry DTB thrashes a 400-iteration loop;
        // admission grows it to the recommended geometry, so the
        // supervised run sees strictly fewer DTB misses.
        let m = machine_for(
            "proc main() begin int i := 0; \
             while i < 400 do begin write i; i := i + 1; end end",
        );
        let tiny = Mode::Dtb(DtbConfig::with_capacity(1));
        let mut pool = MachinePool::new(1);
        pool.push("thrash", Arc::clone(&m), tiny.clone());
        let plain = pool.run();
        let mut sup = plain_supervisor();
        sup.admission.right_size = true;
        pool.set_supervisor(Some(sup));
        let sized = pool.run();
        let misses = |run: &PoolRun| {
            run.results[0]
                .outcome
                .report()
                .unwrap()
                .metrics
                .dtb
                .as_ref()
                .unwrap()
                .misses
        };
        assert_eq!(plain.completed(), 1);
        assert_eq!(sized.completed(), 1);
        assert!(
            misses(&sized) < misses(&plain),
            "right-sized DTB must miss less: {} vs {}",
            misses(&sized),
            misses(&plain)
        );
    }

    #[test]
    fn schedule_seed_pins_the_schedule() {
        let mut pool = sample_pool(4);
        let free = pool.run();
        pool.set_schedule_seed(Some(0xC0FFEE));
        let a = pool.run();
        let b = pool.run();
        // Outcomes are schedule-invariant either way...
        assert_eq!(outcomes(&free), outcomes(&a));
        // ...but a pinned schedule also replays every schedule-dependent
        // observable: no steals, identical worker assignment.
        assert_eq!(a.steals, 0);
        assert_eq!(b.steals, 0);
        let workers_of =
            |run: &PoolRun| -> Vec<usize> { run.results.iter().map(|r| r.worker).collect() };
        assert_eq!(workers_of(&a), workers_of(&b));
    }

    #[test]
    fn queue_depth_and_utilization_are_wired() {
        let run = sample_pool(2).run();
        assert_eq!(run.queue_depth.len(), run.results.len());
        // The queue drains: the last dequeue leaves it empty.
        assert_eq!(run.queue_depth.iter().min(), Some(&0));
        assert!(run
            .queue_depth
            .iter()
            .all(|&d| d < run.results.len() as u64));
        let util = run.worker_utilization();
        assert_eq!(util.len(), run.workers);
        assert!(util.iter().all(|u| (0.0..=1.0).contains(u)));
        assert!(util.iter().any(|&u| u > 0.0));
        // Sequential reference records the drain in submission order.
        let seq = sample_pool(2).run_sequential();
        assert_eq!(seq.queue_depth.first(), Some(&6));
        assert_eq!(seq.queue_depth.last(), Some(&0));
    }
}
