//! Property-based differential tests: on randomly generated (terminating,
//! trap-free) RAUL programs, every execution level and every encoding must
//! agree exactly.

use dir::encode::SchemeKind;
use proptest::prelude::*;
use uhm::{DtbConfig, Machine, Mode};

fn build(seed: u64) -> (hlr::hir::Program, dir::Program) {
    let ast = hlr::generate::program(seed, &hlr::generate::Config::default());
    let hir = hlr::sema::analyze(&ast).expect("generated programs are valid");
    let program = dir::compiler::compile(&hir);
    (hir, program)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// HLR evaluator ≡ DIR executor ≡ PSDER interpreter on random programs.
    #[test]
    fn execution_levels_agree(seed in any::<u64>()) {
        let (hir, program) = build(seed);
        let reference = hlr::eval::run(&hir).expect("trap-free by construction");
        prop_assert_eq!(&dir::exec::run(&program).unwrap(), &reference);
        prop_assert_eq!(&psder::interp::run(&program).unwrap(), &reference);
    }

    /// The assembler round-trips random compiled programs exactly.
    #[test]
    fn assembler_round_trips(seed in any::<u64>()) {
        let (_, program) = build(seed);
        let text = dir::asm::disassemble(&program);
        let back = dir::asm::assemble(&text).expect("assembles");
        prop_assert_eq!(back, program);
    }

    /// Fusion preserves semantics on random programs.
    #[test]
    fn fusion_preserves_semantics(seed in any::<u64>()) {
        let (_, program) = build(seed);
        let (fused, stats) = dir::fuse::fuse(&program);
        fused.validate().expect("fused output validates");
        prop_assert!(stats.after <= stats.before);
        prop_assert_eq!(
            dir::exec::run(&fused).unwrap(),
            dir::exec::run(&program).unwrap()
        );
    }

    /// Every encoding round-trips random programs, and sizes are ordered
    /// byte ≥ packed ≥ contextual.
    #[test]
    fn encodings_round_trip(seed in any::<u64>()) {
        let (_, program) = build(seed);
        let mut sizes = Vec::new();
        for scheme in SchemeKind::all() {
            let image = scheme.encode(&program);
            prop_assert_eq!(image.decode_all().unwrap(), program.code.clone());
            sizes.push(image.program_bits());
        }
        prop_assert!(sizes[0] >= sizes[1]); // byte >= packed
        prop_assert!(sizes[1] >= sizes[2]); // packed >= contextual
    }
}

proptest! {
    // Machine runs are slower; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// All three machine modes produce the reference output on random
    /// programs, under a randomly sized DTB.
    #[test]
    fn machine_modes_agree(seed in any::<u64>(), cap_exp in 2u32..8) {
        let (hir, program) = build(seed);
        let reference = hlr::eval::run(&hir).expect("trap-free by construction");
        let machine = Machine::new(&program, SchemeKind::PairHuffman);
        let modes = [
            Mode::Interpreter,
            Mode::Dtb(DtbConfig::with_capacity(1 << cap_exp)),
            Mode::ICache { geometry: memsim::Geometry::new(8, 4) },
        ];
        for mode in modes {
            let report = machine.run(&mode).expect("trap-free");
            prop_assert_eq!(&report.output, &reference);
        }
    }

    /// The DTB never changes results regardless of geometry, unit size or
    /// allocation policy.
    #[test]
    fn dtb_geometry_is_semantically_transparent(
        seed in 0u64..1000,
        sets in 1usize..8,
        ways in 1usize..5,
        overflow in prop::option::of(1usize..6),
    ) {
        let (_, program) = build(seed);
        let reference = dir::exec::run(&program).unwrap();
        let cfg = uhm::DtbConfig {
            geometry: memsim::Geometry::new(sets, ways),
            unit_words: match overflow {
                Some(_) => 3,
                None => psder::MAX_TRANSLATION_WORDS,
            },
            allocation: match overflow {
                Some(blocks) => uhm::Allocation::Overflow { blocks },
                None => uhm::Allocation::Fixed,
            },
            replacement: uhm::Replacement::Lru,
        };
        let machine = Machine::new(&program, SchemeKind::Packed);
        let report = machine.run(&Mode::Dtb(cfg)).expect("trap-free");
        prop_assert_eq!(&report.output, &reference);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bitstream round-trip on arbitrary (value, width) sequences.
    #[test]
    fn bitstream_round_trips(fields in prop::collection::vec((any::<u64>(), 1u32..=64), 1..50)) {
        let mut w = dir::bitstream::BitWriter::new();
        let masked: Vec<(u64, u32)> = fields
            .iter()
            .map(|&(v, width)| {
                let v = if width == 64 { v } else { v & ((1u64 << width) - 1) };
                (v, width)
            })
            .collect();
        for &(v, width) in &masked {
            w.write(v, width);
        }
        let (buf, len) = w.finish();
        let mut r = dir::bitstream::BitReader::new(&buf, len);
        for &(v, width) in &masked {
            prop_assert_eq!(r.read(width).unwrap(), v);
        }
    }

    /// Huffman round-trip on arbitrary frequency tables and messages.
    #[test]
    fn huffman_round_trips(
        freqs in prop::collection::vec(0u64..1000, 2..30),
        message in prop::collection::vec(any::<prop::sample::Index>(), 0..100),
    ) {
        let tree = dir::huffman::Tree::from_frequencies(&freqs);
        let symbols: Vec<usize> = message.iter().map(|i| i.index(freqs.len())).collect();
        let mut w = dir::bitstream::BitWriter::new();
        for &s in &symbols {
            tree.encode(s, &mut w);
        }
        let (buf, len) = w.finish();
        let mut r = dir::bitstream::BitReader::new(&buf, len);
        for &s in &symbols {
            let (got, _) = tree.decode(&mut r).unwrap();
            prop_assert_eq!(got, s);
        }
    }

    /// Zigzag coding round-trips all i64 values.
    #[test]
    fn zigzag_round_trips(v in any::<i64>()) {
        prop_assert_eq!(dir::isa::unzigzag(dir::isa::zigzag(v)), v);
    }
}
