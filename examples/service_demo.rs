//! Service plane: put the universal host machine behind a request
//! front-end and watch the latency-under-load trajectory emerge.
//!
//! Arrivals live on the *modeled* clock (requests per million modeled
//! cycles), so every number printed here — queue depths, latencies,
//! shed decisions — is an exact, replayable function of the workload
//! mix, the policy knobs and the seed.
//!
//! Run with `cargo run --example service_demo`.

use std::sync::Arc;

use dir::encode::SchemeKind;
use uhm::resilience::AdmissionPolicy;
use uhm::service::{Service, ServiceConfig};
use uhm::{DtbConfig, Machine, Mode};

fn machine(source: &str) -> Arc<Machine> {
    let hir = hlr::compile(source).expect("valid RAUL");
    let program = dir::compiler::compile(&hir);
    let mut m = Machine::new(&program, SchemeKind::Packed);
    // Share one translation snapshot across every served request.
    m.freeze_translations();
    Arc::new(m)
}

fn main() {
    let quick = machine(
        "proc main() begin int i; int s := 0; \
         for i := 1 to 40 do s := s + i; write s; end",
    );
    let slow = machine(
        "proc main() begin int i; int s := 0; \
         for i := 1 to 400 do s := s + i * i; write s; end",
    );

    // 1. A service: 2 dispatch slots, a backlog watermark of 4, and
    //    admission wired to the analyze plane's static pressure bound.
    let mut service = Service::new(ServiceConfig {
        workers: 2,
        admission: AdmissionPolicy::default(),
        queue_watermark: Some(4),
        tenant_quota: Some(6),
        seed: 0xDEC0DE,
    });

    // 2. Two tenants share the front-end; each gets its own FIFO lane
    //    and the dispatcher drains lanes round-robin.
    for i in 0..6 {
        service.submit("alpha", format!("alpha-{i}"), Arc::clone(&quick), dtb());
        service.submit("beta", format!("beta-{i}"), Arc::clone(&slow), dtb());
    }

    // 3. One low rate, one past the knee: same twelve requests, very
    //    different trajectories.
    println!("rate  ok shed lost qpeak     p50-cycles     p99-cycles");
    for rate in [2, 2_000] {
        let step = service.run_at(rate);
        let lat = step.latency_percentiles();
        println!(
            "{rate:>4} {:>3} {:>4} {:>4} {:>5} {:>14.0} {:>14.0}",
            step.outcome_count("completed"),
            step.outcome_count("shed"),
            step.lost(),
            step.queue_peak,
            lat.p50,
            lat.p99,
        );
    }

    // 4. Every request is accounted for — completed, trapped,
    //    panicked, rejected or shed; nothing is ever lost — and served
    //    outputs are bit-identical to running the same mix directly on
    //    the MachinePool (`Service::direct_pool`).
    println!("\nReplay the sweep with `raul load` or `service_load` (E21).");
}

fn dtb() -> Mode {
    Mode::Dtb(DtbConfig::with_capacity(64))
}
