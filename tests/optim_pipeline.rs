//! Composition tests for the optimisation pipeline: constant folding
//! (HIR), dead-code elimination (DIR) and fusion (DIR) compose in any
//! order the driver offers, always preserving semantics and never growing
//! the program.

use dir::encode::SchemeKind;
use uhm::{DtbConfig, Machine, Mode};

/// Applies the full pipeline: fold → compile → dce → fuse.
fn optimise(hir: &hlr::hir::Program) -> dir::Program {
    let (folded, _) = hlr::fold::fold(hir);
    let compiled = dir::compiler::compile(&folded);
    let (pruned, _) = dir::cfg::dce(&compiled);
    let (fused, _) = dir::fuse::fuse(&pruned);
    fused
}

#[test]
fn full_pipeline_preserves_semantics_on_samples() {
    for sample in hlr::programs::ALL {
        let hir = sample.compile().expect("compiles");
        let reference = hlr::eval::run(&hir).expect("runs");
        let optimised = optimise(&hir);
        optimised
            .validate()
            .unwrap_or_else(|e| panic!("{}: {e}", sample.name));
        assert_eq!(
            dir::exec::run(&optimised).expect("runs"),
            reference,
            "{}",
            sample.name
        );
    }
}

#[test]
fn full_pipeline_preserves_semantics_on_generated_programs() {
    for seed in 100..140 {
        let ast = hlr::generate::program(seed, &hlr::generate::Config::default());
        let hir = hlr::sema::analyze(&ast).expect("valid");
        let reference = hlr::eval::run(&hir).expect("trap-free");
        let optimised = optimise(&hir);
        optimised
            .validate()
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(
            dir::exec::run(&optimised).expect("runs"),
            reference,
            "seed {seed}"
        );
    }
}

#[test]
fn pipeline_never_grows_programs() {
    for sample in hlr::programs::ALL {
        let hir = sample.compile().expect("compiles");
        let baseline = dir::compiler::compile(&hir);
        let optimised = optimise(&hir);
        assert!(
            optimised.len() <= baseline.len(),
            "{}: {} -> {}",
            sample.name,
            baseline.len(),
            optimised.len()
        );
    }
}

#[test]
fn optimised_programs_run_faster_under_the_dtb() {
    let mut faster = 0;
    let mut total = 0;
    for sample in hlr::programs::ALL {
        if sample.name == "straightline" {
            continue;
        }
        let hir = sample.compile().expect("compiles");
        let baseline = dir::compiler::compile(&hir);
        let optimised = optimise(&hir);
        let cycles = |p: &dir::Program| {
            Machine::new(p, SchemeKind::Huffman)
                .run(&Mode::Dtb(DtbConfig::with_capacity(128)))
                .expect("runs")
                .metrics
                .cycles
                .total()
        };
        total += 1;
        if cycles(&optimised) <= cycles(&baseline) {
            faster += 1;
        }
    }
    assert!(
        faster * 10 >= total * 9,
        "optimisation slowed down too many workloads ({faster}/{total})"
    );
}

#[test]
fn optimised_programs_encode_smaller() {
    let mut total_base = 0u64;
    let mut total_opt = 0u64;
    for sample in hlr::programs::ALL {
        let hir = sample.compile().expect("compiles");
        total_base += SchemeKind::PairHuffman
            .encode(&dir::compiler::compile(&hir))
            .program_bits();
        total_opt += SchemeKind::PairHuffman
            .encode(&optimise(&hir))
            .program_bits();
    }
    assert!(
        total_opt < total_base,
        "optimisation must shrink the encoded suite: {total_opt} vs {total_base}"
    );
}

#[test]
fn assembler_round_trips_optimised_programs() {
    for seed in 200..215 {
        let ast = hlr::generate::program(seed, &hlr::generate::Config::default());
        let hir = hlr::sema::analyze(&ast).expect("valid");
        let program = optimise(&hir);
        let text = dir::asm::disassemble(&program);
        let back = dir::asm::assemble(&text).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(back, program, "seed {seed}");
    }
}
