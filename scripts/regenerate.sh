#!/usr/bin/env bash
# Regenerates every experiment output of the reproduction into results/.
# Usage: scripts/regenerate.sh [results-dir]
set -euo pipefail
cd "$(dirname "$0")/.."
out="${1:-results}"
mkdir -p "$out"
bins=(table1 table2 table3 fig1_space encoding_report dtb_sweep model_check \
      assoc_ablation alloc_ablation replacement_ablation two_level decode_aids)
for b in "${bins[@]}"; do
    echo "== $b =="
    cargo run -q -p uhm-bench --bin "$b" --release | tee "$out/$b.txt"
done
echo "All outputs written to $out/"
