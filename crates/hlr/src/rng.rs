//! A small deterministic pseudo-random generator (splitmix64).
//!
//! The generator backs the seeded program generator and the differential
//! test suites. It is intentionally *not* cryptographic: the only
//! requirements are statistical spread, determinism per seed, and zero
//! external dependencies (the build must work without a crates.io
//! mirror). Splitmix64 passes BigCrush on these word sizes and needs six
//! lines of code.

/// Deterministic splitmix64 generator.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed; equal seeds give equal streams.
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// Uniform `u32` in `[lo, hi)`.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.range_u64(lo as u64, hi as u64) as u32
    }

    /// Uniform `i64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = hi.wrapping_sub(lo) as u64;
        lo.wrapping_add((self.next_u64() % span) as i64)
    }

    /// `true` with probability `p`.
    pub fn bool_with(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_per_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(43);
        assert_ne!(Rng::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            let v = r.range_i64(-50, 50);
            assert!((-50..50).contains(&v));
            let u = r.range_usize(1, 3);
            assert!((1..3).contains(&u));
        }
    }

    #[test]
    fn bool_probability_is_roughly_respected() {
        let mut r = Rng::new(11);
        let hits = (0..10_000).filter(|_| r.bool_with(0.8)).count();
        assert!((7_500..8_500).contains(&hits), "hits {hits}");
    }

    #[test]
    fn range_covers_both_endpoints_eventually() {
        let mut r = Rng::new(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.range_usize(0, 4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
